//! The pre-decoded execution engine.
//!
//! [`crate::machine::Machine`] walks the CFG directly and pays full
//! interpreter tax on every step: an [`teamplay_isa::Operand`] match, a
//! block-vector indirection, an energy-table call through `Option`
//! branching. This module lowers a validated program **once** into
//! [`DecodedProgram`] — the flat [`teamplay_isa::DecodedImage`] op array
//! zipped with a parallel [`OpCost`] array that bakes in every per-op
//! cycle and energy constant — and executes it with [`DecodedEngine`], a
//! direct-threaded dispatch loop whose per-step work is one `match` on a
//! `Copy` op plus a handful of array indexes. No `HashMap`, no name
//! lookup, no per-step cost-model call survives into the hot loop.
//!
//! # Bit-identical accounting
//!
//! The engine is only useful if its results are *interchangeable* with
//! the reference interpreter's, so the energy accumulation replicates the
//! reference f64 operation order exactly:
//!
//! ```text
//! energy += ((base + overhead[prev][cur]) + stack_extra) + leakage·cycles
//! ```
//!
//! with a zero-filled sentinel overhead row standing in for "no previous
//! instruction" (adding `+0.0` to a positive base is a bitwise identity).
//! The differential oracle in `tests/wcet_tightness_oracle.rs` holds
//! `RunResult` — including `energy_pj` to the last bit — equal between
//! the two engines on every registry pipeline, the proptest kernels and
//! the four app kernels.
//!
//! # The exact-integer fast path
//!
//! Replaying the reference's f64 additions per step would chain every
//! dispatch through a floating-point dependency. Instead the engine
//! exploits that f64 energy is a *function of integer events*: runs
//! where every conditional branch outcome is counted exactly can charge
//! energy **per run**, not per step. The fast loop only maintains
//!
//! * `cycles` (u64, for the budget check) and
//! * two deferred counters per conditional branch (`hits_t`/`hits_nt`);
//!
//! all other per-op increments fold into per-function aggregates
//! (`RunAgg`) baked at decode time. At run exit the counters multiply
//! against per-site constants (`u64` multiply ≡ repeated wrapping add,
//! so this is exact) and a *replay in reference order* of the f64
//! combination reconstructs the identical bit pattern. Runs that might
//! exceed the cycle budget (detected against a per-entry worst-case
//! pre-charge) hand off to a careful per-instruction loop that matches
//! the reference step for step, so even trap cycles are exact.
//!
//! # Superinstruction fusion
//!
//! Dispatch — the indirect branch per slot — dominates once per-op work
//! is this small, so decode tiles the dynamically dominant adjacent op
//! pairs of the app kernels into fused [`HotOp`] variants (store→load,
//! load→ALU, compare→branch, …), then runs a fixpoint of pairwise
//! re-fusion that grows 4-, 6-, 8-, 10- and 13-op *megaops* covering the
//! kernels' hot inner loops. Fusion is pc-stable: a fused unit lives in
//! its first op's slot, absorbed slots are never branch targets (fusion
//! refuses to cross block starts), and every fused arm charges exactly
//! the ops the reference would. The dispatch table is padded to a power
//! of two so the fetch is a masked (provably in-bounds) index.
//!
//! Within a fused arm the decoder's static knowledge pays once more:
//! operands known to be the previous micro-op's destination forward the
//! just-computed value instead of re-reading the register file, and a
//! store followed by a load from the same address forwards the stored
//! word — both exact by construction, both transformations LLVM cannot
//! make through a dynamically-indexed register array.
//!
//! Net effect on the four app kernels (single thread, `sim_throughput`
//! bench, CI-class host): ~0.9–1.0 G simulated cycles/sec vs the
//! reference's ~0.25–0.28 G — a 3.5–3.9× speedup at 4.5–7.7 retired
//! guest ops per dispatch, recorded in `BENCH_sim.json` and floored at
//! `speedup ≥ 1` by `support/ci/validate_bench.py`.

use crate::machine::{zeroed_mem, MachineError, RunResult, MAX_CALL_DEPTH, MEM_WORDS};
use crate::ports::PortDevice;
use crate::truth::GroundTruthEnergy;
use teamplay_isa::{
    decode_program, AluOp, Cond, CycleModel, DataLayout, DecodedImage, DecodedOp, EnergyClass,
    Program, Reg, RegListRef, ENERGY_CLASS_COUNT, MEMORY_BYTES, STACK_TOP,
};

/// Per-op constants baked at decode time: cycles, energy-class index and
/// the *complete* per-step energy increment. Conditional branches carry
/// both outcome variants (`*_nt` = not taken); every other op has
/// `cyc == cyc_nt` and `inc_pj == inc_nt_pj`.
///
/// The increment can be a single constant because the previous energy
/// class — the only runtime input to the reference's circuit-state
/// overhead — is statically known for every op: each control-transfer
/// source in PG32 (`Branch`, `CondBranch`, `Call`, `Return`) charges as
/// [`EnergyClass::Branch`], so a block-entry op's dynamic predecessor is
/// always `Branch`, and every other op is preceded by its textual
/// neighbour (a post-call resume site sees `Return`'s class, which
/// equals the textual `Call`'s class — `Branch` again).
#[derive(Debug, Clone, Copy)]
pub struct OpCost {
    /// Cycles charged (taken outcome for conditional branches).
    pub cyc: u64,
    /// Cycles charged on the not-taken outcome.
    pub cyc_nt: u64,
    /// `EnergyClass::index()` of the op.
    pub class: u8,
    /// Full energy increment (pJ): `((base [+ overhead]) [+ stack]) +
    /// leakage·cyc`, combined at decode time in the reference f64 order.
    pub inc_pj: f64,
    /// The not-taken-outcome increment (uses `cyc_nt` leakage).
    pub inc_nt_pj: f64,
}

/// One hot-loop slot: the op and its baked costs side by side, so the
/// dispatch loop touches a single array (one bounds check, one cache
/// stream) per step.
#[derive(Clone, Copy)]
struct Step {
    op: DecodedOp,
    cost: OpCost,
}

/// Fast-loop opcode: the base [`DecodedOp`] repertoire plus fused
/// *superinstructions* for the dynamically dominant adjacent pairs of
/// the app kernels (store→load, load→ALU, compare→branch, …). One fused
/// slot retires two guest ops per dispatch, halving the indirect-branch
/// pressure that dominates interpreter cost.
///
/// Fusion is **pc-stable**: a fused pair lives in the *first* op's slot
/// and its arm advances `pc` by two; the second op's slot keeps its
/// un-fused form. Pairs are only formed when the second op is not a
/// block start, so control flow can never land on a skipped slot —
/// every entry point (function entries, branch/call targets, post-call
/// resume sites) dispatches exactly the ops the reference would.
/// `MovI32` folds into `MovI` here: the width distinction is a cost
/// artifact and the fast loop charges costs per run, not per op.
#[derive(Clone, Copy)]
enum HotOp {
    AluRR {
        op: AluOp,
        rd: u8,
        rn: u8,
        rm: u8,
    },
    AluRI {
        op: AluOp,
        rd: u8,
        rn: u8,
        imm: i32,
    },
    MovR {
        rd: u8,
        rm: u8,
    },
    MovI {
        rd: u8,
        imm: i32,
    },
    CmpR {
        rn: u8,
        rm: u8,
    },
    CmpI {
        rn: u8,
        imm: i32,
    },
    Csel {
        cond: Cond,
        rd: u8,
        rt: u8,
        rf: u8,
    },
    LdrR {
        rd: u8,
        base: u8,
        roff: u8,
    },
    LdrI {
        rd: u8,
        base: u8,
        imm: i32,
    },
    StrR {
        rs: u8,
        base: u8,
        roff: u8,
    },
    StrI {
        rs: u8,
        base: u8,
        imm: i32,
    },
    Push {
        list: RegListRef,
    },
    Pop {
        list: RegListRef,
    },
    Call {
        target: u32,
    },
    In {
        rd: u8,
        port: u8,
    },
    Out {
        rs: u8,
        port: u8,
    },
    Nop,
    Branch {
        target: u32,
    },
    CondBranch {
        cond: Cond,
        taken: u32,
        fallthrough: u32,
    },
    Ret,
    Halt,
    // ---- fused straight-line pairs (arm advances pc by 2) ----
    StrILdrI(PStrLdr),
    LdrIStrI(PLdrStr),
    LdrILdrI(PLdrLdr),
    LdrIAluRI(PLdrAluRI),
    LdrIAluRR(PLdrAluRR),
    LdrIMovI(PLdrMov),
    LdrICmpI(PLdrCmpI),
    AluRILdrI(PAluRILdr),
    AluRIStrI(PAluRIStr),
    AluRIAluRR(PAluRIAluRR),
    AluRRLdrI(PAluRRLdr),
    AluRRStrI(PAluRRStr),
    MovILdrI(PMovLdr),
    MovIMovI(PMovMov),
    MovICmpR(PMovCmpR),
    MovICsel(PMovCsel),
    CselStrI(PCselStr),
    CmpRMovI(PCmpRMov),
    StrIMovI(PStrMov),
    StrIMovR(PStrMovR),
    MovRAluRI(PMovRAluRI),
    // ---- fused run tails (first op + the run-ending control op; the
    // arm charges the run aggregate recorded at `pc + 1`) ----
    CmpICondBranch(PCmpICb),
    CmpRCondBranch(PCmpRCb),
    StrIBranch(PStrBr),
    // ---- second-round fusions: two adjacent pairs become a quad (arm
    // advances pc by 4; a control tail charges the aggregate at
    // `pc + 3`), and pair+branch becomes a triple (charge at `pc + 2`).
    QLdrMovCmpRMov(PLdrMov, PCmpRMov),
    QCmpRMovMovCsel(PCmpRMov, PMovCsel),
    QMovCselStrLdr(PMovCsel, PStrLdr),
    QStrLdrCmpICb(PStrLdr, PCmpICb),
    QLdrAluRIStrLdr(PLdrAluRI, PStrLdr),
    QAluRIAluRRLdrStr(PAluRIAluRR, PLdrStr),
    QMovLdrAluRIAluRR(PMovLdr, PAluRIAluRR),
    QStrLdrStrBr(PStrLdr, PStrBr),
    QStrLdrAluRIStr(PStrLdr, PAluRIStr),
    QLdrMovAluRRStr(PLdrMov, PAluRRStr),
    QAluRRStrLdrStr(PAluRRStr, PLdrStr),
    QAluRRStrLdrMov(PAluRRStr, PLdrMov),
    QAluRRStrLdrAluRI(PAluRRStr, PLdrAluRI),
    QLdrStrLdrAluRI(PLdrStr, PLdrAluRI),
    QAluRILdrAluRIAluRR(PAluRILdr, PAluRIAluRR),
    QAluRRLdrStrLdr(PAluRRLdr, PStrLdr),
    QLdrLdrAluRRStr(PLdrLdr, PAluRRStr),
    QLdrStrLdrLdr(PLdrStr, PLdrLdr),
    TLdrStrBr(PLdrStr, u32),
    // ---- later-round fusions: adjacent quads (or a quad plus a fused
    // tail) merge into one mega unit covering a whole measured hot
    // chain, so the dominant loop bodies retire in one or two
    // dispatches. Straight megas advance pc by their width; control
    // megas charge the aggregate at `pc + width - 1`. Widths noted per
    // variant.
    OLdrMovCmpRMovCselStrLdr(PLdrMov, PCmpRMov, PMovCsel, PStrLdr), // 8
    DLdrMovCmpRMovCselStrLdrCmpICb(PLdrMov, PCmpRMov, PMovCsel, PStrLdr, PCmpICb), // 10, control
    SLdrAluRIStrLdrStrBr(PLdrAluRI, PStrLdr, PStrBr),               // 6, control
    SLdrMovAluRRStrLdrStrBr(PLdrMov, PAluRRStr, PLdrStr, u32),      // 7, control
    OLdrMovAluRRStrLdrMovCmpRMov(PLdrMov, PAluRRStr, PLdrMov, PCmpRMov), // 8
    SMovCselStrLdrCmpICb(PMovCsel, PStrLdr, PCmpICb),               // 6, control
    OLdrStrLdrAluRIStrLdrStrBr(PLdrStr, PLdrAluRI, PStrLdr, PStrBr), // 8, control
    OMovLdrAluRIAluRRLdrStrLdrLdr(PMovLdr, PAluRIAluRR, PLdrStr, PLdrLdr), // 8
    OLdrStrLdrLdrAluRRStrLdrAluRI(PLdrStr, PLdrLdr, PAluRRStr, PLdrAluRI), // 8
    SAluRRStrLdrAluRIStrMovR(PAluRRStr, PLdrAluRI, PStrMovR),       // 6
    QStrLdrLdrAluRR(PStrLdr, PLdrAluRR),                            // 4
    WLdrAluRIStrLdrMov(PLdrAluRI, PStrLdr, PMov),                   // 5
    WAluRRStrLdrStrBr(PAluRRStr, PLdrStr, u32),                     // 5, control
    SLdrAluRIStrLdrAluRIStr(PLdrAluRI, PStrLdr, PAluRIStr),         // 6
    SLdrAluRRStrLdrAluRIStr(PLdrAluRR, PStrLdr, PAluRIStr),         // 6
    SLdrAluRIAluRRLdrStrLdr(PLdrAluRI, PAluRRLdr, PStrLdr),         // 6
    SMovLdrAluRIAluRRLdrStr(PMovLdr, PAluRIAluRR, PLdrStr),         // 6
    SAluRILdrAluRIAluRRLdrStr(PAluRILdr, PAluRIAluRR, PLdrStr),     // 6
    OMovLdrAluRIAluRRLdrStrLdrAluRI(PMovLdr, PAluRIAluRR, PLdrStr, PLdrAluRI), // 8
    OLdrLdrAluRRStrMovLdrAluRIAluRR(PLdrLdr, PAluRRStr, PMovLdr, PAluRIAluRR), // 8
    OCmpRMovMovCselStrLdrCmpICb(PCmpRMov, PMovCsel, PStrLdr, PCmpICb), // 8, control
    XLdrAluRIStrLdrMovAluRRStrLdrStrBr(PLdrAluRI, PStrLdr, PMov, PAluRRStr, PLdrStr, u32), // 10, control
    #[allow(clippy::type_complexity)]
    XLdrAluRIStrLdrAluRIStrLdrMovAluRRStrLdrStrBr(
        PLdrAluRI,
        PStrLdr,
        PAluRIStr,
        PLdrMov,
        PAluRRStr,
        PLdrStr,
        u32,
    ), // 13, control
}

/// Payloads of the fused superinstructions. Field prefixes keep the two
/// constituent ops' operands apart; every register index is masked with
/// `& 15` at use, so `u8` fields stay bounds-check-free.
#[derive(Clone, Copy)]
struct PStrLdr {
    rs: u8,
    sbase: u8,
    simm: i32,
    rd: u8,
    lbase: u8,
    limm: i32,
}
#[derive(Clone, Copy)]
struct PLdrStr {
    rd: u8,
    lbase: u8,
    limm: i32,
    rs: u8,
    sbase: u8,
    simm: i32,
}
#[derive(Clone, Copy)]
struct PLdrLdr {
    rd0: u8,
    base0: u8,
    imm0: i32,
    rd1: u8,
    base1: u8,
    imm1: i32,
}
#[derive(Clone, Copy)]
struct PLdrAluRI {
    rd: u8,
    base: u8,
    imm: i32,
    aop: AluOp,
    ard: u8,
    arn: u8,
    aimm: i32,
}
#[derive(Clone, Copy)]
struct PLdrAluRR {
    rd: u8,
    base: u8,
    imm: i32,
    aop: AluOp,
    ard: u8,
    arn: u8,
    arm: u8,
}
#[derive(Clone, Copy)]
struct PLdrMov {
    rd: u8,
    base: u8,
    imm: i32,
    mrd: u8,
    mimm: i32,
}
#[derive(Clone, Copy)]
struct PLdrCmpI {
    rd: u8,
    base: u8,
    imm: i32,
    crn: u8,
    cimm: i32,
}
#[derive(Clone, Copy)]
struct PAluRILdr {
    aop: AluOp,
    ard: u8,
    arn: u8,
    aimm: i32,
    rd: u8,
    base: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PAluRIStr {
    aop: AluOp,
    ard: u8,
    arn: u8,
    aimm: i32,
    rs: u8,
    base: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PAluRIAluRR {
    op0: AluOp,
    rd0: u8,
    rn0: u8,
    imm0: i32,
    op1: AluOp,
    rd1: u8,
    rn1: u8,
    rm1: u8,
}
#[derive(Clone, Copy)]
struct PAluRRLdr {
    aop: AluOp,
    ard: u8,
    arn: u8,
    arm: u8,
    rd: u8,
    base: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PAluRRStr {
    aop: AluOp,
    ard: u8,
    arn: u8,
    arm: u8,
    rs: u8,
    base: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PMovLdr {
    mrd: u8,
    mimm: i32,
    rd: u8,
    base: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PMovMov {
    rd0: u8,
    imm0: i32,
    rd1: u8,
    imm1: i32,
}
#[derive(Clone, Copy)]
struct PMovCmpR {
    mrd: u8,
    mimm: i32,
    rn: u8,
    rm: u8,
}
#[derive(Clone, Copy)]
struct PMovCsel {
    mrd: u8,
    mimm: i32,
    cond: Cond,
    rd: u8,
    rt: u8,
    rf: u8,
}
#[derive(Clone, Copy)]
struct PCselStr {
    cond: Cond,
    rd: u8,
    rt: u8,
    rf: u8,
    rs: u8,
    base: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PCmpRMov {
    rn: u8,
    rm: u8,
    mrd: u8,
    mimm: i32,
}
#[derive(Clone, Copy)]
struct PStrMov {
    rs: u8,
    base: u8,
    imm: i32,
    mrd: u8,
    mimm: i32,
}
#[derive(Clone, Copy)]
struct PStrMovR {
    rs: u8,
    sbase: u8,
    simm: i32,
    rd: u8,
    rm: u8,
}
#[derive(Clone, Copy)]
struct PMovRAluRI {
    rd: u8,
    rm: u8,
    aop: AluOp,
    ard: u8,
    arn: u8,
    aimm: i32,
}
#[derive(Clone, Copy)]
struct PMov {
    rd: u8,
    imm: i32,
}
#[derive(Clone, Copy)]
struct PCmpICb {
    rn: u8,
    imm: i32,
    cond: Cond,
    taken: u32,
    fallthrough: u32,
}
#[derive(Clone, Copy)]
struct PCmpRCb {
    rn: u8,
    rm: u8,
    cond: Cond,
    taken: u32,
    fallthrough: u32,
}
#[derive(Clone, Copy)]
struct PStrBr {
    rs: u8,
    base: u8,
    imm: i32,
    target: u32,
}

type Mem = [i32; MEM_WORDS];

/// Classify an invalid address exactly like the reference's
/// `check_addr` (alignment is checked first).
#[cold]
#[inline(never)]
fn mem_fault(addr: u32) -> MachineError {
    if !addr.is_multiple_of(4) {
        MachineError::Unaligned(addr)
    } else {
        MachineError::OutOfRange(addr)
    }
}

/// Engine-local load: one fused validity branch on the hot path, with
/// the precise trap kind re-derived in the cold branch. The mask keeps
/// the word index provably inside the power-of-two `Mem`, so no slice
/// bounds check survives (the mask is an identity for valid addresses).
#[inline(always)]
fn ld(mem: &Mem, addr: u32) -> Result<i32, MachineError> {
    if !addr.is_multiple_of(4) | (addr >= MEMORY_BYTES) {
        return Err(mem_fault(addr));
    }
    Ok(mem[(addr / 4) as usize & (MEM_WORDS - 1)])
}

/// Engine-local store; see [`ld`].
#[inline(always)]
fn st(mem: &mut Mem, addr: u32, value: i32) -> Result<(), MachineError> {
    if !addr.is_multiple_of(4) | (addr >= MEMORY_BYTES) {
        return Err(mem_fault(addr));
    }
    mem[(addr / 4) as usize & (MEM_WORDS - 1)] = value;
    Ok(())
}

// Straight-line superinstruction bodies, shared between the pair arms
// and the quad arms of the dispatch loop. All `#[inline(always)]`: each
// call site is a distinct jump-table arm and must stay call-free.
#[inline(always)]
fn x_str_ldr(p: &PStrLdr, regs: &mut [i32; 16], mem: &mut Mem) -> Result<(), MachineError> {
    let sa = (regs[p.sbase as usize & 15] as u32).wrapping_add(p.simm as u32);
    let v = regs[p.rs as usize & 15];
    st(mem, sa, v)?;
    let la = (regs[p.lbase as usize & 15] as u32).wrapping_add(p.limm as u32);
    // Spill-reload forwarding: the dominant store→load pairs re-read
    // the address just written, so the stored word short-circuits the
    // reload (a valid store to `sa` proves a load from `sa` yields it).
    regs[p.rd as usize & 15] = if la == sa { v } else { ld(mem, la)? };
    Ok(())
}
// Several bodies below forward a just-computed value straight into the
// next op when the payload's register indices coincide, instead of
// reading it back out of `regs`. The select is exact — it yields
// precisely what the array read would — but it takes the host's
// store-to-load forwarding latency off the dependency chain (the
// compiler cannot do this itself: the dynamic indices might alias).
#[inline(always)]
fn x_ldr_str(p: &PLdrStr, regs: &mut [i32; 16], mem: &mut Mem) -> Result<(), MachineError> {
    let addr = (regs[p.lbase as usize & 15] as u32).wrapping_add(p.limm as u32);
    let lv = ld(mem, addr)?;
    regs[p.rd as usize & 15] = lv;
    let base = if p.sbase & 15 == p.rd & 15 {
        lv
    } else {
        regs[p.sbase as usize & 15]
    };
    let sv = if p.rs & 15 == p.rd & 15 {
        lv
    } else {
        regs[p.rs as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.simm as u32);
    st(mem, addr, sv)
}
#[inline(always)]
fn x_ldr_ldr(p: &PLdrLdr, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    let addr = (regs[p.base0 as usize & 15] as u32).wrapping_add(p.imm0 as u32);
    let lv = ld(mem, addr)?;
    regs[p.rd0 as usize & 15] = lv;
    let base = if p.base1 & 15 == p.rd0 & 15 {
        lv
    } else {
        regs[p.base1 as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.imm1 as u32);
    regs[p.rd1 as usize & 15] = ld(mem, addr)?;
    Ok(())
}
#[inline(always)]
fn x_ldr_alu_ri(p: &PLdrAluRI, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    let addr = (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
    let lv = ld(mem, addr)?;
    regs[p.rd as usize & 15] = lv;
    let a = if p.arn & 15 == p.rd & 15 {
        lv
    } else {
        regs[p.arn as usize & 15]
    };
    regs[p.ard as usize & 15] = p.aop.eval(a, p.aimm);
    Ok(())
}
#[inline(always)]
fn x_ldr_alu_rr(p: &PLdrAluRR, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    let addr = (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
    let lv = ld(mem, addr)?;
    regs[p.rd as usize & 15] = lv;
    let a = if p.arn & 15 == p.rd & 15 {
        lv
    } else {
        regs[p.arn as usize & 15]
    };
    let b = if p.arm & 15 == p.rd & 15 {
        lv
    } else {
        regs[p.arm as usize & 15]
    };
    regs[p.ard as usize & 15] = p.aop.eval(a, b);
    Ok(())
}
#[inline(always)]
fn x_ldr_mov(p: &PLdrMov, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    let addr = (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
    regs[p.rd as usize & 15] = ld(mem, addr)?;
    regs[p.mrd as usize & 15] = p.mimm;
    Ok(())
}
#[inline(always)]
fn x_ldr_cmp_i(
    p: &PLdrCmpI,
    regs: &mut [i32; 16],
    mem: &Mem,
    flags: &mut (i32, i32),
) -> Result<(), MachineError> {
    let addr = (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
    regs[p.rd as usize & 15] = ld(mem, addr)?;
    *flags = (regs[p.crn as usize & 15], p.cimm);
    Ok(())
}
#[inline(always)]
fn x_alu_ri_ldr(p: &PAluRILdr, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    let av = p.aop.eval(regs[p.arn as usize & 15], p.aimm);
    regs[p.ard as usize & 15] = av;
    let base = if p.base & 15 == p.ard & 15 {
        av
    } else {
        regs[p.base as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.imm as u32);
    regs[p.rd as usize & 15] = ld(mem, addr)?;
    Ok(())
}
#[inline(always)]
fn x_alu_ri_str(p: &PAluRIStr, regs: &mut [i32; 16], mem: &mut Mem) -> Result<(), MachineError> {
    let av = p.aop.eval(regs[p.arn as usize & 15], p.aimm);
    regs[p.ard as usize & 15] = av;
    let base = if p.base & 15 == p.ard & 15 {
        av
    } else {
        regs[p.base as usize & 15]
    };
    let sv = if p.rs & 15 == p.ard & 15 {
        av
    } else {
        regs[p.rs as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.imm as u32);
    st(mem, addr, sv)
}
#[inline(always)]
fn x_alu_ri_alu_rr(p: &PAluRIAluRR, regs: &mut [i32; 16]) {
    let v0 = p.op0.eval(regs[p.rn0 as usize & 15], p.imm0);
    regs[p.rd0 as usize & 15] = v0;
    let a = if p.rn1 & 15 == p.rd0 & 15 {
        v0
    } else {
        regs[p.rn1 as usize & 15]
    };
    let b = if p.rm1 & 15 == p.rd0 & 15 {
        v0
    } else {
        regs[p.rm1 as usize & 15]
    };
    regs[p.rd1 as usize & 15] = p.op1.eval(a, b);
}
#[inline(always)]
fn x_alu_rr_ldr(p: &PAluRRLdr, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    let av = p
        .aop
        .eval(regs[p.arn as usize & 15], regs[p.arm as usize & 15]);
    regs[p.ard as usize & 15] = av;
    let base = if p.base & 15 == p.ard & 15 {
        av
    } else {
        regs[p.base as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.imm as u32);
    regs[p.rd as usize & 15] = ld(mem, addr)?;
    Ok(())
}
#[inline(always)]
fn x_alu_rr_str(p: &PAluRRStr, regs: &mut [i32; 16], mem: &mut Mem) -> Result<(), MachineError> {
    let av = p
        .aop
        .eval(regs[p.arn as usize & 15], regs[p.arm as usize & 15]);
    regs[p.ard as usize & 15] = av;
    let base = if p.base & 15 == p.ard & 15 {
        av
    } else {
        regs[p.base as usize & 15]
    };
    let sv = if p.rs & 15 == p.ard & 15 {
        av
    } else {
        regs[p.rs as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.imm as u32);
    st(mem, addr, sv)
}
#[inline(always)]
fn x_mov_ldr(p: &PMovLdr, regs: &mut [i32; 16], mem: &Mem) -> Result<(), MachineError> {
    regs[p.mrd as usize & 15] = p.mimm;
    let base = if p.base & 15 == p.mrd & 15 {
        p.mimm
    } else {
        regs[p.base as usize & 15]
    };
    let addr = (base as u32).wrapping_add(p.imm as u32);
    regs[p.rd as usize & 15] = ld(mem, addr)?;
    Ok(())
}
#[inline(always)]
fn x_mov_mov(p: &PMovMov, regs: &mut [i32; 16]) {
    regs[p.rd0 as usize & 15] = p.imm0;
    regs[p.rd1 as usize & 15] = p.imm1;
}
#[inline(always)]
fn x_mov_cmp_r(p: &PMovCmpR, regs: &mut [i32; 16], flags: &mut (i32, i32)) {
    regs[p.mrd as usize & 15] = p.mimm;
    *flags = (regs[p.rn as usize & 15], regs[p.rm as usize & 15]);
}
#[inline(always)]
fn x_mov_csel(p: &PMovCsel, regs: &mut [i32; 16], flags: &(i32, i32)) {
    regs[p.mrd as usize & 15] = p.mimm;
    let (a, b) = *flags;
    regs[p.rd as usize & 15] = if p.cond.holds(a, b) {
        regs[p.rt as usize & 15]
    } else {
        regs[p.rf as usize & 15]
    };
}
#[inline(always)]
fn x_csel_str(
    p: &PCselStr,
    regs: &mut [i32; 16],
    mem: &mut Mem,
    flags: &(i32, i32),
) -> Result<(), MachineError> {
    let (a, b) = *flags;
    regs[p.rd as usize & 15] = if p.cond.holds(a, b) {
        regs[p.rt as usize & 15]
    } else {
        regs[p.rf as usize & 15]
    };
    let addr = (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
    st(mem, addr, regs[p.rs as usize & 15])
}
#[inline(always)]
fn x_cmp_r_mov(p: &PCmpRMov, regs: &mut [i32; 16], flags: &mut (i32, i32)) {
    *flags = (regs[p.rn as usize & 15], regs[p.rm as usize & 15]);
    regs[p.mrd as usize & 15] = p.mimm;
}
#[inline(always)]
fn x_str_mov(p: &PStrMov, regs: &mut [i32; 16], mem: &mut Mem) -> Result<(), MachineError> {
    let addr = (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
    st(mem, addr, regs[p.rs as usize & 15])?;
    regs[p.mrd as usize & 15] = p.mimm;
    Ok(())
}
#[inline(always)]
fn x_str_mov_r(p: &PStrMovR, regs: &mut [i32; 16], mem: &mut Mem) -> Result<(), MachineError> {
    let addr = (regs[p.sbase as usize & 15] as u32).wrapping_add(p.simm as u32);
    st(mem, addr, regs[p.rs as usize & 15])?;
    regs[p.rd as usize & 15] = regs[p.rm as usize & 15];
    Ok(())
}
#[inline(always)]
fn x_mov_r_alu_ri(p: &PMovRAluRI, regs: &mut [i32; 16]) {
    regs[p.rd as usize & 15] = regs[p.rm as usize & 15];
    regs[p.ard as usize & 15] = p.aop.eval(regs[p.arn as usize & 15], p.aimm);
}

/// Slots covered by one fused unit (1 for base ops).
fn hot_width(op: &HotOp) -> usize {
    match op {
        HotOp::AluRR { .. }
        | HotOp::AluRI { .. }
        | HotOp::MovR { .. }
        | HotOp::MovI { .. }
        | HotOp::CmpR { .. }
        | HotOp::CmpI { .. }
        | HotOp::Csel { .. }
        | HotOp::LdrR { .. }
        | HotOp::LdrI { .. }
        | HotOp::StrR { .. }
        | HotOp::StrI { .. }
        | HotOp::Push { .. }
        | HotOp::Pop { .. }
        | HotOp::Call { .. }
        | HotOp::In { .. }
        | HotOp::Out { .. }
        | HotOp::Nop
        | HotOp::Branch { .. }
        | HotOp::CondBranch { .. }
        | HotOp::Ret
        | HotOp::Halt => 1,
        HotOp::StrILdrI(_)
        | HotOp::LdrIStrI(_)
        | HotOp::LdrILdrI(_)
        | HotOp::LdrIAluRI(_)
        | HotOp::LdrIAluRR(_)
        | HotOp::LdrIMovI(_)
        | HotOp::LdrICmpI(_)
        | HotOp::AluRILdrI(_)
        | HotOp::AluRIStrI(_)
        | HotOp::AluRIAluRR(_)
        | HotOp::AluRRLdrI(_)
        | HotOp::AluRRStrI(_)
        | HotOp::MovILdrI(_)
        | HotOp::MovIMovI(_)
        | HotOp::MovICmpR(_)
        | HotOp::MovICsel(_)
        | HotOp::CselStrI(_)
        | HotOp::CmpRMovI(_)
        | HotOp::StrIMovI(_)
        | HotOp::StrIMovR(_)
        | HotOp::MovRAluRI(_)
        | HotOp::CmpICondBranch(_)
        | HotOp::CmpRCondBranch(_)
        | HotOp::StrIBranch(_) => 2,
        HotOp::TLdrStrBr(..) => 3,
        HotOp::QLdrMovCmpRMov(..)
        | HotOp::QCmpRMovMovCsel(..)
        | HotOp::QMovCselStrLdr(..)
        | HotOp::QStrLdrCmpICb(..)
        | HotOp::QLdrAluRIStrLdr(..)
        | HotOp::QAluRIAluRRLdrStr(..)
        | HotOp::QMovLdrAluRIAluRR(..)
        | HotOp::QStrLdrStrBr(..)
        | HotOp::QStrLdrAluRIStr(..)
        | HotOp::QLdrMovAluRRStr(..)
        | HotOp::QAluRRStrLdrStr(..)
        | HotOp::QAluRRStrLdrMov(..)
        | HotOp::QAluRRStrLdrAluRI(..)
        | HotOp::QLdrStrLdrAluRI(..)
        | HotOp::QAluRILdrAluRIAluRR(..)
        | HotOp::QAluRRLdrStrLdr(..)
        | HotOp::QLdrLdrAluRRStr(..)
        | HotOp::QLdrStrLdrLdr(..)
        | HotOp::QStrLdrLdrAluRR(..) => 4,
        HotOp::WLdrAluRIStrLdrMov(..) | HotOp::WAluRRStrLdrStrBr(..) => 5,
        HotOp::SLdrAluRIStrLdrStrBr(..)
        | HotOp::SMovCselStrLdrCmpICb(..)
        | HotOp::SAluRRStrLdrAluRIStrMovR(..)
        | HotOp::SLdrAluRIStrLdrAluRIStr(..)
        | HotOp::SLdrAluRRStrLdrAluRIStr(..)
        | HotOp::SLdrAluRIAluRRLdrStrLdr(..)
        | HotOp::SMovLdrAluRIAluRRLdrStr(..)
        | HotOp::SAluRILdrAluRIAluRRLdrStr(..) => 6,
        HotOp::SLdrMovAluRRStrLdrStrBr(..) => 7,
        HotOp::OLdrMovCmpRMovCselStrLdr(..)
        | HotOp::OLdrMovAluRRStrLdrMovCmpRMov(..)
        | HotOp::OLdrStrLdrAluRIStrLdrStrBr(..)
        | HotOp::OMovLdrAluRIAluRRLdrStrLdrLdr(..)
        | HotOp::OLdrStrLdrLdrAluRRStrLdrAluRI(..)
        | HotOp::OMovLdrAluRIAluRRLdrStrLdrAluRI(..)
        | HotOp::OLdrLdrAluRRStrMovLdrAluRIAluRR(..)
        | HotOp::OCmpRMovMovCselStrLdrCmpICb(..) => 8,
        HotOp::DLdrMovCmpRMovCselStrLdrCmpICb(..)
        | HotOp::XLdrAluRIStrLdrMovAluRRStrLdrStrBr(..) => 10,
        HotOp::XLdrAluRIStrLdrAluRIStrLdrMovAluRRStrLdrStrBr(..) => 13,
    }
}

/// Second fusion round: merge two adjacent fused pairs into a quad (or
/// a pair plus a trailing `Branch` into a triple) when the combination
/// is on the measured hot-chain menu.
fn try_fuse2(a: &HotOp, b: &HotOp) -> Option<HotOp> {
    use HotOp as H;
    Some(match (*a, *b) {
        (H::LdrIMovI(x), H::CmpRMovI(y)) => H::QLdrMovCmpRMov(x, y),
        (H::CmpRMovI(x), H::MovICsel(y)) => H::QCmpRMovMovCsel(x, y),
        (H::MovICsel(x), H::StrILdrI(y)) => H::QMovCselStrLdr(x, y),
        (H::StrILdrI(x), H::CmpICondBranch(y)) => H::QStrLdrCmpICb(x, y),
        (H::LdrIAluRI(x), H::StrILdrI(y)) => H::QLdrAluRIStrLdr(x, y),
        (H::AluRIAluRR(x), H::LdrIStrI(y)) => H::QAluRIAluRRLdrStr(x, y),
        (H::MovILdrI(x), H::AluRIAluRR(y)) => H::QMovLdrAluRIAluRR(x, y),
        (H::StrILdrI(x), H::StrIBranch(y)) => H::QStrLdrStrBr(x, y),
        (H::StrILdrI(x), H::AluRIStrI(y)) => H::QStrLdrAluRIStr(x, y),
        (H::LdrIMovI(x), H::AluRRStrI(y)) => H::QLdrMovAluRRStr(x, y),
        (H::AluRRStrI(x), H::LdrIStrI(y)) => H::QAluRRStrLdrStr(x, y),
        (H::AluRRStrI(x), H::LdrIMovI(y)) => H::QAluRRStrLdrMov(x, y),
        (H::AluRRStrI(x), H::LdrIAluRI(y)) => H::QAluRRStrLdrAluRI(x, y),
        (H::LdrIStrI(x), H::LdrIAluRI(y)) => H::QLdrStrLdrAluRI(x, y),
        (H::AluRILdrI(x), H::AluRIAluRR(y)) => H::QAluRILdrAluRIAluRR(x, y),
        (H::AluRRLdrI(x), H::StrILdrI(y)) => H::QAluRRLdrStrLdr(x, y),
        (H::LdrILdrI(x), H::AluRRStrI(y)) => H::QLdrLdrAluRRStr(x, y),
        (H::LdrIStrI(x), H::LdrILdrI(y)) => H::QLdrStrLdrLdr(x, y),
        (H::LdrIStrI(x), H::Branch { target }) => H::TLdrStrBr(x, target),
        // ---- mega chains (quad + quad / quad + fused tail) ----
        (H::QLdrMovCmpRMov(x, y), H::QMovCselStrLdr(z, w)) => {
            H::OLdrMovCmpRMovCselStrLdr(x, y, z, w)
        }
        (H::OLdrMovCmpRMovCselStrLdr(x, y, z, w), H::CmpICondBranch(e)) => {
            H::DLdrMovCmpRMovCselStrLdrCmpICb(x, y, z, w, e)
        }
        (H::QLdrAluRIStrLdr(x, y), H::StrIBranch(e)) => H::SLdrAluRIStrLdrStrBr(x, y, e),
        (H::QLdrMovAluRRStr(x, y), H::TLdrStrBr(z, t)) => H::SLdrMovAluRRStrLdrStrBr(x, y, z, t),
        (H::QLdrMovAluRRStr(x, y), H::QLdrMovCmpRMov(z, w)) => {
            H::OLdrMovAluRRStrLdrMovCmpRMov(x, y, z, w)
        }
        (H::QMovCselStrLdr(x, y), H::CmpICondBranch(e)) => H::SMovCselStrLdrCmpICb(x, y, e),
        (H::QLdrStrLdrAluRI(x, y), H::QStrLdrStrBr(z, e)) => {
            H::OLdrStrLdrAluRIStrLdrStrBr(x, y, z, e)
        }
        (H::QMovLdrAluRIAluRR(x, y), H::QLdrStrLdrLdr(z, w)) => {
            H::OMovLdrAluRIAluRRLdrStrLdrLdr(x, y, z, w)
        }
        (H::QLdrStrLdrLdr(x, y), H::QAluRRStrLdrAluRI(z, w)) => {
            H::OLdrStrLdrLdrAluRRStrLdrAluRI(x, y, z, w)
        }
        (H::QAluRRStrLdrAluRI(x, y), H::StrIMovR(z)) => H::SAluRRStrLdrAluRIStrMovR(x, y, z),
        (H::StrILdrI(x), H::LdrIAluRR(y)) => H::QStrLdrLdrAluRR(x, y),
        (H::QLdrAluRIStrLdr(x, y), H::MovI { rd, imm }) => {
            H::WLdrAluRIStrLdrMov(x, y, PMov { rd, imm })
        }
        (H::QAluRRStrLdrStr(x, y), H::Branch { target }) => H::WAluRRStrLdrStrBr(x, y, target),
        (H::QLdrAluRIStrLdr(x, y), H::AluRIStrI(z)) => H::SLdrAluRIStrLdrAluRIStr(x, y, z),
        (H::LdrIAluRR(x), H::QStrLdrAluRIStr(y, z)) => H::SLdrAluRRStrLdrAluRIStr(x, y, z),
        (H::LdrIAluRI(x), H::QAluRRLdrStrLdr(y, z)) => H::SLdrAluRIAluRRLdrStrLdr(x, y, z),
        (H::QMovLdrAluRIAluRR(x, y), H::LdrIStrI(z)) => H::SMovLdrAluRIAluRRLdrStr(x, y, z),
        (H::QAluRILdrAluRIAluRR(x, y), H::LdrIStrI(z)) => H::SAluRILdrAluRIAluRRLdrStr(x, y, z),
        (H::QMovLdrAluRIAluRR(x, y), H::QLdrStrLdrAluRI(z, w)) => {
            H::OMovLdrAluRIAluRRLdrStrLdrAluRI(x, y, z, w)
        }
        (H::QLdrLdrAluRRStr(x, y), H::QMovLdrAluRIAluRR(z, w)) => {
            H::OLdrLdrAluRRStrMovLdrAluRIAluRR(x, y, z, w)
        }
        (H::QCmpRMovMovCsel(x, y), H::QStrLdrCmpICb(z, e)) => {
            H::OCmpRMovMovCselStrLdrCmpICb(x, y, z, e)
        }
        (H::WLdrAluRIStrLdrMov(x, y, z), H::WAluRRStrLdrStrBr(u, v, t)) => {
            H::XLdrAluRIStrLdrMovAluRRStrLdrStrBr(x, y, z, u, v, t)
        }
        (H::SLdrAluRIStrLdrAluRIStr(x, y, z), H::SLdrMovAluRRStrLdrStrBr(u, v, w, t)) => {
            H::XLdrAluRIStrLdrAluRIStrLdrMovAluRRStrLdrStrBr(x, y, z, u, v, w, t)
        }
        _ => return None,
    })
}

/// Lower one base op to its un-fused [`HotOp`] form.
fn hot_base(op: &DecodedOp) -> HotOp {
    match *op {
        DecodedOp::AluRR { op, rd, rn, rm } => HotOp::AluRR { op, rd, rn, rm },
        DecodedOp::AluRI { op, rd, rn, imm } => HotOp::AluRI { op, rd, rn, imm },
        DecodedOp::MovR { rd, rm } => HotOp::MovR { rd, rm },
        DecodedOp::MovI { rd, imm } | DecodedOp::MovI32 { rd, imm } => HotOp::MovI { rd, imm },
        DecodedOp::CmpR { rn, rm } => HotOp::CmpR { rn, rm },
        DecodedOp::CmpI { rn, imm } => HotOp::CmpI { rn, imm },
        DecodedOp::Csel { cond, rd, rt, rf } => HotOp::Csel { cond, rd, rt, rf },
        DecodedOp::LdrR { rd, base, roff } => HotOp::LdrR { rd, base, roff },
        DecodedOp::LdrI { rd, base, imm } => HotOp::LdrI { rd, base, imm },
        DecodedOp::StrR { rs, base, roff } => HotOp::StrR { rs, base, roff },
        DecodedOp::StrI { rs, base, imm } => HotOp::StrI { rs, base, imm },
        DecodedOp::Push { list } => HotOp::Push { list },
        DecodedOp::Pop { list } => HotOp::Pop { list },
        DecodedOp::Call { target } => HotOp::Call { target },
        DecodedOp::In { rd, port } => HotOp::In { rd, port },
        DecodedOp::Out { rs, port } => HotOp::Out { rs, port },
        DecodedOp::Nop => HotOp::Nop,
        DecodedOp::Branch { target } => HotOp::Branch { target },
        DecodedOp::CondBranch {
            cond,
            taken,
            fallthrough,
        } => HotOp::CondBranch {
            cond,
            taken,
            fallthrough,
        },
        DecodedOp::Ret => HotOp::Ret,
        DecodedOp::Halt => HotOp::Halt,
    }
}

/// Fuse `a; b` into one superinstruction if the pair is on the menu.
/// `cmp_reserved` blocks straight pairs that would absorb a compare
/// feeding the conditional branch right behind it — the
/// compare+branch fusion is worth strictly more.
fn try_fuse(a: &DecodedOp, b: &DecodedOp, cmp_reserved: bool) -> Option<HotOp> {
    use DecodedOp as D;
    Some(match (*a, *b) {
        (
            D::CmpI { rn, imm },
            D::CondBranch {
                cond,
                taken,
                fallthrough,
            },
        ) => HotOp::CmpICondBranch(PCmpICb {
            rn,
            imm,
            cond,
            taken,
            fallthrough,
        }),
        (
            D::CmpR { rn, rm },
            D::CondBranch {
                cond,
                taken,
                fallthrough,
            },
        ) => HotOp::CmpRCondBranch(PCmpRCb {
            rn,
            rm,
            cond,
            taken,
            fallthrough,
        }),
        (D::StrI { rs, base, imm }, D::Branch { target }) => HotOp::StrIBranch(PStrBr {
            rs,
            base,
            imm,
            target,
        }),
        _ if cmp_reserved => return None,
        (
            D::StrI {
                rs,
                base: sbase,
                imm: simm,
            },
            D::LdrI { rd, base, imm },
        ) => HotOp::StrILdrI(PStrLdr {
            rs,
            sbase,
            simm,
            rd,
            lbase: base,
            limm: imm,
        }),
        (
            D::LdrI {
                rd,
                base: lbase,
                imm: limm,
            },
            D::StrI { rs, base, imm },
        ) => HotOp::LdrIStrI(PLdrStr {
            rd,
            lbase,
            limm,
            rs,
            sbase: base,
            simm: imm,
        }),
        (
            D::LdrI {
                rd: rd0,
                base: base0,
                imm: imm0,
            },
            D::LdrI {
                rd: rd1,
                base: base1,
                imm: imm1,
            },
        ) => HotOp::LdrILdrI(PLdrLdr {
            rd0,
            base0,
            imm0,
            rd1,
            base1,
            imm1,
        }),
        (
            D::LdrI { rd, base, imm },
            D::AluRI {
                op: aop,
                rd: ard,
                rn: arn,
                imm: aimm,
            },
        ) => HotOp::LdrIAluRI(PLdrAluRI {
            rd,
            base,
            imm,
            aop,
            ard,
            arn,
            aimm,
        }),
        (
            D::LdrI { rd, base, imm },
            D::AluRR {
                op: aop,
                rd: ard,
                rn: arn,
                rm: arm,
            },
        ) => HotOp::LdrIAluRR(PLdrAluRR {
            rd,
            base,
            imm,
            aop,
            ard,
            arn,
            arm,
        }),
        (
            D::LdrI { rd, base, imm },
            D::MovI { rd: mrd, imm: mimm } | D::MovI32 { rd: mrd, imm: mimm },
        ) => HotOp::LdrIMovI(PLdrMov {
            rd,
            base,
            imm,
            mrd,
            mimm,
        }),
        (D::LdrI { rd, base, imm }, D::CmpI { rn: crn, imm: cimm }) => HotOp::LdrICmpI(PLdrCmpI {
            rd,
            base,
            imm,
            crn,
            cimm,
        }),
        (
            D::AluRI {
                op: aop,
                rd: ard,
                rn: arn,
                imm: aimm,
            },
            D::LdrI { rd, base, imm },
        ) => HotOp::AluRILdrI(PAluRILdr {
            aop,
            ard,
            arn,
            aimm,
            rd,
            base,
            imm,
        }),
        (
            D::AluRI {
                op: aop,
                rd: ard,
                rn: arn,
                imm: aimm,
            },
            D::StrI { rs, base, imm },
        ) => HotOp::AluRIStrI(PAluRIStr {
            aop,
            ard,
            arn,
            aimm,
            rs,
            base,
            imm,
        }),
        (
            D::AluRI {
                op: op0,
                rd: rd0,
                rn: rn0,
                imm: imm0,
            },
            D::AluRR {
                op: op1,
                rd: rd1,
                rn: rn1,
                rm: rm1,
            },
        ) => HotOp::AluRIAluRR(PAluRIAluRR {
            op0,
            rd0,
            rn0,
            imm0,
            op1,
            rd1,
            rn1,
            rm1,
        }),
        (
            D::AluRR {
                op: aop,
                rd: ard,
                rn: arn,
                rm: arm,
            },
            D::LdrI { rd, base, imm },
        ) => HotOp::AluRRLdrI(PAluRRLdr {
            aop,
            ard,
            arn,
            arm,
            rd,
            base,
            imm,
        }),
        (
            D::AluRR {
                op: aop,
                rd: ard,
                rn: arn,
                rm: arm,
            },
            D::StrI { rs, base, imm },
        ) => HotOp::AluRRStrI(PAluRRStr {
            aop,
            ard,
            arn,
            arm,
            rs,
            base,
            imm,
        }),
        (
            D::MovI { rd: mrd, imm: mimm } | D::MovI32 { rd: mrd, imm: mimm },
            D::LdrI { rd, base, imm },
        ) => HotOp::MovILdrI(PMovLdr {
            mrd,
            mimm,
            rd,
            base,
            imm,
        }),
        (
            D::MovI { rd: rd0, imm: imm0 } | D::MovI32 { rd: rd0, imm: imm0 },
            D::MovI { rd: rd1, imm: imm1 } | D::MovI32 { rd: rd1, imm: imm1 },
        ) => HotOp::MovIMovI(PMovMov {
            rd0,
            imm0,
            rd1,
            imm1,
        }),
        (D::MovI { rd: mrd, imm: mimm } | D::MovI32 { rd: mrd, imm: mimm }, D::CmpR { rn, rm }) => {
            HotOp::MovICmpR(PMovCmpR { mrd, mimm, rn, rm })
        }
        (
            D::MovI { rd: mrd, imm: mimm } | D::MovI32 { rd: mrd, imm: mimm },
            D::Csel { cond, rd, rt, rf },
        ) => HotOp::MovICsel(PMovCsel {
            mrd,
            mimm,
            cond,
            rd,
            rt,
            rf,
        }),
        (D::Csel { cond, rd, rt, rf }, D::StrI { rs, base, imm }) => HotOp::CselStrI(PCselStr {
            cond,
            rd,
            rt,
            rf,
            rs,
            base,
            imm,
        }),
        (D::CmpR { rn, rm }, D::MovI { rd: mrd, imm: mimm } | D::MovI32 { rd: mrd, imm: mimm }) => {
            HotOp::CmpRMovI(PCmpRMov { rn, rm, mrd, mimm })
        }
        (
            D::StrI { rs, base, imm },
            D::MovI { rd: mrd, imm: mimm } | D::MovI32 { rd: mrd, imm: mimm },
        ) => HotOp::StrIMovI(PStrMov {
            rs,
            base,
            imm,
            mrd,
            mimm,
        }),
        (
            D::StrI {
                rs,
                base: sbase,
                imm: simm,
            },
            D::MovR { rd, rm },
        ) => HotOp::StrIMovR(PStrMovR {
            rs,
            sbase,
            simm,
            rd,
            rm,
        }),
        (
            D::MovR { rd, rm },
            D::AluRI {
                op: aop,
                rd: ard,
                rn: arn,
                imm: aimm,
            },
        ) => HotOp::MovRAluRI(PMovRAluRI {
            rd,
            rm,
            aop,
            ard,
            arn,
            aimm,
        }),
        _ => return None,
    })
}

/// Greedy left-to-right pair tiling over the flat op array, followed by
/// a second round that merges adjacent fused pairs into quads. A unit is
/// only formed when its continuation slot is not a block start (no
/// control transfer can land mid-unit; see [`HotOp`]).
fn fuse_ops(ops: &[DecodedOp], is_block_start: &[bool]) -> Vec<HotOp> {
    let mut hot: Vec<HotOp> = ops.iter().map(hot_base).collect();
    // Round 1: adjacent base-op pairs.
    let mut i = 0;
    while i + 1 < ops.len() {
        if is_block_start[i + 1] {
            i += 1;
            continue;
        }
        // Is ops[i + 1] a compare that feeds the conditional branch at
        // ops[i + 2]? Then leave it for the compare+branch fusion.
        let cmp_reserved = matches!(ops[i + 1], DecodedOp::CmpI { .. } | DecodedOp::CmpR { .. })
            && i + 2 < ops.len()
            && !is_block_start[i + 2]
            && matches!(ops[i + 2], DecodedOp::CondBranch { .. });
        match try_fuse(&ops[i], &ops[i + 1], cmp_reserved) {
            Some(f) => {
                hot[i] = f;
                i += 2;
            }
            None => i += 1,
        }
    }
    // Rounds 2+: walking by unit widths reproduces the previous round's
    // tiling; a fused unit absorbs the next one when the combination is
    // on the menu and no entry point lands on the seam. Chains grow by
    // one menu step per round, so iterate to a fixpoint.
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < hot.len() {
            let w = hot_width(&hot[i]);
            let j = i + w;
            if w >= 2 && j < hot.len() && !is_block_start[j] {
                if let Some(q) = try_fuse2(&hot[i], &hot[j]) {
                    let qw = hot_width(&q);
                    hot[i] = q;
                    i += qw;
                    changed = true;
                    continue;
                }
            }
            i += w;
        }
        if !changed {
            break;
        }
    }
    hot
}

/// Aggregated accounting for one *run* — the maximal straight-line op
/// sequence ending at a control op (`Branch`, `CondBranch`, `Call`,
/// `Ret`, `Halt`). Branch targets only ever land on block starts and a
/// `Ret` resumes right after its `Call`, so control flow can only enter
/// a run at its first op; once entered, every op of the run executes
/// (unless it traps, in which case no accounting is observable anyway).
/// The `*_nt` variants differ only when the run ends in a `CondBranch`.
#[derive(Clone, Copy, Default)]
struct RunAgg {
    cyc: u64,
    cyc_nt: u64,
    /// Run energy in exact integer picojoules (taken outcome).
    en: u64,
    en_nt: u64,
    insns: u32,
    counts: [u32; ENERGY_CLASS_COUNT],
}

/// Tables for the exact-integer fast path, built only when every energy
/// increment of the program is a nonnegative integer-valued f64. Under
/// that condition each f64 addition the reference performs is *exact*
/// (integers below 2^53), so the whole accumulation is associative and
/// can be charged per run in integer arithmetic, bit-identically.
struct ExactTables {
    /// Indexed by control-op position: the aggregate of the run that
    /// ends there. Slots of non-control ops are unused.
    aggs: Vec<RunAgg>,
    /// Indexed by run-entry position: cycles charged by the run *before*
    /// its final op — the reference's last (and, by monotonicity,
    /// binding) budget checkpoint inside the run. If
    /// `cycles + pre[entry] > max_cycles` the reference is guaranteed to
    /// trap inside this run, and the engine drops to the per-insn
    /// careful loop to reproduce the trap point and device traffic
    /// exactly.
    pre: Vec<u64>,
    /// Control-op positions — the only meaningful `aggs` slots. The
    /// engine defers everything but the cycle count to per-site run
    /// counters and folds `hits × aggregate` over this list once per
    /// call (integer multiplication is exactly repeated addition, so
    /// the fold is bit-identical to charging each run as it retires).
    sites: Vec<u32>,
    /// `overhead(Branch, class)` as integers: the first charged insn of
    /// a run has no predecessor, which differs from its static baking by
    /// exactly this amount — subtracted up front (wrapping; the sum is
    /// provably renonnegative after the first run's charge).
    ovh_branch_u: [u64; ENERGY_CLASS_COUNT],
    /// Fast path is valid while `max_cycles` stays at or below this
    /// (keeps every partial energy sum exactly representable).
    max_budget: u64,
}

/// A program lowered for the pre-decoded engine: flat ops zipped with
/// their cost constants and the initial data image.
pub struct DecodedProgram {
    image: DecodedImage,
    /// The fast loop's opcode stream: base ops with the dominant
    /// adjacent pairs fused into superinstructions (pc-stable, see
    /// [`HotOp`]). Same indexing as [`DecodedImage::ops`].
    hot: Vec<HotOp>,
    /// Steps with energy baked against each op's static predecessor
    /// class — valid for every charge except the run's very first.
    steps: Vec<Step>,
    /// The same ops with energy baked against *no* predecessor (the
    /// reference's `prev = None` case). The hot loop fetches exactly one
    /// step from this table — the first — then swaps to [`Self::steps`].
    steps_first: Vec<Step>,
    /// Run-aggregated accounting (`None` when the energy model has
    /// non-integer increments; the per-insn loop then runs throughout).
    exact: Option<ExactTables>,
    layout: DataLayout,
    /// Initial global images as (word base, words).
    globals: Vec<(usize, Vec<i32>)>,
}

impl DecodedProgram {
    /// Lower a program with PG32 cost models.
    ///
    /// # Errors
    /// Returns the program's own validation error text if it is
    /// structurally invalid.
    pub fn new(program: &Program) -> Result<DecodedProgram, String> {
        DecodedProgram::with_models(program, &CycleModel::pg32(), &GroundTruthEnergy::pg32())
    }

    /// Lower a program with explicit cost models.
    ///
    /// # Errors
    /// Returns the program's own validation error text if it is
    /// structurally invalid.
    pub fn with_models(
        program: &Program,
        cycle_model: &CycleModel,
        energy_model: &GroundTruthEnergy,
    ) -> Result<DecodedProgram, String> {
        let image = decode_program(program)?;
        // Every op reachable only by falling through from its textual
        // predecessor inherits that predecessor's class; every op that
        // starts a block is reached by a control transfer, and all
        // transfer sources charge as `Branch` (see [`OpCost`]).
        let mut is_block_start = vec![false; image.ops.len()];
        for f in &image.functions {
            is_block_start[f.entry as usize] = true;
        }
        for op in &image.ops {
            match op {
                DecodedOp::Branch { target } | DecodedOp::Call { target } => {
                    is_block_start[*target as usize] = true;
                }
                DecodedOp::CondBranch {
                    taken, fallthrough, ..
                } => {
                    is_block_start[*taken as usize] = true;
                    is_block_start[*fallthrough as usize] = true;
                }
                _ => {}
            }
        }
        let static_prev = |i: usize| {
            if i == 0 || is_block_start[i] {
                EnergyClass::Branch
            } else {
                op_class(&image.ops[i - 1])
            }
        };
        let bake = |prev_of: &dyn Fn(usize) -> Option<EnergyClass>| {
            image
                .ops
                .iter()
                .enumerate()
                .map(|(i, op)| Step {
                    op: *op,
                    cost: op_cost(op, &image, cycle_model, energy_model, prev_of(i)),
                })
                .collect::<Vec<Step>>()
        };
        let steps = bake(&|i| Some(static_prev(i)));
        let steps_first = bake(&|_| None);
        let mut hot = fuse_ops(&image.ops, &is_block_start);
        // Pad to a power of two: the dispatch fetch indexes with
        // `pc & (hot.len() - 1)`, which the compiler can prove in
        // bounds, so the per-dispatch bounds check disappears. Every
        // reachable pc is below the real length, where the mask is an
        // identity; the padding slots are unreachable.
        hot.resize(hot.len().next_power_of_two(), HotOp::Halt);
        let exact = build_exact_tables(&image, &steps, &steps_first, energy_model);
        let layout = DataLayout::of_program(program);
        let globals = program
            .globals
            .iter()
            .map(|(name, words)| {
                let base = layout.address(name).expect("layout covers globals") / 4;
                (base as usize, words.clone())
            })
            .collect();
        Ok(DecodedProgram {
            image,
            hot,
            steps,
            steps_first,
            exact,
            layout,
            globals,
        })
    }

    /// The decoded instruction image.
    pub fn image(&self) -> &DecodedImage {
        &self.image
    }

    /// The layout used for globals (shared with the code generator).
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// A fresh engine over this program (the program can be shared by
    /// many engines — one per worker thread in a batch).
    pub fn engine(&self) -> DecodedEngine<'_> {
        DecodedEngine::new(self)
    }
}

/// Mutable machine state over a shared [`DecodedProgram`].
///
/// Mirrors [`crate::machine::Machine`]'s contract exactly: globals
/// persist across [`DecodedEngine::call`]s, [`DecodedEngine::reset_data`]
/// restores the initial image, state is unspecified after a trap.
pub struct DecodedEngine<'p> {
    program: &'p DecodedProgram,
    mem: Box<[i32; MEM_WORDS]>,
    regs: [i32; 16],
    flags: (i32, i32),
    max_cycles: u64,
    /// Per-site run counters (taken / not-taken outcome), indexed by
    /// control-op position. The fast loop only increments these; they
    /// are folded into the accounting totals once per call.
    hits_t: Vec<u64>,
    hits_nt: Vec<u64>,
}

impl<'p> DecodedEngine<'p> {
    /// A fresh engine with the initial data image and the reference
    /// 50 M cycle budget.
    pub fn new(program: &'p DecodedProgram) -> DecodedEngine<'p> {
        let mut engine = DecodedEngine {
            program,
            mem: zeroed_mem(),
            regs: [0; 16],
            flags: (0, 0),
            max_cycles: 50_000_000,
            hits_t: vec![0; program.hot.len()],
            hits_nt: vec![0; program.hot.len()],
        };
        engine.reset_data();
        engine
    }

    /// Change the cycle budget per call.
    pub fn set_max_cycles(&mut self, max_cycles: u64) {
        self.max_cycles = max_cycles;
    }

    /// Restore the initial global-data image and clear the rest of memory.
    pub fn reset_data(&mut self) {
        self.mem.fill(0);
        for (base, words) in &self.program.globals {
            self.mem[*base..*base + words.len()].copy_from_slice(words);
        }
    }

    /// Read a global word back after a run (for assertions in tests).
    pub fn read_global(&self, name: &str, index: usize) -> Option<i32> {
        let base = self.program.layout.address(name)? / 4;
        self.mem.get(base as usize + index).copied()
    }

    /// Call `func` with up to 6 scalar arguments in `r0..r5`.
    ///
    /// # Errors
    /// Any [`MachineError`] trap; the engine state is unspecified after a
    /// trap (call [`DecodedEngine::reset_data`] before reusing it).
    pub fn call(
        &mut self,
        func: &str,
        args: &[i32],
        device: &mut dyn PortDevice,
    ) -> Result<RunResult, MachineError> {
        if args.len() > 6 {
            return Err(MachineError::TooManyArgs);
        }
        let entry = self
            .program
            .image
            .entry_of(func)
            .ok_or_else(|| MachineError::UnknownFunction(func.into()))?;

        let steps: &[Step] = &self.program.steps;
        let reg_pool = &self.program.image.reg_pool;
        let regs = &mut self.regs;
        let mem = &mut *self.mem;
        let flags = &mut self.flags;
        let max_cycles = self.max_cycles;
        // Masked once so every `regs[sp]` below indexes with a
        // provably-in-range value (no bounds check in the hot loop).
        let sp = Reg::SP.index() & 15;

        *regs = [0; 16];
        for (i, a) in args.iter().enumerate() {
            regs[i] = *a;
        }
        regs[sp] = STACK_TOP as i32;

        let mut cycles: u64 = 0;
        let mut insns: u64 = 0;
        let mut energy = 0.0f64;
        // 16-wide (classes only fill the first ENERGY_CLASS_COUNT slots)
        // so the masked index needs no bounds check.
        let mut counts = [0u64; 16];

        let mut stack: Vec<u32> = Vec::new();
        let mut pc = entry as usize;

        // The careful loop's first fetch reads the no-predecessor cost
        // table; every later fetch reads the static-predecessor one. An
        // unconditional pointer move keeps the swap branch-free.
        let mut tab = &self.program.steps_first[..];

        // ---- Exact-integer fast path ----
        //
        // Accounting is charged one whole run at a time, in integer
        // arithmetic, when the run's final control op executes; ops in
        // between run semantics only. The budget is checked once per run
        // entry: `pre` is the reference's binding checkpoint inside the
        // run, so if it clears, every per-insn check the reference would
        // perform inside the run clears too. When it doesn't clear, the
        // reference traps somewhere in the run — the engine hands the
        // (exactly reference-equal) partial state to the per-insn
        // careful loop below to reproduce the trap point, its error kind
        // and any device traffic leading up to it.
        if let Some(ex) = &self.program.exact {
            if max_cycles <= ex.max_budget && ex.pre[pc] <= max_cycles {
                let hot: &[HotOp] = &self.program.hot;
                // `hot` is padded to a power of two, so this mask makes
                // every fetch provably in bounds (and is an identity
                // for all reachable pcs).
                let hmask = hot.len() - 1;
                let aggs = &ex.aggs[..];
                let pre = &ex.pre[..];
                let hits_t = &mut self.hits_t[..];
                let hits_nt = &mut self.hits_nt[..];
                // A trapped previous call can abandon counters mid-run;
                // its accounting must not leak into this call.
                for &s in &ex.sites {
                    hits_t[s as usize] = 0;
                    hits_nt[s as usize] = 0;
                }
                // The run's first charged insn has no predecessor:
                // pre-subtract the `overhead(Branch, entry class)` its
                // static baking assumes (wrapping; nonnegative again
                // after the first run's charge lands).
                let mut energy_u =
                    0u64.wrapping_sub(ex.ovh_branch_u[(steps[pc].cost.class as usize) & 15]);

                // Charging a run = one cycle add (the doom check needs
                // cycles current) plus one counter bump; everything else
                // is folded from the counters at exit.
                macro_rules! agg_charge {
                    ($idx:expr, cyc, en) => {{
                        let i = $idx;
                        cycles += aggs[i].cyc;
                        hits_t[i] += 1;
                    }};
                    ($idx:expr, cyc_nt, en_nt) => {{
                        let i = $idx;
                        cycles += aggs[i].cyc_nt;
                        hits_nt[i] += 1;
                    }};
                }
                macro_rules! fold_hits {
                    () => {{
                        for &s in &ex.sites {
                            let i = s as usize;
                            let (ht, hnt) = (hits_t[i], hits_nt[i]);
                            let h = ht + hnt;
                            if h != 0 {
                                let a = &aggs[i];
                                insns += h * u64::from(a.insns);
                                energy_u = energy_u
                                    .wrapping_add(a.en.wrapping_mul(ht))
                                    .wrapping_add(a.en_nt.wrapping_mul(hnt));
                                for (dst, src) in counts.iter_mut().zip(a.counts.iter()) {
                                    *dst += h * u64::from(*src);
                                }
                                hits_t[i] = 0;
                                hits_nt[i] = 0;
                            }
                        }
                    }};
                }
                macro_rules! finish_fast {
                    () => {{
                        fold_hits!();
                        let mut class_counts = [0u64; ENERGY_CLASS_COUNT];
                        class_counts.copy_from_slice(&counts[..ENERGY_CLASS_COUNT]);
                        return Ok(RunResult {
                            return_value: regs[0],
                            cycles,
                            insns,
                            energy_pj: energy_u as f64,
                            class_counts,
                        });
                    }};
                }

                loop {
                    match hot[pc & hmask] {
                        HotOp::AluRR { op, rd, rn, rm } => {
                            regs[rd as usize & 15] =
                                op.eval(regs[rn as usize & 15], regs[rm as usize & 15]);
                        }
                        HotOp::AluRI { op, rd, rn, imm } => {
                            regs[rd as usize & 15] = op.eval(regs[rn as usize & 15], imm);
                        }
                        HotOp::MovR { rd, rm } => {
                            regs[rd as usize & 15] = regs[rm as usize & 15];
                        }
                        HotOp::MovI { rd, imm } => {
                            regs[rd as usize & 15] = imm;
                        }
                        HotOp::CmpR { rn, rm } => {
                            *flags = (regs[rn as usize & 15], regs[rm as usize & 15]);
                        }
                        HotOp::CmpI { rn, imm } => {
                            *flags = (regs[rn as usize & 15], imm);
                        }
                        HotOp::Csel { cond, rd, rt, rf } => {
                            let (a, b) = *flags;
                            regs[rd as usize & 15] = if cond.holds(a, b) {
                                regs[rt as usize & 15]
                            } else {
                                regs[rf as usize & 15]
                            };
                        }
                        HotOp::LdrR { rd, base, roff } => {
                            let addr = (regs[base as usize & 15] as u32)
                                .wrapping_add(regs[roff as usize & 15] as u32);
                            regs[rd as usize & 15] = ld(mem, addr)?;
                        }
                        HotOp::LdrI { rd, base, imm } => {
                            let addr = (regs[base as usize & 15] as u32).wrapping_add(imm as u32);
                            regs[rd as usize & 15] = ld(mem, addr)?;
                        }
                        HotOp::StrR { rs, base, roff } => {
                            let addr = (regs[base as usize & 15] as u32)
                                .wrapping_add(regs[roff as usize & 15] as u32);
                            st(mem, addr, regs[rs as usize & 15])?;
                        }
                        HotOp::StrI { rs, base, imm } => {
                            let addr = (regs[base as usize & 15] as u32).wrapping_add(imm as u32);
                            st(mem, addr, regs[rs as usize & 15])?;
                        }
                        HotOp::Push { list } => {
                            for r in &reg_pool
                                [list.start as usize..list.start as usize + list.len as usize]
                            {
                                let top = (regs[sp] as u32).wrapping_sub(4);
                                regs[sp] = top as i32;
                                st(mem, top, regs[r.index() & 15])?;
                            }
                        }
                        HotOp::Pop { list } => {
                            for r in reg_pool
                                [list.start as usize..list.start as usize + list.len as usize]
                                .iter()
                                .rev()
                            {
                                let top = regs[sp] as u32;
                                let v = ld(mem, top)?;
                                regs[r.index() & 15] = v;
                                regs[sp] = top.wrapping_add(4) as i32;
                            }
                        }
                        HotOp::In { rd, port } => {
                            regs[rd as usize & 15] = device.input(port);
                        }
                        HotOp::Out { rs, port } => {
                            device.output(port, regs[rs as usize & 15]);
                        }
                        HotOp::Nop => {}
                        HotOp::Branch { target } => {
                            agg_charge!(pc, cyc, en);
                            pc = target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::CondBranch {
                            cond,
                            taken,
                            fallthrough,
                        } => {
                            let (a, b) = *flags;
                            if cond.holds(a, b) {
                                agg_charge!(pc, cyc, en);
                                pc = taken as usize;
                            } else {
                                agg_charge!(pc, cyc_nt, en_nt);
                                pc = fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::Call { target } => {
                            agg_charge!(pc, cyc, en);
                            if stack.len() >= MAX_CALL_DEPTH {
                                return Err(MachineError::CallDepth);
                            }
                            stack.push(pc as u32 + 1);
                            pc = target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::Ret => {
                            agg_charge!(pc, cyc, en);
                            match stack.pop() {
                                Some(ret) => {
                                    pc = ret as usize;
                                    if cycles + pre[pc] > max_cycles {
                                        break;
                                    }
                                    continue;
                                }
                                None => finish_fast!(),
                            }
                        }
                        HotOp::Halt => {
                            agg_charge!(pc, cyc, en);
                            finish_fast!();
                        }
                        // ---- fused pairs: both ops' semantics in one
                        // dispatch; `pc += 1` here plus the shared bottom
                        // increment skips both slots. ----
                        HotOp::StrILdrI(p) => {
                            x_str_ldr(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::LdrIStrI(p) => {
                            x_ldr_str(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::LdrILdrI(p) => {
                            x_ldr_ldr(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::LdrIAluRI(p) => {
                            x_ldr_alu_ri(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::LdrIAluRR(p) => {
                            x_ldr_alu_rr(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::LdrIMovI(p) => {
                            x_ldr_mov(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::LdrICmpI(p) => {
                            x_ldr_cmp_i(&p, regs, mem, flags)?;
                            pc += 1;
                        }
                        HotOp::AluRILdrI(p) => {
                            x_alu_ri_ldr(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::AluRIStrI(p) => {
                            x_alu_ri_str(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::AluRIAluRR(p) => {
                            x_alu_ri_alu_rr(&p, regs);
                            pc += 1;
                        }
                        HotOp::AluRRLdrI(p) => {
                            x_alu_rr_ldr(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::AluRRStrI(p) => {
                            x_alu_rr_str(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::MovILdrI(p) => {
                            x_mov_ldr(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::MovIMovI(p) => {
                            x_mov_mov(&p, regs);
                            pc += 1;
                        }
                        HotOp::MovICmpR(p) => {
                            x_mov_cmp_r(&p, regs, flags);
                            pc += 1;
                        }
                        HotOp::MovICsel(p) => {
                            x_mov_csel(&p, regs, flags);
                            pc += 1;
                        }
                        HotOp::CselStrI(p) => {
                            x_csel_str(&p, regs, mem, flags)?;
                            pc += 1;
                        }
                        HotOp::CmpRMovI(p) => {
                            x_cmp_r_mov(&p, regs, flags);
                            pc += 1;
                        }
                        HotOp::StrIMovI(p) => {
                            x_str_mov(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::StrIMovR(p) => {
                            x_str_mov_r(&p, regs, mem)?;
                            pc += 1;
                        }
                        HotOp::MovRAluRI(p) => {
                            x_mov_r_alu_ri(&p, regs);
                            pc += 1;
                        }
                        // ---- fused quads: two pairs per dispatch. ----
                        HotOp::QLdrMovCmpRMov(a, b) => {
                            x_ldr_mov(&a, regs, mem)?;
                            x_cmp_r_mov(&b, regs, flags);
                            pc += 3;
                        }
                        HotOp::QCmpRMovMovCsel(a, b) => {
                            x_cmp_r_mov(&a, regs, flags);
                            x_mov_csel(&b, regs, flags);
                            pc += 3;
                        }
                        HotOp::QMovCselStrLdr(a, b) => {
                            x_mov_csel(&a, regs, flags);
                            x_str_ldr(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QLdrAluRIStrLdr(a, b) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QAluRIAluRRLdrStr(a, b) => {
                            x_alu_ri_alu_rr(&a, regs);
                            x_ldr_str(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QMovLdrAluRIAluRR(a, b) => {
                            x_mov_ldr(&a, regs, mem)?;
                            x_alu_ri_alu_rr(&b, regs);
                            pc += 3;
                        }
                        HotOp::QStrLdrAluRIStr(a, b) => {
                            x_str_ldr(&a, regs, mem)?;
                            x_alu_ri_str(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QLdrMovAluRRStr(a, b) => {
                            x_ldr_mov(&a, regs, mem)?;
                            x_alu_rr_str(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QAluRRStrLdrStr(a, b) => {
                            x_alu_rr_str(&a, regs, mem)?;
                            x_ldr_str(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QAluRRStrLdrMov(a, b) => {
                            x_alu_rr_str(&a, regs, mem)?;
                            x_ldr_mov(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QAluRRStrLdrAluRI(a, b) => {
                            x_alu_rr_str(&a, regs, mem)?;
                            x_ldr_alu_ri(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QLdrStrLdrAluRI(a, b) => {
                            x_ldr_str(&a, regs, mem)?;
                            x_ldr_alu_ri(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QAluRILdrAluRIAluRR(a, b) => {
                            x_alu_ri_ldr(&a, regs, mem)?;
                            x_alu_ri_alu_rr(&b, regs);
                            pc += 3;
                        }
                        HotOp::QAluRRLdrStrLdr(a, b) => {
                            x_alu_rr_ldr(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QLdrLdrAluRRStr(a, b) => {
                            x_ldr_ldr(&a, regs, mem)?;
                            x_alu_rr_str(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::QLdrStrLdrLdr(a, b) => {
                            x_ldr_str(&a, regs, mem)?;
                            x_ldr_ldr(&b, regs, mem)?;
                            pc += 3;
                        }
                        // ---- straight-line megas ----
                        HotOp::OLdrMovCmpRMovCselStrLdr(a, b, c, d) => {
                            x_ldr_mov(&a, regs, mem)?;
                            x_cmp_r_mov(&b, regs, flags);
                            x_mov_csel(&c, regs, flags);
                            x_str_ldr(&d, regs, mem)?;
                            pc += 7;
                        }
                        HotOp::OLdrMovAluRRStrLdrMovCmpRMov(a, b, c, d) => {
                            x_ldr_mov(&a, regs, mem)?;
                            x_alu_rr_str(&b, regs, mem)?;
                            x_ldr_mov(&c, regs, mem)?;
                            x_cmp_r_mov(&d, regs, flags);
                            pc += 7;
                        }
                        HotOp::OMovLdrAluRIAluRRLdrStrLdrLdr(a, b, c, d) => {
                            x_mov_ldr(&a, regs, mem)?;
                            x_alu_ri_alu_rr(&b, regs);
                            x_ldr_str(&c, regs, mem)?;
                            x_ldr_ldr(&d, regs, mem)?;
                            pc += 7;
                        }
                        HotOp::OLdrStrLdrLdrAluRRStrLdrAluRI(a, b, c, d) => {
                            x_ldr_str(&a, regs, mem)?;
                            x_ldr_ldr(&b, regs, mem)?;
                            x_alu_rr_str(&c, regs, mem)?;
                            x_ldr_alu_ri(&d, regs, mem)?;
                            pc += 7;
                        }
                        HotOp::SAluRRStrLdrAluRIStrMovR(a, b, c) => {
                            x_alu_rr_str(&a, regs, mem)?;
                            x_ldr_alu_ri(&b, regs, mem)?;
                            x_str_mov_r(&c, regs, mem)?;
                            pc += 5;
                        }
                        HotOp::QStrLdrLdrAluRR(a, b) => {
                            x_str_ldr(&a, regs, mem)?;
                            x_ldr_alu_rr(&b, regs, mem)?;
                            pc += 3;
                        }
                        HotOp::WLdrAluRIStrLdrMov(a, b, c) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            regs[c.rd as usize & 15] = c.imm;
                            pc += 4;
                        }
                        HotOp::SLdrAluRIStrLdrAluRIStr(a, b, c) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            x_alu_ri_str(&c, regs, mem)?;
                            pc += 5;
                        }
                        HotOp::SLdrAluRRStrLdrAluRIStr(a, b, c) => {
                            x_ldr_alu_rr(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            x_alu_ri_str(&c, regs, mem)?;
                            pc += 5;
                        }
                        HotOp::SLdrAluRIAluRRLdrStrLdr(a, b, c) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_alu_rr_ldr(&b, regs, mem)?;
                            x_str_ldr(&c, regs, mem)?;
                            pc += 5;
                        }
                        HotOp::SMovLdrAluRIAluRRLdrStr(a, b, c) => {
                            x_mov_ldr(&a, regs, mem)?;
                            x_alu_ri_alu_rr(&b, regs);
                            x_ldr_str(&c, regs, mem)?;
                            pc += 5;
                        }
                        HotOp::SAluRILdrAluRIAluRRLdrStr(a, b, c) => {
                            x_alu_ri_ldr(&a, regs, mem)?;
                            x_alu_ri_alu_rr(&b, regs);
                            x_ldr_str(&c, regs, mem)?;
                            pc += 5;
                        }
                        HotOp::OMovLdrAluRIAluRRLdrStrLdrAluRI(a, b, c, d) => {
                            x_mov_ldr(&a, regs, mem)?;
                            x_alu_ri_alu_rr(&b, regs);
                            x_ldr_str(&c, regs, mem)?;
                            x_ldr_alu_ri(&d, regs, mem)?;
                            pc += 7;
                        }
                        HotOp::OLdrLdrAluRRStrMovLdrAluRIAluRR(a, b, c, d) => {
                            x_ldr_ldr(&a, regs, mem)?;
                            x_alu_rr_str(&b, regs, mem)?;
                            x_mov_ldr(&c, regs, mem)?;
                            x_alu_ri_alu_rr(&d, regs);
                            pc += 7;
                        }
                        // ---- fused run tails: the run aggregate lives at
                        // the control op's own slot (`pc + width - 1`). ----
                        HotOp::CmpICondBranch(p) => {
                            let a = regs[p.rn as usize & 15];
                            *flags = (a, p.imm);
                            if p.cond.holds(a, p.imm) {
                                agg_charge!(pc + 1, cyc, en);
                                pc = p.taken as usize;
                            } else {
                                agg_charge!(pc + 1, cyc_nt, en_nt);
                                pc = p.fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::CmpRCondBranch(p) => {
                            let a = regs[p.rn as usize & 15];
                            let b = regs[p.rm as usize & 15];
                            *flags = (a, b);
                            if p.cond.holds(a, b) {
                                agg_charge!(pc + 1, cyc, en);
                                pc = p.taken as usize;
                            } else {
                                agg_charge!(pc + 1, cyc_nt, en_nt);
                                pc = p.fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::StrIBranch(p) => {
                            let addr =
                                (regs[p.base as usize & 15] as u32).wrapping_add(p.imm as u32);
                            st(mem, addr, regs[p.rs as usize & 15])?;
                            agg_charge!(pc + 1, cyc, en);
                            pc = p.target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::QStrLdrCmpICb(a, b) => {
                            x_str_ldr(&a, regs, mem)?;
                            let v = regs[b.rn as usize & 15];
                            *flags = (v, b.imm);
                            if b.cond.holds(v, b.imm) {
                                agg_charge!(pc + 3, cyc, en);
                                pc = b.taken as usize;
                            } else {
                                agg_charge!(pc + 3, cyc_nt, en_nt);
                                pc = b.fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::QStrLdrStrBr(a, b) => {
                            x_str_ldr(&a, regs, mem)?;
                            let addr =
                                (regs[b.base as usize & 15] as u32).wrapping_add(b.imm as u32);
                            st(mem, addr, regs[b.rs as usize & 15])?;
                            agg_charge!(pc + 3, cyc, en);
                            pc = b.target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::TLdrStrBr(a, target) => {
                            x_ldr_str(&a, regs, mem)?;
                            agg_charge!(pc + 2, cyc, en);
                            pc = target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        // ---- control-tailed megas ----
                        HotOp::DLdrMovCmpRMovCselStrLdrCmpICb(a, b, c, d, e) => {
                            x_ldr_mov(&a, regs, mem)?;
                            x_cmp_r_mov(&b, regs, flags);
                            x_mov_csel(&c, regs, flags);
                            x_str_ldr(&d, regs, mem)?;
                            let v = regs[e.rn as usize & 15];
                            *flags = (v, e.imm);
                            if e.cond.holds(v, e.imm) {
                                agg_charge!(pc + 9, cyc, en);
                                pc = e.taken as usize;
                            } else {
                                agg_charge!(pc + 9, cyc_nt, en_nt);
                                pc = e.fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::SMovCselStrLdrCmpICb(a, b, e) => {
                            x_mov_csel(&a, regs, flags);
                            x_str_ldr(&b, regs, mem)?;
                            let v = regs[e.rn as usize & 15];
                            *flags = (v, e.imm);
                            if e.cond.holds(v, e.imm) {
                                agg_charge!(pc + 5, cyc, en);
                                pc = e.taken as usize;
                            } else {
                                agg_charge!(pc + 5, cyc_nt, en_nt);
                                pc = e.fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::SLdrAluRIStrLdrStrBr(a, b, e) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            let addr =
                                (regs[e.base as usize & 15] as u32).wrapping_add(e.imm as u32);
                            st(mem, addr, regs[e.rs as usize & 15])?;
                            agg_charge!(pc + 5, cyc, en);
                            pc = e.target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::SLdrMovAluRRStrLdrStrBr(a, b, c, target) => {
                            x_ldr_mov(&a, regs, mem)?;
                            x_alu_rr_str(&b, regs, mem)?;
                            x_ldr_str(&c, regs, mem)?;
                            agg_charge!(pc + 6, cyc, en);
                            pc = target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::OLdrStrLdrAluRIStrLdrStrBr(a, b, c, e) => {
                            x_ldr_str(&a, regs, mem)?;
                            x_ldr_alu_ri(&b, regs, mem)?;
                            x_str_ldr(&c, regs, mem)?;
                            let addr =
                                (regs[e.base as usize & 15] as u32).wrapping_add(e.imm as u32);
                            st(mem, addr, regs[e.rs as usize & 15])?;
                            agg_charge!(pc + 7, cyc, en);
                            pc = e.target as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::WAluRRStrLdrStrBr(a, b, t) => {
                            x_alu_rr_str(&a, regs, mem)?;
                            x_ldr_str(&b, regs, mem)?;
                            agg_charge!(pc + 4, cyc, en);
                            pc = t as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::OCmpRMovMovCselStrLdrCmpICb(a, b, c, e) => {
                            x_cmp_r_mov(&a, regs, flags);
                            x_mov_csel(&b, regs, flags);
                            x_str_ldr(&c, regs, mem)?;
                            let v = regs[e.rn as usize & 15];
                            *flags = (v, e.imm);
                            if e.cond.holds(v, e.imm) {
                                agg_charge!(pc + 7, cyc, en);
                                pc = e.taken as usize;
                            } else {
                                agg_charge!(pc + 7, cyc_nt, en_nt);
                                pc = e.fallthrough as usize;
                            }
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::XLdrAluRIStrLdrMovAluRRStrLdrStrBr(a, b, c, d, e, t) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            regs[c.rd as usize & 15] = c.imm;
                            x_alu_rr_str(&d, regs, mem)?;
                            x_ldr_str(&e, regs, mem)?;
                            agg_charge!(pc + 9, cyc, en);
                            pc = t as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                        HotOp::XLdrAluRIStrLdrAluRIStrLdrMovAluRRStrLdrStrBr(
                            a,
                            b,
                            c,
                            d,
                            e,
                            f,
                            t,
                        ) => {
                            x_ldr_alu_ri(&a, regs, mem)?;
                            x_str_ldr(&b, regs, mem)?;
                            x_alu_ri_str(&c, regs, mem)?;
                            x_ldr_mov(&d, regs, mem)?;
                            x_alu_rr_str(&e, regs, mem)?;
                            x_ldr_str(&f, regs, mem)?;
                            agg_charge!(pc + 12, cyc, en);
                            pc = t as usize;
                            if cycles + pre[pc] > max_cycles {
                                break;
                            }
                            continue;
                        }
                    }
                    pc += 1;
                }

                // Doomed: the budget trips inside the run starting at
                // `pc`. After the fold every accumulator equals the
                // reference's value at this run boundary, so continue
                // per-insn.
                fold_hits!();
                energy = energy_u as f64;
                tab = steps;
            }
        }

        // ---- Per-insn careful loop ----
        //
        // The reference charge sequence with the whole f64 sum baked
        // into one per-op constant — see [`OpCost`] for why that is
        // bitwise-faithful. Used from the start for non-integer energy
        // models or over-budget `max_cycles`, and as the continuation
        // that pins the exact trap point once the fast path detects the
        // budget will trip.
        macro_rules! charge {
            ($c:expr) => {{
                cycles += $c.cyc;
                insns += 1;
                counts[($c.class as usize) & 15] += 1;
                energy += $c.inc_pj;
            }};
        }
        loop {
            if cycles > max_cycles {
                return Err(MachineError::CycleLimit);
            }
            let step = &tab[pc];
            tab = steps;
            let c = &step.cost;
            match step.op {
                DecodedOp::AluRR { op, rd, rn, rm } => {
                    charge!(c);
                    regs[rd as usize & 15] =
                        op.eval(regs[rn as usize & 15], regs[rm as usize & 15]);
                }
                DecodedOp::AluRI { op, rd, rn, imm } => {
                    charge!(c);
                    regs[rd as usize & 15] = op.eval(regs[rn as usize & 15], imm);
                }
                DecodedOp::MovR { rd, rm } => {
                    charge!(c);
                    regs[rd as usize & 15] = regs[rm as usize & 15];
                }
                DecodedOp::MovI { rd, imm } | DecodedOp::MovI32 { rd, imm } => {
                    charge!(c);
                    regs[rd as usize & 15] = imm;
                }
                DecodedOp::CmpR { rn, rm } => {
                    charge!(c);
                    *flags = (regs[rn as usize & 15], regs[rm as usize & 15]);
                }
                DecodedOp::CmpI { rn, imm } => {
                    charge!(c);
                    *flags = (regs[rn as usize & 15], imm);
                }
                DecodedOp::Csel { cond, rd, rt, rf } => {
                    charge!(c);
                    let (a, b) = *flags;
                    regs[rd as usize & 15] = if cond.holds(a, b) {
                        regs[rt as usize & 15]
                    } else {
                        regs[rf as usize & 15]
                    };
                }
                DecodedOp::LdrR { rd, base, roff } => {
                    charge!(c);
                    let addr = (regs[base as usize & 15] as u32)
                        .wrapping_add(regs[roff as usize & 15] as u32);
                    regs[rd as usize & 15] = ld(mem, addr)?;
                }
                DecodedOp::LdrI { rd, base, imm } => {
                    charge!(c);
                    let addr = (regs[base as usize & 15] as u32).wrapping_add(imm as u32);
                    regs[rd as usize & 15] = ld(mem, addr)?;
                }
                DecodedOp::StrR { rs, base, roff } => {
                    charge!(c);
                    let addr = (regs[base as usize & 15] as u32)
                        .wrapping_add(regs[roff as usize & 15] as u32);
                    st(mem, addr, regs[rs as usize & 15])?;
                }
                DecodedOp::StrI { rs, base, imm } => {
                    charge!(c);
                    let addr = (regs[base as usize & 15] as u32).wrapping_add(imm as u32);
                    st(mem, addr, regs[rs as usize & 15])?;
                }
                DecodedOp::Push { list } => {
                    charge!(c);
                    for r in &reg_pool[list.start as usize..list.start as usize + list.len as usize]
                    {
                        let top = (regs[sp] as u32).wrapping_sub(4);
                        regs[sp] = top as i32;
                        st(mem, top, regs[r.index() & 15])?;
                    }
                }
                DecodedOp::Pop { list } => {
                    charge!(c);
                    for r in reg_pool[list.start as usize..list.start as usize + list.len as usize]
                        .iter()
                        .rev()
                    {
                        let top = regs[sp] as u32;
                        let v = ld(mem, top)?;
                        regs[r.index() & 15] = v;
                        regs[sp] = top.wrapping_add(4) as i32;
                    }
                }
                DecodedOp::Call { target } => {
                    charge!(c);
                    if stack.len() >= MAX_CALL_DEPTH {
                        return Err(MachineError::CallDepth);
                    }
                    stack.push(pc as u32 + 1);
                    pc = target as usize;
                    continue;
                }
                DecodedOp::In { rd, port } => {
                    charge!(c);
                    regs[rd as usize & 15] = device.input(port);
                }
                DecodedOp::Out { rs, port } => {
                    charge!(c);
                    device.output(port, regs[rs as usize & 15]);
                }
                DecodedOp::Nop => charge!(c),
                DecodedOp::Branch { target } => {
                    charge!(c);
                    pc = target as usize;
                    continue;
                }
                DecodedOp::CondBranch {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    insns += 1;
                    counts[(c.class as usize) & 15] += 1;
                    let (a, b) = *flags;
                    if cond.holds(a, b) {
                        cycles += c.cyc;
                        energy += c.inc_pj;
                        pc = taken as usize;
                    } else {
                        cycles += c.cyc_nt;
                        energy += c.inc_nt_pj;
                        pc = fallthrough as usize;
                    }
                    continue;
                }
                DecodedOp::Ret => {
                    charge!(c);
                    match stack.pop() {
                        Some(ret) => {
                            pc = ret as usize;
                            continue;
                        }
                        None => break,
                    }
                }
                DecodedOp::Halt => {
                    charge!(c);
                    break;
                }
            }
            pc += 1;
        }

        let mut class_counts = [0u64; ENERGY_CLASS_COUNT];
        class_counts.copy_from_slice(&counts[..ENERGY_CLASS_COUNT]);
        Ok(RunResult {
            return_value: regs[0],
            cycles,
            insns,
            energy_pj: energy,
            class_counts,
        })
    }
}

/// Largest per-op increment admitted to the exact-integer path. Keeps
/// `max_budget` comfortably large while every partial sum stays below
/// 2^52.
const MAX_EXACT_INC: f64 = (1u64 << 40) as f64;

/// `v` as an exact nonnegative integer, or `None` if it isn't one.
fn exact_int(v: f64) -> Option<u64> {
    ((0.0..=MAX_EXACT_INC).contains(&v) && v.fract() == 0.0).then_some(v as u64)
}

fn is_control(op: &DecodedOp) -> bool {
    matches!(
        op,
        DecodedOp::Branch { .. }
            | DecodedOp::CondBranch { .. }
            | DecodedOp::Call { .. }
            | DecodedOp::Ret
            | DecodedOp::Halt
    )
}

/// Build the run-aggregated integer accounting tables, or `None` if any
/// energy increment is not an exact nonnegative integer (a custom model
/// with fractional picojoules falls back to the per-insn loop).
fn build_exact_tables(
    image: &DecodedImage,
    steps: &[Step],
    steps_first: &[Step],
    em: &GroundTruthEnergy,
) -> Option<ExactTables> {
    let mut ovh_branch_u = [0u64; ENERGY_CLASS_COUNT];
    for (k, cur) in EnergyClass::ALL.iter().enumerate() {
        ovh_branch_u[k] = exact_int(em.overhead(EnergyClass::Branch, *cur))?;
    }

    let n = steps.len();
    let mut aggs = vec![RunAgg::default(); n];
    let mut pre = vec![0u64; n];
    let mut sites = Vec::new();
    let mut acc = RunAgg::default();
    let mut entry = 0usize;
    let mut max_inc = 1u64;
    let mut max_run_cyc = 0u64;
    for (i, s) in steps.iter().enumerate() {
        let c = &s.cost;
        if c.cyc == 0 || c.cyc_nt == 0 {
            // The budget cap below assumes insns ≤ cycles; a custom
            // cycle model with free ops would break that.
            return None;
        }
        let inc = exact_int(c.inc_pj)?;
        let inc_nt = exact_int(c.inc_nt_pj)?;
        max_inc = max_inc.max(inc).max(inc_nt);
        let cls = c.class as usize;
        if is_control(&s.op) {
            pre[entry] = acc.cyc;
            let mut counts = acc.counts;
            counts[cls] += 1;
            let agg = RunAgg {
                cyc: acc.cyc + c.cyc,
                cyc_nt: acc.cyc + c.cyc_nt,
                en: acc.en + inc,
                en_nt: acc.en + inc_nt,
                insns: acc.insns + 1,
                counts,
            };
            max_run_cyc = max_run_cyc.max(agg.cyc).max(agg.cyc_nt);
            aggs[i] = agg;
            sites.push(i as u32);
            acc = RunAgg::default();
            entry = i + 1;
        } else {
            acc.cyc += c.cyc;
            acc.en += inc;
            acc.insns += 1;
            acc.counts[cls] += 1;
        }
    }
    if acc.insns != 0 {
        // A validated program always ends each function on a terminator,
        // so a dangling run means the image is malformed — refuse the
        // fast path rather than miscount.
        return None;
    }

    // A run's first charged insn has no predecessor: its true increment
    // is the static baking minus `overhead(Branch, class)`. Verify the
    // identity holds exactly in the integer domain for every function
    // entry (the only ops the engine can start a call on).
    for f in &image.functions {
        let i = f.entry as usize;
        let cls = steps[i].cost.class as usize;
        let static_u = exact_int(steps[i].cost.inc_pj)?;
        let static_nt_u = exact_int(steps[i].cost.inc_nt_pj)?;
        if static_u.checked_sub(ovh_branch_u[cls]) != exact_int(steps_first[i].cost.inc_pj)
            || static_nt_u.checked_sub(ovh_branch_u[cls])
                != exact_int(steps_first[i].cost.inc_nt_pj)
        {
            return None;
        }
    }

    // Total charged insns never exceed total cycles (every op costs at
    // least one cycle), and cycles overshoot the budget by at most one
    // run — cap the budget so every partial energy sum stays below 2^52.
    let max_budget = ((1u64 << 52) / max_inc).saturating_sub(max_run_cyc + 1);
    Some(ExactTables {
        aggs,
        pre,
        sites,
        ovh_branch_u,
        max_budget,
    })
}

/// The energy class an op charges under, mirroring
/// [`EnergyClass::of_insn`] and [`EnergyClass::of_terminator`].
fn op_class(op: &DecodedOp) -> EnergyClass {
    match op {
        DecodedOp::AluRR { op, .. } | DecodedOp::AluRI { op, .. } => match op {
            AluOp::Mul => EnergyClass::Mul,
            AluOp::Div | AluOp::Rem => EnergyClass::Div,
            _ => EnergyClass::Alu,
        },
        DecodedOp::MovR { .. }
        | DecodedOp::MovI { .. }
        | DecodedOp::MovI32 { .. }
        | DecodedOp::CmpR { .. }
        | DecodedOp::CmpI { .. }
        | DecodedOp::Csel { .. } => EnergyClass::Alu,
        DecodedOp::LdrR { .. } | DecodedOp::LdrI { .. } => EnergyClass::Load,
        DecodedOp::StrR { .. } | DecodedOp::StrI { .. } => EnergyClass::Store,
        DecodedOp::Push { .. } | DecodedOp::Pop { .. } => EnergyClass::Stack,
        DecodedOp::Call { .. }
        | DecodedOp::Branch { .. }
        | DecodedOp::CondBranch { .. }
        | DecodedOp::Ret => EnergyClass::Branch,
        DecodedOp::In { .. } | DecodedOp::Out { .. } => EnergyClass::Io,
        DecodedOp::Nop | DecodedOp::Halt => EnergyClass::Idle,
    }
}

/// Bake one op's cycle and energy constants against its statically-known
/// predecessor class (`None` = the run's first instruction). The
/// class/cycle mapping mirrors [`CycleModel::cycles`],
/// [`CycleModel::terminator_cycles`], [`EnergyClass::of_insn`] and
/// [`EnergyClass::of_terminator`]; the f64 combination below repeats the
/// reference's `dynamic_energy` + leakage additions in their exact
/// order. The differential oracle pins the two code paths together.
fn op_cost(
    op: &DecodedOp,
    image: &DecodedImage,
    cm: &CycleModel,
    em: &GroundTruthEnergy,
    prev: Option<EnergyClass>,
) -> OpCost {
    let (cyc, cyc_nt, class, regs_moved) = match op {
        DecodedOp::AluRR { op, .. } | DecodedOp::AluRI { op, .. } => {
            let (cyc, class) = match op {
                AluOp::Mul => (cm.mul, EnergyClass::Mul),
                AluOp::Div | AluOp::Rem => (cm.div, EnergyClass::Div),
                _ => (cm.alu, EnergyClass::Alu),
            };
            (cyc, cyc, class, 0)
        }
        DecodedOp::MovR { .. } | DecodedOp::MovI { .. } => (cm.mov, cm.mov, EnergyClass::Alu, 0),
        DecodedOp::MovI32 { .. } => (cm.mov32, cm.mov32, EnergyClass::Alu, 0),
        DecodedOp::CmpR { .. } | DecodedOp::CmpI { .. } => (cm.cmp, cm.cmp, EnergyClass::Alu, 0),
        DecodedOp::Csel { .. } => (cm.csel, cm.csel, EnergyClass::Alu, 0),
        DecodedOp::LdrR { .. } | DecodedOp::LdrI { .. } => (cm.load, cm.load, EnergyClass::Load, 0),
        DecodedOp::StrR { .. } | DecodedOp::StrI { .. } => {
            (cm.store, cm.store, EnergyClass::Store, 0)
        }
        DecodedOp::Push { list } | DecodedOp::Pop { list } => {
            let n = image.reg_list(*list).len();
            let cyc = 1 + cm.push_pop_per_reg * n as u64;
            (cyc, cyc, EnergyClass::Stack, n)
        }
        DecodedOp::Call { .. } => (cm.call, cm.call, EnergyClass::Branch, 0),
        DecodedOp::In { .. } => (cm.port_in, cm.port_in, EnergyClass::Io, 0),
        DecodedOp::Out { .. } => (cm.port_out, cm.port_out, EnergyClass::Io, 0),
        DecodedOp::Nop => (cm.nop, cm.nop, EnergyClass::Idle, 0),
        DecodedOp::Branch { .. } => (cm.branch, cm.branch, EnergyClass::Branch, 0),
        DecodedOp::CondBranch { .. } => (cm.cond_taken, cm.cond_not_taken, EnergyClass::Branch, 0),
        DecodedOp::Ret => (cm.ret, cm.ret, EnergyClass::Branch, 0),
        DecodedOp::Halt => (cm.nop, cm.nop, EnergyClass::Idle, 0),
    };
    debug_assert_eq!(class, op_class(op));
    let mut e = em.base(class);
    if let Some(prev) = prev {
        e += em.overhead(prev, class);
    }
    if class == EnergyClass::Stack {
        e += em.stack_per_reg * regs_moved as f64;
    }
    OpCost {
        cyc,
        cyc_nt,
        class: class.index() as u8,
        inc_pj: e + em.leakage_per_cycle * cyc as f64,
        inc_nt_pj: e + em.leakage_per_cycle * cyc_nt as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::ports::{NullDevice, RecordingDevice};
    use std::collections::BTreeMap;
    use teamplay_isa::{Block, BlockId, Cond, Function, Insn, Operand, Terminator};

    fn differential(p: &Program, func: &str, args: &[i32]) {
        let mut reference = Machine::new(p.clone()).expect("reference loads");
        let decoded = DecodedProgram::new(p).expect("decodes");
        let mut engine = decoded.engine();
        let want = reference.call(func, args, &mut RecordingDevice::new());
        let got = engine.call(func, args, &mut RecordingDevice::new());
        match (&want, &got) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "{func}{args:?}");
                assert_eq!(
                    a.energy_pj.to_bits(),
                    b.energy_pj.to_bits(),
                    "{func}{args:?}: energy bits diverge"
                );
            }
            _ => assert_eq!(want, got, "{func}{args:?}"),
        }
    }

    fn fib_program() -> Program {
        // Recursive fib with callee-saved push/pop: exercises calls,
        // stack traffic, both branch outcomes and every charge path.
        let mut p = Program::new();
        let f = Function {
            name: "fib".into(),
            blocks: vec![
                Block {
                    insns: vec![Insn::Cmp {
                        rn: Reg::R0,
                        src: Operand::Imm(2),
                    }],
                    terminator: Terminator::CondBranch {
                        cond: Cond::Lt,
                        taken: BlockId(2),
                        fallthrough: BlockId(1),
                    },
                },
                Block {
                    insns: vec![
                        Insn::Push {
                            regs: vec![Reg::R4, Reg::R5],
                        },
                        Insn::Mov {
                            rd: Reg::R4,
                            src: Operand::Reg(Reg::R0),
                        },
                        Insn::Alu {
                            op: AluOp::Sub,
                            rd: Reg::R0,
                            rn: Reg::R4,
                            src: Operand::Imm(1),
                        },
                        Insn::Call { func: "fib".into() },
                        Insn::Mov {
                            rd: Reg::R5,
                            src: Operand::Reg(Reg::R0),
                        },
                        Insn::Alu {
                            op: AluOp::Sub,
                            rd: Reg::R0,
                            rn: Reg::R4,
                            src: Operand::Imm(2),
                        },
                        Insn::Call { func: "fib".into() },
                        Insn::Alu {
                            op: AluOp::Add,
                            rd: Reg::R0,
                            rn: Reg::R5,
                            src: Operand::Reg(Reg::R0),
                        },
                        Insn::Pop {
                            regs: vec![Reg::R4, Reg::R5],
                        },
                    ],
                    terminator: Terminator::Return,
                },
                Block::empty(Terminator::Return),
            ],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        p
    }

    #[test]
    fn recursion_matches_reference_bitwise() {
        let p = fib_program();
        for n in [0, 1, 2, 7, 12] {
            differential(&p, "fib", &[n]);
        }
    }

    #[test]
    fn globals_persist_and_reset_like_the_reference() {
        let mut p = Program::new();
        p.globals.insert("g".into(), vec![100]);
        let addr = DataLayout::of_program(&p).address("g").expect("g") as i32;
        let f = Function {
            name: "bump".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::MovImm32 {
                        rd: Reg::R1,
                        imm: addr,
                    },
                    Insn::Ldr {
                        rd: Reg::R2,
                        base: Reg::R1,
                        offset: Operand::Imm(0),
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R2,
                        rn: Reg::R2,
                        src: Operand::Imm(1),
                    },
                    Insn::Str {
                        rs: Reg::R2,
                        base: Reg::R1,
                        offset: Operand::Imm(0),
                    },
                    Insn::Mov {
                        rd: Reg::R0,
                        src: Operand::Reg(Reg::R2),
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let decoded = DecodedProgram::new(&p).expect("decodes");
        let mut engine = decoded.engine();
        let mut dev = NullDevice::new();
        assert_eq!(
            engine
                .call("bump", &[], &mut dev)
                .expect("run")
                .return_value,
            101
        );
        assert_eq!(
            engine
                .call("bump", &[], &mut dev)
                .expect("run")
                .return_value,
            102
        );
        assert_eq!(engine.read_global("g", 0), Some(102));
        engine.reset_data();
        assert_eq!(engine.read_global("g", 0), Some(100));
    }

    #[test]
    fn traps_match_reference() {
        // Misaligned load.
        let mut p = Program::new();
        let f = Function {
            name: "bad".into(),
            blocks: vec![Block {
                insns: vec![Insn::Ldr {
                    rd: Reg::R0,
                    base: Reg::R1,
                    offset: Operand::Imm(2),
                }],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        differential(&p, "bad", &[]);
        differential(&p, "ghost", &[]);
        differential(&p, "bad", &[0; 7]);

        // Cycle limit on an infinite loop.
        let mut spin = Program::new();
        let f = Function {
            name: "spin".into(),
            blocks: vec![Block::empty(Terminator::Branch(BlockId(0)))],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        spin.add_function(f);
        let decoded = DecodedProgram::new(&spin).expect("decodes");
        let mut engine = decoded.engine();
        engine.set_max_cycles(1_000);
        assert_eq!(
            engine.call("spin", &[], &mut NullDevice::new()),
            Err(MachineError::CycleLimit)
        );
    }

    #[test]
    fn ports_drive_the_same_device_traffic() {
        let mut p = Program::new();
        let f = Function {
            name: "echo".into(),
            blocks: vec![Block {
                insns: vec![
                    Insn::In {
                        rd: Reg::R0,
                        port: 4,
                    },
                    Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::R0,
                        rn: Reg::R0,
                        src: Operand::Imm(1),
                    },
                    Insn::Out {
                        rs: Reg::R0,
                        port: 9,
                    },
                ],
                terminator: Terminator::Return,
            }],
            loop_bounds: BTreeMap::new(),
            frame_size: 0,
        };
        p.add_function(f);
        let decoded = DecodedProgram::new(&p).expect("decodes");
        let mut engine = decoded.engine();
        let mut dev = RecordingDevice::new();
        dev.queue(4, [10]);
        let r = engine.call("echo", &[], &mut dev).expect("run");
        assert_eq!(r.return_value, 11);
        assert_eq!(dev.outputs, vec![(9, 11)]);
    }

    #[test]
    fn leon3_models_also_match_bitwise() {
        let p = fib_program();
        let cm = CycleModel::leon3();
        let em = GroundTruthEnergy::leon3();
        let mut reference = Machine::with_models(p.clone(), cm.clone(), em.clone()).expect("loads");
        let decoded = DecodedProgram::with_models(&p, &cm, &em).expect("decodes");
        let mut engine = decoded.engine();
        let want = reference
            .call("fib", &[10], &mut NullDevice::new())
            .expect("run");
        let got = engine
            .call("fib", &[10], &mut NullDevice::new())
            .expect("run");
        assert_eq!(want, got);
        assert_eq!(want.energy_pj.to_bits(), got.energy_pj.to_bits());
    }
}
