//! Security-aware Pareto search: leakage as the third objective family.
//!
//! The plain [`pareto_search_on`](crate::driver::pareto_search_on)
//! optimises (WCET, WCEC, code size). This module extends the genome
//! with one *ladder-rung gene* selecting the countermeasure level the
//! variant is compiled under — rung 0 is the task's plain IR, rung 1 the
//! [`ladderise_module`]-hardened IR — and appends a fourth objective:
//! the leakage the [`assess_leakage`] measurement rig observes on the
//! compiled variant (the worse channel's |Welch t|, always finite since
//! [`WELCH_T_CAP`](teamplay_security::WELCH_T_CAP) bounds degenerate
//! sample sets). The FPA then explores the full time/energy/leakage
//! trade-off space the paper's Fig. 1 promises: a hardened variant costs
//! cycles and picojoules but crushes the leakage axis, and the archive
//! keeps both ends of that trade.
//!
//! Determinism carries over unchanged from the plain search: the rung
//! gene decodes purely, both rungs evaluate through their own
//! [`EvalCache`] (one per IR), and leakage scores are memoized behind
//! per-(rung, config) `OnceLock`s with a deterministic simulator seed —
//! so secure fronts are bit-identical at any pool width.
//!
//! With a [`DiskStore`] attached, leakage scores persist alongside
//! evaluation entries under their own key chain (a `"leak"`
//! discriminator keeps the two entry kinds collision-free);
//! [`STORE_FORMAT_VERSION`] was bumped to 2 when these entries were
//! introduced.

use crate::driver::{
    copy_cache_counters, CompilerConfig, EvalCache, ParetoFront, TaskVariant, VariantSecurity,
};
use crate::fpa::{MultiObjectiveFpa, ParetoPoint};
use crate::store::{self, DiskStore, STORE_FORMAT_VERSION};
use crate::FpaConfig;
use minipool::Pool;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use teamplay_energy::IsaEnergyModel;
use teamplay_isa::{CycleModel, Program};
use teamplay_minic::ir::IrModule;
use teamplay_security::{
    assess_leakage, ladderise_module, secret_params_of, LadderReport, SecretSpec,
};

/// Genome dimensions of the secure search: the plain
/// [`CompilerConfig::GENOME_DIMS`] plus the trailing ladder-rung gene.
/// [`CompilerConfig::from_genome`] ignores genes past its own dims, so
/// the first 17 genes decode exactly as in the plain search.
pub const SECURE_GENOME_DIMS: usize = CompilerConfig::GENOME_DIMS + 1;

/// Number of countermeasure rungs the rung gene selects from.
pub const LADDER_RUNGS: u32 = 2;

/// Decode the ladder-rung gene (index [`CompilerConfig::GENOME_DIMS`],
/// absent = 0): `[0, 0.5)` → rung 0 (plain), `[0.5, 1]` → rung 1
/// (ladderised).
pub fn rung_of_genome(genome: &[f64]) -> u32 {
    let g = genome
        .get(CompilerConfig::GENOME_DIMS)
        .copied()
        .unwrap_or(0.0);
    u32::from(g >= 0.5)
}

/// Extend a plain 15-gene genome with an explicit rung gene (encoded at
/// the centre of its decoding window, mirroring
/// [`CompilerConfig::to_genome`]'s parameter style).
pub fn genome_with_rung(genome: &[f64], rung: u32) -> Vec<f64> {
    let mut g = genome.to_vec();
    g.resize(CompilerConfig::GENOME_DIMS, 0.0);
    g.push(if rung == 0 { 0.25 } else { 0.75 });
    g
}

/// The measurement-rig configuration of one secure search: which
/// argument of the task is secret, which two classes to compare, and
/// how to drive the simulator. Serializable so leakage-score store keys
/// can commit to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeakageRig {
    /// Total scalar argument count of the task function.
    pub arg_count: usize,
    /// The secret argument and its two classes.
    pub secret: SecretSpec,
    /// Traces per class (paired public draws).
    pub traces_per_class: usize,
    /// Lower bound (inclusive) of the public-input range.
    pub public_lo: i32,
    /// Upper bound (exclusive) of the public-input range.
    pub public_hi: i32,
    /// RNG seed of the rig (independent of the search seed).
    pub seed: u64,
}

/// Clone `ir` and run the countermeasure ladder over every function
/// with `secret(...)` annotations — the rung-1 module of the secure
/// search. Returns the hardened module and the per-function ladder
/// reports (callers deciding policy can check
/// [`LadderReport::fully_hardened`]).
pub fn ladderised_ir(ir: &IrModule) -> (IrModule, HashMap<String, LadderReport>) {
    let mut hard = ir.clone();
    let secrets: HashMap<_, _> = hard
        .functions
        .iter()
        .map(|f| (f.name.clone(), secret_params_of(f)))
        .filter(|(_, s)| !s.is_empty())
        .collect();
    let reports = ladderise_module(&mut hard, &secrets);
    (hard, reports)
}

/// Score one compiled variant on the rig: the worse channel's |Welch t|
/// (finite by construction). `None` when the measurement run traps —
/// treated as infeasible, exactly like a failed compile.
fn leak_score(program: &Program, task: &str, rig: &LeakageRig) -> Option<f64> {
    let report = assess_leakage(
        program,
        task,
        rig.arg_count,
        rig.secret,
        rig.traces_per_class,
        rig.public_lo..rig.public_hi,
        rig.seed,
    )
    .ok()?;
    Some(report.time.welch_t.max(report.energy.welch_t))
}

/// One memo slot: the `OnceLock` serialises concurrent probes of the
/// same (rung, config) variant.
type LeakSlot = Arc<OnceLock<Option<f64>>>;

/// Per-(rung, config) leakage memo: concurrent probes of one variant
/// block on a per-entry `OnceLock`, so each variant is simulated by
/// exactly one thread (the same discipline [`EvalCache`] applies to
/// compiles) and results are identical at any pool width. With a store
/// attached, misses probe/spill score entries keyed by the rung's own
/// prefix chain.
struct LeakMemo<'a> {
    rig: &'a LeakageRig,
    task: &'a str,
    entries: Mutex<HashMap<(u32, CompilerConfig), LeakSlot>>,
    disk: Option<&'a DiskStore>,
    /// FNV chain per rung over (format version, "leak" discriminator,
    /// the rung's IR, cost models, task, rig). Empty without a store.
    key_prefixes: Vec<u128>,
}

impl<'a> LeakMemo<'a> {
    fn new(rig: &'a LeakageRig, task: &'a str) -> LeakMemo<'a> {
        LeakMemo {
            rig,
            task,
            entries: Mutex::new(HashMap::new()),
            disk: None,
            key_prefixes: Vec::new(),
        }
    }

    fn with_store(
        rig: &'a LeakageRig,
        task: &'a str,
        disk: &'a DiskStore,
        irs: [&IrModule; 2],
        cycle_model: &CycleModel,
        energy_model: &IsaEnergyModel,
    ) -> LeakMemo<'a> {
        let mut memo = LeakMemo::new(rig, task);
        memo.disk = Some(disk);
        let base = store::hash_json(
            store::fnv_offset(),
            &(STORE_FORMAT_VERSION, "leak", task, rig),
        );
        let base = store::hash_json(base, &(cycle_model, energy_model));
        memo.key_prefixes = irs.iter().map(|ir| store::hash_json(base, ir)).collect();
        memo
    }

    fn score(&self, rung: u32, config: &CompilerConfig, program: &Program) -> Option<f64> {
        let cell = {
            let mut entries = self.entries.lock().expect("leak memo lock");
            entries
                .entry((rung, config.clone()))
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        *cell.get_or_init(|| match self.disk {
            Some(disk) => {
                let key = store::hash_json(self.key_prefixes[rung as usize], config);
                if let Some(found) = disk.load_score(key) {
                    found
                } else {
                    let fresh = leak_score(program, self.task, self.rig);
                    disk.store_score(key, &fresh);
                    fresh
                }
            }
            None => leak_score(program, self.task, self.rig),
        })
    }
}

/// The secure variant search on an explicit pool: FPA over the
/// rung-extended genome, objectives (WCET, WCEC, code size, leakage).
/// `plain_ir` is the task module as written; `hard_ir` its ladderised
/// counterpart (see [`ladderised_ir`]). Bit-identical output at any
/// pool width for a fixed seed; every returned variant carries
/// [`TaskVariant::security`] with its rung and measured leakage, and
/// the front is sorted by (WCET, rung).
#[allow(clippy::too_many_arguments)] // pareto_search_on's signature + the rig
pub fn pareto_search_secure_on(
    pool: &Pool,
    plain_ir: &IrModule,
    hard_ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
    rig: &LeakageRig,
) -> ParetoFront {
    let caches = [
        EvalCache::new(plain_ir, cycle_model, energy_model),
        EvalCache::new(hard_ir, cycle_model, energy_model),
    ];
    let memo = LeakMemo::new(rig, task);
    search(pool, &caches, &memo, task, fpa_config, seed)
}

/// [`pareto_search_secure_on`] with a persistent [`DiskStore`] bottom
/// tier for both the per-rung evaluations and the leakage scores: a
/// rerun of the same search in a fresh process replays everything from
/// disk and returns a byte-identical front.
#[allow(clippy::too_many_arguments)] // pareto_search_secure_on's signature + the store
pub fn pareto_search_secure_with_store(
    pool: &Pool,
    plain_ir: &IrModule,
    hard_ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
    rig: &LeakageRig,
    disk: &DiskStore,
) -> ParetoFront {
    let caches = [
        EvalCache::with_store(plain_ir, cycle_model, energy_model, disk),
        EvalCache::with_store(hard_ir, cycle_model, energy_model, disk),
    ];
    let memo = LeakMemo::with_store(
        rig,
        task,
        disk,
        [plain_ir, hard_ir],
        cycle_model,
        energy_model,
    );
    search(pool, &caches, &memo, task, fpa_config, seed)
}

fn search(
    pool: &Pool,
    caches: &[EvalCache<'_>; 2],
    memo: &LeakMemo<'_>,
    task: &str,
    fpa_config: FpaConfig,
    seed: u64,
) -> ParetoFront {
    let fpa = MultiObjectiveFpa::new(fpa_config);
    let outcome = fpa.run_on_seeded(pool, SECURE_GENOME_DIMS, seed, &[], |genome| {
        let rung = rung_of_genome(genome);
        let config = CompilerConfig::from_genome(genome);
        let (program, metrics) = caches[rung as usize].evaluate(&config)?;
        let m = metrics.of(task)?;
        let leakage = memo.score(rung, &config, &program)?;
        Some(vec![
            m.wcet_cycles as f64,
            m.wcec_pj,
            m.code_halfwords as f64,
            leakage,
        ])
    });

    let mut variants: Vec<TaskVariant> = Vec::new();
    for ParetoPoint { genome, objectives } in outcome.archive {
        let rung = rung_of_genome(&genome);
        let config = CompilerConfig::from_genome(&genome);
        // Deduplicate by decoded phenotype: (configuration, rung).
        if variants
            .iter()
            .any(|v| v.config == config && v.security.map(|s| s.rung) == Some(rung))
        {
            continue;
        }
        // Archived points were all evaluated during the search — cache
        // hits and memo replays, no recompiles or re-simulations.
        let Some((program, metrics)) = caches[rung as usize].evaluate(&config) else {
            continue;
        };
        let m = *metrics.of(task).expect("task analysed");
        let Some(leakage) = memo.score(rung, &config, &program) else {
            continue;
        };
        debug_assert_eq!(m.wcet_cycles as f64, objectives[0]);
        debug_assert_eq!(leakage.to_bits(), objectives[3].to_bits());
        variants.push(TaskVariant {
            config,
            metrics: m,
            program,
            security: Some(VariantSecurity { rung, leakage }),
        });
    }
    variants.sort_by_key(|v| {
        (
            v.metrics.wcet_cycles,
            v.security.map(|s| s.rung).unwrap_or(0),
        )
    });

    let mut stats = outcome.stats;
    // Both rungs' caches feed one search: surface their combined
    // traffic (each counter tier sums, preserving the plain search's
    // `disk_hits + disk_misses == cache_misses` invariant).
    copy_cache_counters(&mut stats, &caches[0]);
    stats.cache_hits += caches[1].hits();
    stats.cache_misses += caches[1].misses();
    stats.disk_hits += caches[1].disk_hits();
    stats.disk_misses += caches[1].disk_misses();

    ParetoFront { variants, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;

    /// A branchy secret comparator: rung 0 leaks, rung 1 must not.
    const SECRET_TASK: &str = "/*@ secret(k) @*/
        int gate(int k, int x) {
            int r = 0;
            if (k > 100) { r = (x * 3 + k) * (x - 2) + x / 3; } else { r = x; }
            return r;
        }";

    fn rig() -> LeakageRig {
        LeakageRig {
            arg_count: 2,
            secret: SecretSpec {
                arg_index: 0,
                class0: 0,
                class1: 200,
            },
            traces_per_class: 24,
            public_lo: 0,
            public_hi: 1000,
            seed: 7,
        }
    }

    #[test]
    fn rung_gene_round_trips_and_prefix_decodes_identically() {
        for rung in [0, 1] {
            let plain = vec![0.3; CompilerConfig::GENOME_DIMS];
            let g = genome_with_rung(&plain, rung);
            assert_eq!(g.len(), SECURE_GENOME_DIMS);
            assert_eq!(rung_of_genome(&g), rung);
            // The rung gene is invisible to the config decoder.
            assert_eq!(
                CompilerConfig::from_genome(&g),
                CompilerConfig::from_genome(&plain)
            );
        }
        // A bare 15-gene genome is rung 0.
        assert_eq!(rung_of_genome(&[0.9; CompilerConfig::GENOME_DIMS]), 0);
    }

    #[test]
    fn secure_front_mixes_rungs_and_the_ladder_cuts_leakage() {
        let ir = compile_to_ir(SECRET_TASK).expect("front-end");
        let (hard, reports) = ladderised_ir(&ir);
        assert!(reports["gate"].fully_hardened(), "{reports:?}");
        let front = pareto_search_secure_on(
            &Pool::new(1),
            &ir,
            &hard,
            "gate",
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
            FpaConfig::tiny(),
            42,
            &rig(),
        );
        assert!(!front.variants.is_empty());
        for v in &front.variants {
            let s = v.security.expect("secure variants carry security");
            assert!(s.leakage.is_finite());
            assert!(s.rung < LADDER_RUNGS);
        }
        // The hardened rung must appear on the front (it owns the
        // leakage axis) and beat every rung-0 variant on it.
        let best_hard = front
            .variants
            .iter()
            .filter_map(|v| v.security.filter(|s| s.rung == 1))
            .map(|s| s.leakage)
            .fold(f64::INFINITY, f64::min);
        let best_plain = front
            .variants
            .iter()
            .filter_map(|v| v.security.filter(|s| s.rung == 0))
            .map(|s| s.leakage)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_hard < best_plain,
            "ladderised variants must dominate the leakage axis: \
             rung1 {best_hard} vs rung0 {best_plain}"
        );
    }

    #[test]
    fn secure_search_is_byte_identical_across_pool_widths() {
        let ir = compile_to_ir(SECRET_TASK).expect("front-end");
        let (hard, _) = ladderised_ir(&ir);
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let run = |threads: usize| {
            pareto_search_secure_on(
                &Pool::new(threads),
                &ir,
                &hard,
                "gate",
                &cm,
                &em,
                FpaConfig::tiny(),
                42,
                &rig(),
            )
        };
        let seq = run(1);
        let seq_bytes = serde_json::to_string(&seq.variants).expect("serializes");
        for threads in [2, 4] {
            let par = run(threads);
            let par_bytes = serde_json::to_string(&par.variants).expect("serializes");
            assert_eq!(seq_bytes, par_bytes, "{threads}-thread front diverged");
            assert_eq!(seq.stats, par.stats, "{threads}-thread stats diverged");
        }
    }

    #[test]
    fn secure_search_warm_starts_from_the_store() {
        let dir =
            std::env::temp_dir().join(format!("teamplay-secure-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskStore::open(&dir).expect("store dir");
        let ir = compile_to_ir(SECRET_TASK).expect("front-end");
        let (hard, _) = ladderised_ir(&ir);
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let run = || {
            pareto_search_secure_with_store(
                &Pool::new(2),
                &ir,
                &hard,
                "gate",
                &cm,
                &em,
                FpaConfig::tiny(),
                9,
                &rig(),
                &disk,
            )
        };
        let cold = run();
        assert!(cold.stats.disk_misses > 0);
        assert_eq!(cold.stats.disk_hits, 0);
        let warm = run();
        assert_eq!(warm.stats.disk_misses, 0, "everything replays from disk");
        assert_eq!(warm.stats.disk_hits, cold.stats.disk_misses);
        let bytes = |f: &ParetoFront| serde_json::to_string(&f.variants).expect("serializes");
        assert_eq!(bytes(&cold), bytes(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
