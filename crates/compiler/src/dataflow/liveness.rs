//! Global liveness of IR temps: per-block live-in/live-out sets.
//!
//! The classic backward may-analysis: a temp is live at a point when
//! some path from that point reads it before writing it. Solved as the
//! usual `in[b] = use[b] ∪ (out[b] − def[b])`, `out[b] = ∪ in[succ]`
//! fixpoint, iterated in postorder (the backward-friendly order) until
//! stable. Terminator reads (branch conditions, return values) belong
//! to their block's `use` set like any op read.
//!
//! The consumer that motivated this analysis is register coalescing at
//! the IR→ISA transfer ([`crate::codegen`]): two copy-related temps
//! whose live ranges never overlap can share one home, turning the
//! copy into nothing at all.

use super::{for_each_read, for_each_term_read, for_each_write, BitSet};
use teamplay_minic::cfg::{self, CfgView};
use teamplay_minic::ir::{IrFunction, Temp};

/// Per-block liveness sets over the temps of one function.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BitSet>,
    live_out: Vec<BitSet>,
}

impl Liveness {
    /// Solve liveness for `f`.
    pub fn build(f: &IrFunction) -> Liveness {
        let n = f.blocks.len();
        let temps = f.temp_count as usize;
        let mut use_of = vec![BitSet::new(temps); n];
        let mut def_of = vec![BitSet::new(temps); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let (uses, defs) = (&mut use_of[bi], &mut def_of[bi]);
            for op in &b.ops {
                for_each_read(op, |t| {
                    if !defs.contains(t.0 as usize) {
                        uses.insert(t.0 as usize);
                    }
                });
                for_each_write(op, |t| {
                    defs.insert(t.0 as usize);
                });
            }
            for_each_term_read(&b.term, |t| {
                if !defs.contains(t.0 as usize) {
                    uses.insert(t.0 as usize);
                }
            });
        }

        let mut live_in = vec![BitSet::new(temps); n];
        let mut live_out = vec![BitSet::new(temps); n];
        // Postorder (reverse of RPO) converges fastest for a backward
        // problem; unreachable blocks are appended so their sets are
        // still defined (they converge in one visit).
        let rpo = cfg::reverse_postorder(f);
        let mut order: Vec<usize> = rpo.iter().rev().copied().collect();
        let in_rpo: std::collections::HashSet<usize> = rpo.iter().copied().collect();
        order.extend((0..n).filter(|b| !in_rpo.contains(b)));
        loop {
            let mut changed = false;
            for &b in &order {
                let mut out = BitSet::new(temps);
                for s in f.successors(b) {
                    out.union_with(&live_in[s]);
                }
                let mut inn = out.clone();
                inn.subtract(&def_of[b]);
                inn.union_with(&use_of[b]);
                changed |= live_out[b] != out || live_in[b] != inn;
                live_out[b] = out;
                live_in[b] = inn;
            }
            if !changed {
                return Liveness { live_in, live_out };
            }
        }
    }

    /// Temps live on entry to block `b`.
    pub fn live_in(&self, b: usize) -> &BitSet {
        &self.live_in[b]
    }

    /// Temps live on exit from block `b` (the union of its successors'
    /// live-in sets).
    pub fn live_out(&self, b: usize) -> &BitSet {
        &self.live_out[b]
    }

    /// Is `t` live on entry to block `b`?
    pub fn is_live_in(&self, b: usize, t: Temp) -> bool {
        self.live_in[b].contains(t.0 as usize)
    }

    /// Is `t` live on exit from block `b`?
    pub fn is_live_out(&self, b: usize, t: Temp) -> bool {
        self.live_out[b].contains(t.0 as usize)
    }
}
