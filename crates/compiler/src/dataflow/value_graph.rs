//! Def-use chains and a hash-consed, constant-folding value graph.
//!
//! [`DefUse`] records, per temp, every definition and use site as a
//! `(block, op index)` pair (terminator reads use the index one past
//! the last op). It is the precision layer `licm` and `gvn` need on a
//! non-SSA IR: "single static definition", "no other def inside this
//! loop", "every use dominated by the def" are all direct queries.
//!
//! [`ValueGraph`] resolves each *single-def* temp to a node in a
//! hash-consed expression DAG: constants, parameters, opaque sources
//! (loads, calls, port reads, multi-def temps, cyclic chains) and pure
//! operator nodes over child nodes. Nodes whose children are constants
//! fold at construction with the interpreter's own operator semantics,
//! so [`ValueGraph::const_of_temp`] answers "does this temp always
//! hold constant k?" even when k flowed through a chain of copies and
//! arithmetic across blocks — the fact the loop-bound prover feeds
//! into the IPET engine.
//!
//! The module also hosts the coarse store/call aliasing test
//! ([`may_alias`] / [`op_clobbers`]) shared by `cse`, `gvn` and
//! `load_fwd`: `Param` bases may alias anything, named globals and
//! locals only themselves.

use super::{for_each_read, for_each_term_read, for_each_write};
use std::collections::HashMap;
use teamplay_minic::ast::{BinOp, UnOp};
use teamplay_minic::interp::eval_binop;
use teamplay_minic::ir::{IrFunction, IrOp, MemBase, Operand, Temp};

/// Per-temp definition and use sites over one function.
///
/// Sites are `(block index, op index)`; a use in a block's terminator
/// is recorded at op index `block.ops.len()`. Parameters are *not*
/// listed as definition sites (they are defined "before" the entry
/// block) but are reported by [`DefUse::is_param`] and counted by
/// [`DefUse::def_count`].
#[derive(Clone, Debug)]
pub struct DefUse {
    defs: Vec<Vec<(usize, usize)>>,
    uses: Vec<Vec<(usize, usize)>>,
    param: Vec<bool>,
}

impl DefUse {
    /// Scan `f` and collect every def and use site.
    pub fn build(f: &IrFunction) -> DefUse {
        let n = f.temp_count as usize;
        let mut defs = vec![Vec::new(); n];
        let mut uses = vec![Vec::new(); n];
        let mut param = vec![false; n];
        for p in &f.params {
            param[p.temp.0 as usize] = true;
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            for (oi, op) in b.ops.iter().enumerate() {
                for_each_read(op, |t| uses[t.0 as usize].push((bi, oi)));
                for_each_write(op, |t| defs[t.0 as usize].push((bi, oi)));
            }
            for_each_term_read(&b.term, |t| uses[t.0 as usize].push((bi, b.ops.len())));
        }
        DefUse { defs, uses, param }
    }

    /// Definition sites of `t` (ops only — see [`DefUse::is_param`]).
    pub fn defs(&self, t: Temp) -> &[(usize, usize)] {
        &self.defs[t.0 as usize]
    }

    /// Use sites of `t`, in block/op order.
    pub fn uses(&self, t: Temp) -> &[(usize, usize)] {
        &self.uses[t.0 as usize]
    }

    /// Whether `t` is a function parameter (defined at entry).
    pub fn is_param(&self, t: Temp) -> bool {
        self.param[t.0 as usize]
    }

    /// Total definition count: op defs plus one for a parameter.
    pub fn def_count(&self, t: Temp) -> usize {
        self.defs[t.0 as usize].len() + usize::from(self.param[t.0 as usize])
    }

    /// The unique op definition site of `t`, when `t` has exactly one
    /// definition in the whole function (and is not a parameter).
    pub fn single_def(&self, t: Temp) -> Option<(usize, usize)> {
        match (self.param[t.0 as usize], self.defs[t.0 as usize].as_slice()) {
            (false, [site]) => Some(*site),
            _ => None,
        }
    }
}

/// May a store through `a` write memory a load through `b` reads?
/// Coarse but sound: array parameters can alias anything (callers pass
/// globals and locals by reference), named globals and local arrays
/// only alias themselves.
pub fn may_alias(a: &MemBase, b: &MemBase) -> bool {
    match (a, b) {
        (MemBase::Param(_), _) | (_, MemBase::Param(_)) => true,
        (MemBase::Global(x), MemBase::Global(y)) => x == y,
        (MemBase::Local(x), MemBase::Local(y)) => x == y,
        _ => false,
    }
}

/// May executing `op` change the memory behind `base`? `Store` clobbers
/// aliasing bases, `Call` clobbers everything (callees may write any
/// global or any array passed by reference anywhere in the call graph).
pub fn op_clobbers(op: &IrOp, base: &MemBase) -> bool {
    match op {
        IrOp::Store { base: sb, .. } => may_alias(sb, base),
        IrOp::Call { .. } => true,
        _ => false,
    }
}

/// Identity of one value-graph node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ValueNode {
    /// A compile-time constant.
    Const(i32),
    /// A function parameter.
    Param(Temp),
    /// An unanalysable source (load, call result, port read, multi-def
    /// temp, or a cyclic def chain); the id keeps distinct sources from
    /// hash-consing together.
    Opaque(u32),
    /// A pure binary operator over two nodes.
    Bin(BinOp, usize, usize),
    /// A pure unary operator over a node.
    Un(UnOp, usize),
    /// A branchless select over three nodes.
    Select(usize, usize, usize),
}

/// The hash-consed value graph of one function.
#[derive(Clone, Debug)]
pub struct ValueGraph {
    nodes: Vec<ValueNode>,
    /// Node of each temp (`None` for temps without any definition).
    temp_node: Vec<Option<usize>>,
    /// Direct operand temps of each single-def temp's defining op.
    operand_temps: Vec<Vec<Temp>>,
}

/// Resolution state of one temp during construction.
enum Resolve {
    InProgress,
    Done(usize),
}

impl ValueGraph {
    /// Build the value graph of `f` over its def-use chains.
    pub fn build(f: &IrFunction, du: &DefUse) -> ValueGraph {
        let n = f.temp_count as usize;
        let mut vg = ValueGraph {
            nodes: Vec::new(),
            temp_node: vec![None; n],
            operand_temps: vec![Vec::new(); n],
        };
        let mut interner: HashMap<ValueNode, usize> = HashMap::new();
        let mut opaque_seq = 0u32;
        let mut state: Vec<Option<Resolve>> = (0..n).map(|_| None).collect();
        for t in 0..n {
            vg.resolve(
                Temp(t as u32),
                f,
                du,
                &mut interner,
                &mut opaque_seq,
                &mut state,
            );
        }
        vg
    }

    fn intern(&mut self, interner: &mut HashMap<ValueNode, usize>, node: ValueNode) -> usize {
        if let Some(&id) = interner.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node.clone());
        interner.insert(node, id);
        id
    }

    fn fresh_opaque(&mut self, opaque_seq: &mut u32) -> usize {
        let id = self.nodes.len();
        self.nodes.push(ValueNode::Opaque(*opaque_seq));
        *opaque_seq += 1;
        id
    }

    fn mk_bin(
        &mut self,
        interner: &mut HashMap<ValueNode, usize>,
        op: BinOp,
        a: usize,
        b: usize,
    ) -> usize {
        if let (ValueNode::Const(x), ValueNode::Const(y)) = (&self.nodes[a], &self.nodes[b]) {
            let v = eval_binop(op, *x, *y);
            return self.intern(interner, ValueNode::Const(v));
        }
        self.intern(interner, ValueNode::Bin(op, a, b))
    }

    fn mk_un(&mut self, interner: &mut HashMap<ValueNode, usize>, op: UnOp, a: usize) -> usize {
        if let ValueNode::Const(x) = self.nodes[a] {
            let v = match op {
                UnOp::Neg => x.wrapping_neg(),
                UnOp::BitNot => !x,
                UnOp::LogNot => i32::from(x == 0),
            };
            return self.intern(interner, ValueNode::Const(v));
        }
        self.intern(interner, ValueNode::Un(op, a))
    }

    fn resolve(
        &mut self,
        t: Temp,
        f: &IrFunction,
        du: &DefUse,
        interner: &mut HashMap<ValueNode, usize>,
        opaque_seq: &mut u32,
        state: &mut [Option<Resolve>],
    ) -> usize {
        let ti = t.0 as usize;
        match state[ti] {
            Some(Resolve::Done(id)) => return id,
            // A cyclic def chain (`i = i + 1` styles) is opaque.
            Some(Resolve::InProgress) => return self.fresh_opaque(opaque_seq),
            None => {}
        }
        state[ti] = Some(Resolve::InProgress);
        let id = if du.is_param(t) {
            self.intern(interner, ValueNode::Param(t))
        } else if let Some((bi, oi)) = du.single_def(t) {
            let op = f.blocks[bi].ops[oi].clone();
            let mut opnds = Vec::new();
            for_each_read(&op, |r| opnds.push(r));
            self.operand_temps[ti] = opnds;
            let child = |vg: &mut ValueGraph,
                         interner: &mut HashMap<ValueNode, usize>,
                         opaque_seq: &mut u32,
                         state: &mut [Option<Resolve>],
                         o: &Operand| match o {
                Operand::Const(c) => vg.intern(interner, ValueNode::Const(*c)),
                Operand::Temp(u) => vg.resolve(*u, f, du, interner, opaque_seq, state),
            };
            match &op {
                IrOp::Copy { src, .. } => child(self, interner, opaque_seq, state, src),
                IrOp::Bin { op: bop, a, b, .. } => {
                    let an = child(self, interner, opaque_seq, state, a);
                    let bn = child(self, interner, opaque_seq, state, b);
                    self.mk_bin(interner, *bop, an, bn)
                }
                IrOp::Un { op: uop, a, .. } => {
                    let an = child(self, interner, opaque_seq, state, a);
                    self.mk_un(interner, *uop, an)
                }
                IrOp::Select { cond, t, f: fo, .. } => {
                    let cn = child(self, interner, opaque_seq, state, cond);
                    let tn = child(self, interner, opaque_seq, state, t);
                    let fn_ = child(self, interner, opaque_seq, state, fo);
                    if let ValueNode::Const(c) = self.nodes[cn] {
                        if c != 0 {
                            tn
                        } else {
                            fn_
                        }
                    } else {
                        self.intern(interner, ValueNode::Select(cn, tn, fn_))
                    }
                }
                // Loads, calls and port reads are runtime sources.
                _ => self.fresh_opaque(opaque_seq),
            }
        } else {
            // Multi-def temps (and never-defined temps, which read 0 —
            // but nothing should consume them) are opaque.
            self.fresh_opaque(opaque_seq)
        };
        state[ti] = Some(Resolve::Done(id));
        self.temp_node[ti] = Some(id);
        id
    }

    /// The node a temp resolves to, if it has any definition.
    pub fn node_of_temp(&self, t: Temp) -> Option<&ValueNode> {
        self.temp_node[t.0 as usize].map(|id| &self.nodes[id])
    }

    /// The constant value `t` always evaluates to, if its whole def
    /// chain folds. (Validity at a *site* additionally needs the chain
    /// anchored by dominating defs — see the loop-bound prover.)
    pub fn const_of_temp(&self, t: Temp) -> Option<i32> {
        match self.node_of_temp(t) {
            Some(ValueNode::Const(c)) => Some(*c),
            _ => None,
        }
    }

    /// Resolve an operand: constants directly, temps through the graph.
    pub fn const_of_operand(&self, o: &Operand) -> Option<i32> {
        match o {
            Operand::Const(c) => Some(*c),
            Operand::Temp(t) => self.const_of_temp(*t),
        }
    }

    /// Direct operand temps of `t`'s defining op (empty unless `t` is
    /// single-def) — the edges of the def chain, for anchoring checks.
    pub fn operand_temps(&self, t: Temp) -> &[Temp] {
        &self.operand_temps[t.0 as usize]
    }

    /// Number of distinct nodes (diagnostic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}
