//! The immediate-dominator tree with O(1) `dominates` queries.
//!
//! [`DomTree`] wraps `teamplay_minic::cfg::immediate_dominators` (the
//! Cooper/Harvey/Kennedy iterative fixpoint over reverse postorder) and
//! adds the two things passes actually query: explicit children lists
//! and a DFS pre/post interval numbering of the tree, so `a dom b`
//! reduces to two integer comparisons instead of an idom-chain walk.

use teamplay_minic::cfg::{self, CfgView};

/// The dominator tree of one control-flow graph.
///
/// Unreachable blocks are outside the tree: they are reported by
/// [`DomTree::is_reachable`] and dominate nothing (not even
/// themselves). The entry block dominates every reachable block.
#[derive(Clone, Debug)]
pub struct DomTree {
    entry: usize,
    /// `idom[b]` — immediate dominator, `idom[entry] == entry`,
    /// `usize::MAX` for unreachable blocks.
    idom: Vec<usize>,
    children: Vec<Vec<usize>>,
    /// DFS entry/exit stamps over the tree; 0 marks unreachable.
    pre: Vec<u32>,
    post: Vec<u32>,
    rpo: Vec<usize>,
}

impl DomTree {
    /// Build the dominator tree of `g`.
    pub fn build(g: &impl CfgView) -> DomTree {
        let idom = cfg::immediate_dominators(g);
        let entry = g.entry();
        let n = idom.len();
        let mut children = vec![Vec::new(); n];
        for (b, &d) in idom.iter().enumerate() {
            if b != entry && d != usize::MAX {
                children[d].push(b);
            }
        }
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];
        let mut clock = 0u32;
        let mut stack: Vec<(usize, usize)> = Vec::new();
        if n > 0 {
            clock += 1;
            pre[entry] = clock;
            stack.push((entry, 0));
        }
        while let Some(top) = stack.last_mut() {
            let (b, next) = *top;
            if next < children[b].len() {
                top.1 += 1;
                let c = children[b][next];
                clock += 1;
                pre[c] = clock;
                stack.push((c, 0));
            } else {
                clock += 1;
                post[b] = clock;
                stack.pop();
            }
        }
        DomTree {
            entry,
            idom,
            children,
            pre,
            post,
            rpo: cfg::reverse_postorder(g),
        }
    }

    /// The entry block.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Number of blocks (reachable or not) the tree was built over.
    pub fn num_blocks(&self) -> usize {
        self.idom.len()
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        b < self.pre.len() && self.pre[b] != 0
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        if b == self.entry || !self.is_reachable(b) {
            None
        } else {
            Some(self.idom[b])
        }
    }

    /// Blocks immediately dominated by `b`.
    pub fn children(&self, b: usize) -> &[usize] {
        &self.children[b]
    }

    /// Does `a` dominate `b`? Reflexive (`a dom a`) on reachable
    /// blocks; always `false` when either block is unreachable.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        self.is_reachable(a)
            && self.is_reachable(b)
            && self.pre[a] <= self.pre[b]
            && self.post[b] <= self.post[a]
    }

    /// Does `a` strictly dominate `b`?
    pub fn strictly_dominates(&self, a: usize, b: usize) -> bool {
        a != b && self.dominates(a, b)
    }

    /// A reverse postorder of the reachable blocks (the iteration order
    /// of choice for forward dataflow fixpoints).
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }
}
