//! # Dataflow backbone for the Mini-C IR
//!
//! The analyses every strong pass leans on, computed once per function
//! and shared through the lazy [`Analyses`](crate::passes::PassContext)
//! cache of the pass framework:
//!
//! * [`dominance`] — the immediate-dominator tree ([`DomTree`]), built
//!   with the Cooper/Harvey/Kennedy iterative algorithm over the
//!   existing reverse postorder (`teamplay_minic::cfg`), plus a DFS
//!   interval numbering so `dominates(a, b)` is O(1);
//! * [`liveness`] — global per-block live-in/live-out sets over IR
//!   temps ([`Liveness`]), the backward may-analysis codegen uses to
//!   coalesce copy-related temps into one home;
//! * [`value_graph`] — def-use chains ([`DefUse`]) and a hash-consed,
//!   constant-folding value graph ([`ValueGraph`]) with the coarse
//!   store/call aliasing test ([`value_graph::may_alias`]) shared by
//!   `cse`, `gvn` and `load_fwd`.
//!
//! The consumers are deliberately split across three layers: the
//! optimisation passes (`gvn`, `load_fwd`, the dominance-based `licm`),
//! the IR→ISA transfer (liveness-driven copy coalescing in
//! [`crate::codegen`]), and the WCET flow-fact plumbing (the value
//! graph resolves loop limits/inits/steps that flow through temps into
//! `proven_loop_bounds`-style facts for the IPET engine).
//!
//! All analyses are pure functions of one `IrFunction` body. Nothing
//! here mutates IR — invalidation is the pass framework's job: a pass
//! declares what it [`preserves`](crate::passes::Pass::preserves) and
//! the application core drops the rest of the cache when the pass
//! reports a change.

pub mod dominance;
pub mod liveness;
pub mod value_graph;

pub use dominance::DomTree;
pub use liveness::Liveness;
pub use value_graph::{may_alias, op_clobbers, DefUse, ValueGraph};

use teamplay_minic::ir::{CallArg, IrOp, IrTerm, MemBase, Operand, Temp};

/// A fixed-capacity bit set over `0..len` (temps, blocks, expression
/// ids). The workhorse container of the dataflow fixpoints — all set
/// algebra is word-parallel and the mutating operators report whether
/// anything changed, which is exactly the fixpoint termination test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over the universe `0..len`.
    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        s
    }

    /// The universe size this set ranges over.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Add `i`; returns `true` if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & b == 0;
        self.words[w] |= b;
        absent
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns `true` if `self` grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∩= other`; returns `true` if `self` shrank.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Do `self` and `other` share any member?
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// Visit every temp an op *reads* (operands, memory indices, the base
/// temps of `Param` arrays, call arguments).
pub fn for_each_read(op: &IrOp, mut visit: impl FnMut(Temp)) {
    fn operand(o: &Operand, visit: &mut impl FnMut(Temp)) {
        if let Operand::Temp(t) = o {
            visit(*t);
        }
    }
    match op {
        IrOp::Bin { a, b, .. } => {
            operand(a, &mut visit);
            operand(b, &mut visit);
        }
        IrOp::Un { a, .. } => operand(a, &mut visit),
        IrOp::Copy { src, .. } => operand(src, &mut visit),
        IrOp::Load { base, index, .. } => {
            if let MemBase::Param(t) = base {
                visit(*t);
            }
            operand(index, &mut visit);
        }
        IrOp::Store { base, index, value } => {
            if let MemBase::Param(t) = base {
                visit(*t);
            }
            operand(index, &mut visit);
            operand(value, &mut visit);
        }
        IrOp::Call { args, .. } => {
            for arg in args {
                match arg {
                    CallArg::Value(v) => operand(v, &mut visit),
                    CallArg::ArrayRef(MemBase::Param(t)) => visit(*t),
                    CallArg::ArrayRef(_) => {}
                }
            }
        }
        IrOp::Select { cond, t, f, .. } => {
            operand(cond, &mut visit);
            operand(t, &mut visit);
            operand(f, &mut visit);
        }
        IrOp::In { .. } => {}
        IrOp::Out { value, .. } => operand(value, &mut visit),
    }
}

/// Visit every temp an op *writes* (at most one).
pub fn for_each_write(op: &IrOp, mut visit: impl FnMut(Temp)) {
    match op {
        IrOp::Bin { dst, .. }
        | IrOp::Un { dst, .. }
        | IrOp::Copy { dst, .. }
        | IrOp::Load { dst, .. }
        | IrOp::Select { dst, .. }
        | IrOp::In { dst, .. } => visit(*dst),
        IrOp::Call { dst: Some(d), .. } => visit(*d),
        IrOp::Call { dst: None, .. } | IrOp::Store { .. } | IrOp::Out { .. } => {}
    }
}

/// Visit every temp a terminator reads.
pub fn for_each_term_read(term: &IrTerm, mut visit: impl FnMut(Temp)) {
    match term {
        IrTerm::Branch {
            cond: Operand::Temp(t),
            ..
        }
        | IrTerm::Ret(Some(Operand::Temp(t))) => visit(*t),
        _ => {}
    }
}
