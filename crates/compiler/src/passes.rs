//! The trait-based optimisation-pass framework and the passes themselves.
//!
//! # Architecture
//!
//! Optimisations are *named, pluggable units* behind the [`Pass`] trait;
//! the [`PassManager`] applies an ordered [`Pipeline`] of them to
//! fixpoint with per-pass change instrumentation ([`PassManager::stats`]).
//! Pipelines are data, not code: they are built
//!
//! * **by name** — `PassManager::from_str("const_fold,copy_prop,dce")`
//!   resolves each element against the static [`REGISTRY`]
//!   (parameterised passes use `name(arg)`, e.g. `"inline(40)"`);
//! * **by optimisation level** — [`PassManager::o0`]…[`PassManager::o3`]
//!   presets à la binaryen's `OptimizationOptions`;
//! * **by the search** — the FPA driver decodes genomes into pipelines
//!   ([`crate::driver::CompilerConfig::from_genome`]), so every point of
//!   the multi-objective search space is a registry-backed pipeline.
//!
//! Every pass is semantics-preserving (the differential tests run each
//! pipeline against the reference interpreter) and *flow-fact
//! preserving*: loop bounds survive, because the WCET analysis downstream
//! depends on them. The registered passes are the knobs of the
//! multi-objective search:
//!
//! * `inline` — saves call/prologue overhead, grows code
//!   (parameterised by the callee-size threshold);
//! * `strength_reduce` — `x * 2ⁿ` → shift (strictly better);
//! * `mul_shift_add` — `x * c` → shift-add decomposition in the IR,
//!   which *trades cycles for energy* on PG32's power-hungry multiplier
//!   (the codegen-level variant is
//!   [`crate::codegen::CodegenOpts::mul_shift_add`]);
//! * `const_fold` + `copy_prop` + `dce` — the cleanup trio, iterated to
//!   fixpoint by the manager.
//!
//! # Writing a new pass
//!
//! Implement [`Pass`], then add a [`PassDescriptor`] line to
//! [`REGISTRY`]; the pass immediately becomes available to
//! [`PassManager::from_str`], the optimisation levels and (if added to
//! the genome decoding) the Pareto search — no driver changes needed.
//!
//! ```
//! use teamplay_compiler::passes::PassManager;
//! use teamplay_minic::compile_to_ir;
//!
//! let mut module = compile_to_ir("int f() { return 2 * 8; }")?;
//! let mut pm = PassManager::from_str("const_fold,dce")?;
//! pm.run(&mut module);
//! assert!(pm.stats().iter().any(|s| s.changes > 0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::driver::CompilerConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use teamplay_minic::ast::{BinOp, UnOp};
use teamplay_minic::interp::eval_binop;
use teamplay_minic::ir::{CallArg, IrBlockId, IrFunction, IrModule, IrOp, IrTerm, MemBase, Operand, Temp};

// =====================================================================
// Pass implementations (free functions — the reusable cores)
// =====================================================================

/// Fold constant expressions and propagate constants within blocks.
///
/// Returns `true` if anything changed.
pub fn const_fold(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        // Block-local constant environment.
        let mut env: HashMap<Temp, i32> = HashMap::new();
        let resolve = |env: &HashMap<Temp, i32>, o: Operand| -> Operand {
            match o {
                Operand::Temp(t) => match env.get(&t) {
                    Some(v) => Operand::Const(*v),
                    None => o,
                },
                c => c,
            }
        };
        for op in &mut b.ops {
            // First, rewrite operands using known constants.
            match op {
                IrOp::Bin { a, b: bb, .. } => {
                    *a = resolve(&env, *a);
                    *bb = resolve(&env, *bb);
                }
                IrOp::Un { a, .. } => *a = resolve(&env, *a),
                IrOp::Copy { src, .. } => *src = resolve(&env, *src),
                IrOp::Load { index, .. } => *index = resolve(&env, *index),
                IrOp::Store { index, value, .. } => {
                    *index = resolve(&env, *index);
                    *value = resolve(&env, *value);
                }
                IrOp::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Value(v) = a {
                            *v = resolve(&env, *v);
                        }
                    }
                }
                IrOp::Select { cond, t, f: fv, .. } => {
                    *cond = resolve(&env, *cond);
                    *t = resolve(&env, *t);
                    *fv = resolve(&env, *fv);
                }
                IrOp::In { .. } | IrOp::Out { value: _, .. } => {}
            }
            if let IrOp::Out { value, .. } = op {
                *value = resolve(&env, *value);
            }
            // Then fold.
            let folded: Option<(Temp, i32)> = match op {
                IrOp::Bin { op: bop, dst, a: Operand::Const(x), b: Operand::Const(y) } => {
                    Some((*dst, eval_binop(*bop, *x, *y)))
                }
                IrOp::Un { op: uop, dst, a: Operand::Const(x) } => {
                    let v = match uop {
                        UnOp::Neg => x.wrapping_neg(),
                        UnOp::BitNot => !*x,
                        UnOp::LogNot => (*x == 0) as i32,
                    };
                    Some((*dst, v))
                }
                IrOp::Copy { dst, src: Operand::Const(x) } => Some((*dst, *x)),
                IrOp::Select { dst, cond: Operand::Const(c), t, f: fv } => {
                    let chosen = if *c != 0 { *t } else { *fv };
                    if let Operand::Const(v) = chosen {
                        Some((*dst, v))
                    } else {
                        *op = IrOp::Copy { dst: *dst, src: chosen };
                        changed = true;
                        // The copy may still bind a constant next pass.
                        None
                    }
                }
                _ => None,
            };
            // Track definitions: any write invalidates the old binding.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            for d in &defs {
                env.remove(d);
            }
            if let Some((dst, v)) = folded {
                if !matches!(op, IrOp::Copy { src: Operand::Const(_), .. }) {
                    *op = IrOp::Copy { dst, src: Operand::Const(v) };
                    changed = true;
                }
                env.insert(dst, v);
            }
        }
        // Terminator folding: constant branches become jumps.
        if let IrTerm::Branch { cond, taken, fallthrough } = &b.term {
            let folded = match cond {
                Operand::Const(c) => Some(if *c != 0 { *taken } else { *fallthrough }),
                Operand::Temp(t) => env.get(t).map(|v| if *v != 0 { *taken } else { *fallthrough }),
            };
            if let Some(target) = folded {
                b.term = IrTerm::Jump(target);
                changed = true;
            }
        }
    }
    changed
}

fn written_temps(op: &IrOp, out: &mut Vec<Temp>) {
    match op {
        IrOp::Bin { dst, .. }
        | IrOp::Un { dst, .. }
        | IrOp::Copy { dst, .. }
        | IrOp::Load { dst, .. }
        | IrOp::Select { dst, .. }
        | IrOp::In { dst, .. } => out.push(*dst),
        IrOp::Call { dst: Some(d), .. } => out.push(*d),
        _ => {}
    }
}

fn read_operands(op: &IrOp) -> Vec<Operand> {
    let mut reads = Vec::new();
    match op {
        IrOp::Bin { a, b, .. } => {
            reads.push(*a);
            reads.push(*b);
        }
        IrOp::Un { a, .. } => reads.push(*a),
        IrOp::Copy { src, .. } => reads.push(*src),
        IrOp::Load { base, index, .. } => {
            reads.push(*index);
            if let MemBase::Param(t) = base {
                reads.push(Operand::Temp(*t));
            }
        }
        IrOp::Store { base, index, value } => {
            reads.push(*index);
            reads.push(*value);
            if let MemBase::Param(t) = base {
                reads.push(Operand::Temp(*t));
            }
        }
        IrOp::Call { args, .. } => {
            for a in args {
                match a {
                    CallArg::Value(v) => reads.push(*v),
                    CallArg::ArrayRef(MemBase::Param(t)) => reads.push(Operand::Temp(*t)),
                    CallArg::ArrayRef(_) => {}
                }
            }
        }
        IrOp::Select { cond, t, f, .. } => {
            reads.push(*cond);
            reads.push(*t);
            reads.push(*f);
        }
        IrOp::In { .. } => {}
        IrOp::Out { value, .. } => reads.push(*value),
    }
    reads
}

/// Propagate copies within blocks (`t2 = t1; use t2` → `use t1`).
///
/// Returns `true` if anything changed.
pub fn copy_propagate(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        // dst -> source operand, valid while neither side is redefined.
        let mut env: HashMap<Temp, Operand> = HashMap::new();
        let resolve = |env: &HashMap<Temp, Operand>, o: Operand| -> Operand {
            match o {
                Operand::Temp(t) => env.get(&t).copied().unwrap_or(o),
                c => c,
            }
        };
        for op in &mut b.ops {
            let rewrite = |o: &mut Operand, env: &HashMap<Temp, Operand>, changed: &mut bool| {
                let new = resolve(env, *o);
                if new != *o {
                    *o = new;
                    *changed = true;
                }
            };
            match op {
                IrOp::Bin { a, b: bb, .. } => {
                    rewrite(a, &env, &mut changed);
                    rewrite(bb, &env, &mut changed);
                }
                IrOp::Un { a, .. } => rewrite(a, &env, &mut changed),
                IrOp::Copy { src, .. } => rewrite(src, &env, &mut changed),
                IrOp::Load { index, .. } => rewrite(index, &env, &mut changed),
                IrOp::Store { index, value, .. } => {
                    rewrite(index, &env, &mut changed);
                    rewrite(value, &env, &mut changed);
                }
                IrOp::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Value(v) = a {
                            rewrite(v, &env, &mut changed);
                        }
                    }
                }
                IrOp::Select { cond, t, f: fv, .. } => {
                    rewrite(cond, &env, &mut changed);
                    rewrite(t, &env, &mut changed);
                    rewrite(fv, &env, &mut changed);
                }
                IrOp::In { .. } => {}
                IrOp::Out { value, .. } => rewrite(value, &env, &mut changed),
            }
            // Kill bindings invalidated by this op's writes.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            for d in &defs {
                env.remove(d);
                env.retain(|_, src| *src != Operand::Temp(*d));
            }
            // Record new copies.
            if let IrOp::Copy { dst, src } = op {
                if *src != Operand::Temp(*dst) {
                    env.insert(*dst, *src);
                }
            }
        }
        if let IrTerm::Branch { cond, .. } = &mut b.term {
            let new = resolve(&env, *cond);
            if new != *cond {
                *cond = new;
                changed = true;
            }
        }
        if let IrTerm::Ret(Some(v)) = &mut b.term {
            let new = resolve(&env, *v);
            if new != *v {
                *v = new;
                changed = true;
            }
        }
    }
    changed
}

/// Remove pure operations whose results are never read.
///
/// Returns `true` if anything changed.
pub fn dead_code_elim(f: &mut IrFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used = vec![false; f.temp_count as usize];
        let mut mark = |o: Operand| {
            if let Operand::Temp(t) = o {
                used[t.0 as usize] = true;
            }
        };
        for b in &f.blocks {
            for op in &b.ops {
                for r in read_operands(op) {
                    mark(r);
                }
            }
            match &b.term {
                IrTerm::Branch { cond, .. } => mark(*cond),
                IrTerm::Ret(Some(v)) => mark(*v),
                _ => {}
            }
        }
        let mut removed = false;
        for b in &mut f.blocks {
            let before = b.ops.len();
            b.ops.retain(|op| match op {
                IrOp::Bin { dst, .. }
                | IrOp::Un { dst, .. }
                | IrOp::Copy { dst, .. }
                | IrOp::Load { dst, .. }
                | IrOp::Select { dst, .. } => used[dst.0 as usize],
                // Calls, stores, port I/O have effects; `In` consumes an
                // input value even if the result is unused.
                _ => true,
            });
            if b.ops.len() != before {
                removed = true;
            }
        }
        if removed {
            changed = true;
        } else {
            return changed;
        }
    }
}

/// Is `c` a power of two (≥ 2)?
fn pow2_shift(c: i32) -> Option<i32> {
    if c >= 2 && (c & (c - 1)) == 0 {
        Some(c.trailing_zeros() as i32)
    } else {
        None
    }
}

/// Strength-reduce multiplications by constants.
///
/// * Always (when enabled): `x * 2ⁿ` → `x << n`, `x * 1` → copy,
///   `x * 0` → 0 — strictly better in time and energy.
/// * With `shift_add`: `x * c` for small positive `c` with ≤ 3 set bits
///   → a shift/add sequence. On PG32 this costs extra cycles but less
///   energy than the power-hungry multiplier: a pure energy/time
///   trade-off for the Pareto search.
///
/// Returns `true` if anything changed.
pub fn strength_reduce_mul(f: &mut IrFunction, shift_add: bool) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let mut new_ops: Vec<IrOp> = Vec::with_capacity(f.blocks[bi].ops.len());
        let ops = std::mem::take(&mut f.blocks[bi].ops);
        for op in ops {
            // Normalise const-on-left multiplications.
            let (dst, x, c) = match op {
                IrOp::Bin { op: BinOp::Mul, dst, a, b } => match (a, b) {
                    (x, Operand::Const(c)) => (dst, x, Some(c)),
                    (Operand::Const(c), x) => (dst, x, Some(c)),
                    _ => {
                        new_ops.push(op);
                        continue;
                    }
                },
                other => {
                    new_ops.push(other);
                    continue;
                }
            };
            let Some(c) = c else {
                new_ops.push(IrOp::Bin { op: BinOp::Mul, dst, a: x, b: x });
                continue;
            };
            match c {
                0 => {
                    new_ops.push(IrOp::Copy { dst, src: Operand::Const(0) });
                    changed = true;
                }
                1 => {
                    new_ops.push(IrOp::Copy { dst, src: x });
                    changed = true;
                }
                _ => {
                    if let Some(sh) = pow2_shift(c) {
                        new_ops.push(IrOp::Bin {
                            op: BinOp::Shl,
                            dst,
                            a: x,
                            b: Operand::Const(sh),
                        });
                        changed = true;
                    } else if shift_add && (2..=255).contains(&c) && c.count_ones() <= 3 {
                        // x*c = Σ x << kᵢ over the set bits of c (wrapping
                        // arithmetic makes this exact for all x).
                        let mut parts: Vec<Temp> = Vec::new();
                        for bit in 0..8 {
                            if c & (1 << bit) != 0 {
                                let t = f.fresh_temp();
                                new_ops.push(IrOp::Bin {
                                    op: BinOp::Shl,
                                    dst: t,
                                    a: x,
                                    b: Operand::Const(bit),
                                });
                                parts.push(t);
                            }
                        }
                        let mut acc = parts[0];
                        for p in &parts[1..] {
                            let t = f.fresh_temp();
                            new_ops.push(IrOp::Bin {
                                op: BinOp::Add,
                                dst: t,
                                a: Operand::Temp(acc),
                                b: Operand::Temp(*p),
                            });
                            acc = t;
                        }
                        new_ops.push(IrOp::Copy { dst, src: Operand::Temp(acc) });
                        changed = true;
                    } else {
                        new_ops.push(IrOp::Bin {
                            op: BinOp::Mul,
                            dst,
                            a: x,
                            b: Operand::Const(c),
                        });
                    }
                }
            }
        }
        f.blocks[bi].ops = new_ops;
    }
    changed
}

/// Per-caller inlining budget: bounds code growth per function.
const MAX_INLINES_PER_FUNCTION: usize = 24;

/// Clone every function body by name — the callee snapshot inlining
/// reads from ([`PassContext::functions`]).
pub fn snapshot_functions(module: &IrModule) -> HashMap<String, IrFunction> {
    module.functions.iter().map(|f| (f.name.clone(), f.clone())).collect()
}

/// Is `start` (even mutually) recursive, judged on a body snapshot?
fn is_recursive(snapshot: &HashMap<String, IrFunction>, start: &str) -> bool {
    let mut stack = vec![start.to_string()];
    let mut seen = vec![start.to_string()];
    while let Some(cur) = stack.pop() {
        let Some(f) = snapshot.get(&cur) else { continue };
        for b in &f.blocks {
            for op in &b.ops {
                if let IrOp::Call { func, .. } = op {
                    if func == start {
                        return true;
                    }
                    if !seen.contains(func) {
                        seen.push(func.clone());
                        stack.push(func.clone());
                    }
                }
            }
        }
    }
    false
}

fn op_count(f: &IrFunction) -> usize {
    f.blocks.iter().map(|b| b.ops.len() + 1).sum::<usize>()
}

/// Inline eligible call sites of one caller, reading callee bodies from
/// `snapshot`. A call site is eligible when the callee (a) is not (even
/// mutually) recursive, (b) has at most `threshold` IR operations, and
/// (c) is not the caller itself. At most [`MAX_INLINES_PER_FUNCTION`]
/// sites are expanded per invocation to bound code growth ([`InlinePass`]
/// enforces the same bound across fixpoint rounds via its per-function
/// budget). Loop bounds of the callee transfer to the caller (block ids
/// remapped), keeping the result analysable.
///
/// Returns `true` if anything changed.
pub fn inline_with_snapshot(
    f: &mut IrFunction,
    snapshot: &HashMap<String, IrFunction>,
    threshold: usize,
) -> bool {
    let mut budget = MAX_INLINES_PER_FUNCTION;
    inline_with_budget(f, snapshot, threshold, &mut budget)
}

/// [`inline_with_snapshot`] with an externally owned budget, so repeated
/// invocations on the same function (fixpoint rounds) share one cap.
fn inline_with_budget(
    f: &mut IrFunction,
    snapshot: &HashMap<String, IrFunction>,
    threshold: usize,
    budget: &mut usize,
) -> bool {
    let mut changed = false;
    while *budget > 0 {
        // Find the first eligible call site.
        let mut site: Option<(usize, usize, String)> = None;
        'outer: for (bi, b) in f.blocks.iter().enumerate() {
            for (oi, op) in b.ops.iter().enumerate() {
                if let IrOp::Call { func, .. } = op {
                    if func != &f.name
                        && snapshot.get(func).is_some_and(|c| op_count(c) <= threshold)
                        && !is_recursive(snapshot, func)
                    {
                        site = Some((bi, oi, func.clone()));
                        break 'outer;
                    }
                }
            }
        }
        let Some((bi, oi, callee_name)) = site else { break };
        let callee = snapshot[&callee_name].clone();
        inline_site(f, bi, oi, &callee);
        *budget -= 1;
        changed = true;
    }
    changed
}

/// Inline small callees into their callers, module-wide (callee bodies
/// are snapshotted up front; see [`inline_with_snapshot`] for
/// eligibility).
///
/// Returns `true` if anything changed.
pub fn inline_functions(module: &mut IrModule, threshold: usize) -> bool {
    let snapshot = snapshot_functions(module);
    let mut changed = false;
    for f in &mut module.functions {
        changed |= inline_with_snapshot(f, &snapshot, threshold);
    }
    changed
}

/// Inline eligible call sites of a single named caller. Returns `true`
/// on change.
pub fn inline_into(module: &mut IrModule, caller: &str, threshold: usize) -> bool {
    let snapshot = snapshot_functions(module);
    let Some(f) = module.functions.iter_mut().find(|f| f.name == caller) else {
        return false;
    };
    inline_with_snapshot(f, &snapshot, threshold)
}

/// Expand one call site in place.
fn inline_site(caller: &mut IrFunction, bi: usize, oi: usize, callee: &IrFunction) {
    let IrOp::Call { dst, args, .. } = caller.blocks[bi].ops[oi].clone() else {
        unreachable!("inline_site requires a call at the given position");
    };

    let temp_offset = caller.temp_count;
    caller.temp_count += callee.temp_count;
    let block_offset = caller.blocks.len() as u32;
    let array_offset = caller.local_arrays.len() as u32;
    caller.local_arrays.extend_from_slice(&callee.local_arrays);

    // Split the call block: ops after the call move to a continuation.
    let mut pre_ops: Vec<IrOp> = caller.blocks[bi].ops.drain(..).collect();
    let post_ops: Vec<IrOp> = pre_ops.split_off(oi + 1);
    pre_ops.pop(); // the call itself
    let original_term = caller.blocks[bi].term.clone();
    caller.blocks[bi].ops = pre_ops;

    // Map the callee's array-parameter temps to actual caller bases and
    // bind scalar parameters by copy.
    let mut param_arrays: HashMap<Temp, MemBase> = HashMap::new();
    for (p, a) in callee.params.iter().zip(&args) {
        match a {
            CallArg::Value(v) => {
                caller.blocks[bi].ops.push(IrOp::Copy {
                    dst: Temp(p.temp.0 + temp_offset),
                    src: *v,
                });
            }
            CallArg::ArrayRef(m) => {
                param_arrays.insert(p.temp, m.clone());
            }
        }
    }

    let remap_operand = |o: Operand| match o {
        Operand::Temp(t) => Operand::Temp(Temp(t.0 + temp_offset)),
        c => c,
    };
    let remap_base = |m: &MemBase| -> MemBase {
        match m {
            MemBase::Global(g) => MemBase::Global(g.clone()),
            MemBase::Local(id) => MemBase::Local(id + array_offset),
            MemBase::Param(t) => match param_arrays.get(t) {
                Some(actual) => actual.clone(),
                None => MemBase::Param(Temp(t.0 + temp_offset)),
            },
        }
    };

    // The continuation block receives the post-call ops + original term.
    let cont_id = IrBlockId(block_offset + callee.blocks.len() as u32);

    // Splice remapped callee blocks.
    for cb in &callee.blocks {
        let mut ops = Vec::with_capacity(cb.ops.len());
        for op in &cb.ops {
            let new_op = match op {
                IrOp::Bin { op, dst, a, b } => IrOp::Bin {
                    op: *op,
                    dst: Temp(dst.0 + temp_offset),
                    a: remap_operand(*a),
                    b: remap_operand(*b),
                },
                IrOp::Un { op, dst, a } => IrOp::Un {
                    op: *op,
                    dst: Temp(dst.0 + temp_offset),
                    a: remap_operand(*a),
                },
                IrOp::Copy { dst, src } => IrOp::Copy {
                    dst: Temp(dst.0 + temp_offset),
                    src: remap_operand(*src),
                },
                IrOp::Load { dst, base, index } => IrOp::Load {
                    dst: Temp(dst.0 + temp_offset),
                    base: remap_base(base),
                    index: remap_operand(*index),
                },
                IrOp::Store { base, index, value } => IrOp::Store {
                    base: remap_base(base),
                    index: remap_operand(*index),
                    value: remap_operand(*value),
                },
                IrOp::Call { dst, func, args } => IrOp::Call {
                    dst: dst.map(|d| Temp(d.0 + temp_offset)),
                    func: func.clone(),
                    args: args
                        .iter()
                        .map(|a| match a {
                            CallArg::Value(v) => CallArg::Value(remap_operand(*v)),
                            CallArg::ArrayRef(m) => CallArg::ArrayRef(remap_base(m)),
                        })
                        .collect(),
                },
                IrOp::Select { dst, cond, t, f } => IrOp::Select {
                    dst: Temp(dst.0 + temp_offset),
                    cond: remap_operand(*cond),
                    t: remap_operand(*t),
                    f: remap_operand(*f),
                },
                IrOp::In { dst, port } => {
                    IrOp::In { dst: Temp(dst.0 + temp_offset), port: *port }
                }
                IrOp::Out { port, value } => {
                    IrOp::Out { port: *port, value: remap_operand(*value) }
                }
            };
            ops.push(new_op);
        }
        let term = match &cb.term {
            IrTerm::Jump(t) => IrTerm::Jump(IrBlockId(t.0 + block_offset)),
            IrTerm::Branch { cond, taken, fallthrough } => IrTerm::Branch {
                cond: remap_operand(*cond),
                taken: IrBlockId(taken.0 + block_offset),
                fallthrough: IrBlockId(fallthrough.0 + block_offset),
            },
            IrTerm::Ret(v) => {
                // Return becomes: bind the destination, jump to the
                // continuation.
                if let (Some(d), Some(v)) = (dst, v) {
                    ops.push(IrOp::Copy { dst: d, src: remap_operand(*v) });
                }
                IrTerm::Jump(cont_id)
            }
        };
        caller.blocks.push(teamplay_minic::ir::IrBlock { ops, term });
    }

    // Continuation block.
    caller
        .blocks
        .push(teamplay_minic::ir::IrBlock { ops: post_ops, term: original_term });

    // Callee loop bounds transfer (remapped).
    for (hb, bound) in &callee.loop_bounds {
        caller.loop_bounds.insert(IrBlockId(hb.0 + block_offset), *bound);
    }

    // Enter the inlined body.
    caller.blocks[bi].term = IrTerm::Jump(IrBlockId(block_offset));
}

// =====================================================================
// The Pass trait and its implementations
// =====================================================================

/// Read-only context a pass runs under.
pub struct PassContext<'a> {
    /// Snapshot of every function body at pipeline start, by name.
    /// Inlining reads callee bodies from here; most passes ignore it.
    pub functions: &'a HashMap<String, IrFunction>,
}

/// One optimisation unit, applicable per function.
///
/// Contract: `run` must be semantics-preserving under the reference
/// interpreter and must keep every loop bounded (flow facts survive) —
/// the differential test in `tests/pass_framework_differential.rs`
/// enforces both for every registered pass.
pub trait Pass {
    /// The registry name (stable, used by [`PassManager::from_str`]).
    fn name(&self) -> &str;

    /// Called by the manager before the first fixpoint round on each
    /// function; passes with per-function state (budgets, caches) reset
    /// here. The default does nothing.
    fn begin_function(&mut self, _f: &IrFunction) {}

    /// Transform one function; return `true` if the IR changed.
    fn run(&mut self, f: &mut IrFunction, cx: &PassContext<'_>) -> bool;
}

/// `const_fold`: constant folding + constant branch resolution.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstFoldPass;

impl Pass for ConstFoldPass {
    fn name(&self) -> &str {
        "const_fold"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &PassContext<'_>) -> bool {
        const_fold(f)
    }
}

/// `copy_prop`: block-local copy propagation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CopyPropPass;

impl Pass for CopyPropPass {
    fn name(&self) -> &str {
        "copy_prop"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &PassContext<'_>) -> bool {
        copy_propagate(f)
    }
}

/// `dce`: dead-code elimination.
#[derive(Debug, Default, Clone, Copy)]
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &str {
        "dce"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &PassContext<'_>) -> bool {
        dead_code_elim(f)
    }
}

/// `strength_reduce`: power-of-two multiply strength reduction.
#[derive(Debug, Default, Clone, Copy)]
pub struct StrengthReducePass;

impl Pass for StrengthReducePass {
    fn name(&self) -> &str {
        "strength_reduce"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &PassContext<'_>) -> bool {
        strength_reduce_mul(f, false)
    }
}

/// `mul_shift_add`: IR-level shift-add decomposition of small
/// multipliers (subsumes `strength_reduce`). Trades cycles for energy;
/// the presets instead use the register-resident codegen variant
/// ([`crate::codegen::CodegenOpts::mul_shift_add`]), which does not
/// inflate memory traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct MulShiftAddPass;

impl Pass for MulShiftAddPass {
    fn name(&self) -> &str {
        "mul_shift_add"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &PassContext<'_>) -> bool {
        strength_reduce_mul(f, true)
    }
}

/// `inline`: callee inlining below a size threshold (the parameter).
/// The code-growth budget ([`MAX_INLINES_PER_FUNCTION`]) is shared
/// across all fixpoint rounds on one function.
#[derive(Debug, Clone, Copy)]
pub struct InlinePass {
    /// Maximum callee size (IR ops) eligible for inlining.
    pub threshold: usize,
    budget: usize,
}

impl InlinePass {
    /// An inline pass with the given callee-size threshold.
    pub fn new(threshold: usize) -> InlinePass {
        InlinePass { threshold, budget: MAX_INLINES_PER_FUNCTION }
    }
}

impl Pass for InlinePass {
    fn name(&self) -> &str {
        "inline"
    }
    fn begin_function(&mut self, _f: &IrFunction) {
        self.budget = MAX_INLINES_PER_FUNCTION;
    }
    fn run(&mut self, f: &mut IrFunction, cx: &PassContext<'_>) -> bool {
        inline_with_budget(f, cx.functions, self.threshold, &mut self.budget)
    }
}

// =====================================================================
// Registry
// =====================================================================

/// Registry entry: how to name, document and construct a pass.
pub struct PassDescriptor {
    /// Stable pipeline name.
    pub name: &'static str,
    /// One-line description (for tooling / docs).
    pub summary: &'static str,
    /// Default parameter, for parameterised passes.
    pub default_param: Option<usize>,
    factory: fn(Option<usize>) -> Box<dyn Pass>,
}

impl PassDescriptor {
    /// Instantiate the pass with `param` (or its default).
    pub fn instantiate(&self, param: Option<usize>) -> Box<dyn Pass> {
        (self.factory)(param.or(self.default_param))
    }
}

/// Every registered pass. New passes: implement [`Pass`], add one line
/// here.
pub static REGISTRY: &[PassDescriptor] = &[
    PassDescriptor {
        name: "inline",
        summary: "inline callees up to a size threshold (param, IR ops)",
        default_param: Some(40),
        factory: |p| Box::new(InlinePass::new(p.unwrap_or(40))),
    },
    PassDescriptor {
        name: "const_fold",
        summary: "fold constants and resolve constant branches",
        default_param: None,
        factory: |_| Box::new(ConstFoldPass),
    },
    PassDescriptor {
        name: "copy_prop",
        summary: "propagate copies within blocks",
        default_param: None,
        factory: |_| Box::new(CopyPropPass),
    },
    PassDescriptor {
        name: "dce",
        summary: "remove pure operations whose results are never read",
        default_param: None,
        factory: |_| Box::new(DcePass),
    },
    PassDescriptor {
        name: "strength_reduce",
        summary: "rewrite power-of-two multiplies into shifts",
        default_param: None,
        factory: |_| Box::new(StrengthReducePass),
    },
    PassDescriptor {
        name: "mul_shift_add",
        summary: "decompose small multipliers into shift-add chains (energy ↓, cycles ↑)",
        default_param: None,
        factory: |_| Box::new(MulShiftAddPass),
    },
];

/// Look up a pass descriptor by registry name.
pub fn lookup_pass(name: &str) -> Option<&'static PassDescriptor> {
    REGISTRY.iter().find(|d| d.name == name)
}

// =====================================================================
// Pipelines
// =====================================================================

/// One pipeline element: a registry name plus an optional parameter
/// (rendered `name` or `name(param)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PassSpec {
    /// Registry name of the pass.
    pub name: String,
    /// Parameter (e.g. the inline threshold); `None` uses the default.
    pub param: Option<usize>,
}

impl PassSpec {
    /// A spec without a parameter.
    pub fn new(name: &str) -> PassSpec {
        PassSpec { name: name.to_string(), param: None }
    }

    /// A spec with a parameter.
    pub fn with_param(name: &str, param: usize) -> PassSpec {
        PassSpec { name: name.to_string(), param: Some(param) }
    }
}

impl fmt::Display for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param {
            Some(p) => write!(f, "{}({p})", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// An ordered, registry-backed pass pipeline — the optimisation genome's
/// phenotype, and the unit of configuration everywhere (presets, search
/// points, per-task variants).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pipeline {
    /// Passes in application order.
    pub passes: Vec<PassSpec>,
}

/// Pipeline construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A name that no registry entry carries.
    UnknownPass(String),
    /// A malformed element (bad parentheses / parameter).
    Malformed(String),
    /// A parameter given to a pass that takes none.
    UnexpectedParam(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownPass(name) => {
                let known: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
                write!(f, "unknown pass `{name}` (known: {})", known.join(", "))
            }
            PipelineError::Malformed(el) => write!(f, "malformed pipeline element `{el}`"),
            PipelineError::UnexpectedParam(name) => {
                write!(f, "pass `{name}` takes no parameter")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl Pipeline {
    /// The empty pipeline (O0: no IR optimisation).
    pub fn o0() -> Pipeline {
        Pipeline::default()
    }

    /// Cleanup trio (the "traditional toolchain" baseline).
    pub fn o1() -> Pipeline {
        "const_fold,copy_prop,dce".parse().expect("preset pipeline is valid")
    }

    /// Balanced: moderate inlining plus strength reduction and cleanup.
    pub fn o2() -> Pipeline {
        "inline(40),strength_reduce,const_fold,copy_prop,dce"
            .parse()
            .expect("preset pipeline is valid")
    }

    /// Aggressive: large inline threshold, all speed levers.
    pub fn o3() -> Pipeline {
        "inline(80),strength_reduce,const_fold,copy_prop,dce"
            .parse()
            .expect("preset pipeline is valid")
    }

    /// Does the pipeline contain a pass with this registry name?
    pub fn contains(&self, name: &str) -> bool {
        self.passes.iter().any(|p| p.name == name)
    }

    /// The parameter of the first pass with this name, if any.
    pub fn param_of(&self, name: &str) -> Option<usize> {
        self.passes.iter().find(|p| p.name == name).and_then(|p| p.param)
    }

    /// Append a pass spec.
    pub fn push(&mut self, spec: PassSpec) {
        self.passes.push(spec);
    }

    /// Instantiate every pass against the registry.
    ///
    /// # Errors
    /// [`PipelineError::UnknownPass`] for names outside [`REGISTRY`].
    pub fn instantiate(&self) -> Result<Vec<Box<dyn Pass>>, PipelineError> {
        self.passes
            .iter()
            .map(|spec| {
                lookup_pass(&spec.name)
                    .map(|d| d.instantiate(spec.param))
                    .ok_or_else(|| PipelineError::UnknownPass(spec.name.clone()))
            })
            .collect()
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.passes.iter().map(PassSpec::to_string).collect();
        write!(f, "{}", rendered.join(","))
    }
}

impl FromStr for Pipeline {
    type Err = PipelineError;

    /// Parse `"const_fold,dce"` / `"inline(40),dce"` style pipelines.
    /// Whitespace around elements is ignored; the empty string is the
    /// empty pipeline.
    fn from_str(s: &str) -> Result<Pipeline, PipelineError> {
        let mut passes = Vec::new();
        for raw in s.split(',') {
            let el = raw.trim();
            if el.is_empty() {
                if s.trim().is_empty() {
                    continue;
                }
                return Err(PipelineError::Malformed(raw.to_string()));
            }
            let (name, param) = match el.split_once('(') {
                None => (el, None),
                Some((name, rest)) => {
                    let arg = rest
                        .strip_suffix(')')
                        .ok_or_else(|| PipelineError::Malformed(el.to_string()))?;
                    let value: usize = arg
                        .trim()
                        .parse()
                        .map_err(|_| PipelineError::Malformed(el.to_string()))?;
                    (name.trim(), Some(value))
                }
            };
            let descriptor =
                lookup_pass(name).ok_or_else(|| PipelineError::UnknownPass(name.to_string()))?;
            if param.is_some() && descriptor.default_param.is_none() {
                return Err(PipelineError::UnexpectedParam(name.to_string()));
            }
            passes.push(PassSpec { name: name.to_string(), param });
        }
        Ok(Pipeline { passes })
    }
}

// =====================================================================
// PassManager
// =====================================================================

/// Per-pass instrumentation collected by the manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassStats {
    /// Registry name.
    pub name: String,
    /// How often the pass ran (per function, per fixpoint round).
    pub invocations: usize,
    /// How many invocations reported a change.
    pub changes: usize,
}

/// Applies a [`Pipeline`] to modules/functions, iterating to fixpoint
/// (bounded) and recording per-pass [`PassStats`].
pub struct PassManager {
    pipeline: Pipeline,
    passes: Vec<Box<dyn Pass>>,
    stats: Vec<PassStats>,
    /// Fixpoint bound: maximum rounds of the full pipeline per function.
    pub max_rounds: usize,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("pipeline", &self.pipeline.to_string())
            .field("max_rounds", &self.max_rounds)
            .finish()
    }
}

impl PassManager {
    /// Default fixpoint bound (matches the historical cleanup-trio loop).
    pub const DEFAULT_MAX_ROUNDS: usize = 4;

    /// Build a manager for a pipeline.
    ///
    /// # Errors
    /// [`PipelineError`] if a pass does not resolve in the registry.
    pub fn new(pipeline: Pipeline) -> Result<PassManager, PipelineError> {
        let passes = pipeline.instantiate()?;
        let stats = pipeline
            .passes
            .iter()
            .map(|spec| PassStats { name: spec.name.clone(), invocations: 0, changes: 0 })
            .collect();
        Ok(PassManager { pipeline, passes, stats, max_rounds: Self::DEFAULT_MAX_ROUNDS })
    }

    /// Build a manager by parsing a pipeline string
    /// (`"const_fold,copy_prop,dce"`, `"inline(40),dce"` …).
    ///
    /// # Errors
    /// [`PipelineError`] on unknown names or malformed elements.
    #[allow(clippy::should_implement_trait)] // mirrors binaryen-style API; FromStr exists on Pipeline
    pub fn from_str(s: &str) -> Result<PassManager, PipelineError> {
        PassManager::new(s.parse()?)
    }

    /// O0: no IR optimisation.
    pub fn o0() -> PassManager {
        PassManager::new(Pipeline::o0()).expect("preset pipeline is valid")
    }

    /// O1: the cleanup trio.
    pub fn o1() -> PassManager {
        PassManager::new(Pipeline::o1()).expect("preset pipeline is valid")
    }

    /// O2: moderate inlining + strength reduction + cleanup.
    pub fn o2() -> PassManager {
        PassManager::new(Pipeline::o2()).expect("preset pipeline is valid")
    }

    /// O3: aggressive inlining + strength reduction + cleanup.
    pub fn o3() -> PassManager {
        PassManager::new(Pipeline::o3()).expect("preset pipeline is valid")
    }

    /// The managed pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Per-pass instrumentation, aligned with the pipeline order.
    pub fn stats(&self) -> &[PassStats] {
        &self.stats
    }

    /// Run the pipeline over every function of a module. Callee bodies
    /// for inlining are snapshotted once, up front. Returns `true` if
    /// anything changed.
    pub fn run(&mut self, module: &mut IrModule) -> bool {
        let snapshot = snapshot_functions(module);
        let cx = PassContext { functions: &snapshot };
        let mut changed = false;
        for f in &mut module.functions {
            changed |= Self::run_pipeline(&mut self.passes, &mut self.stats, self.max_rounds, f, &cx);
        }
        changed
    }

    /// Run the pipeline over one named function of a module (per-task
    /// variant builds). Returns `true` if anything changed; `false` for
    /// unknown names.
    pub fn run_function(&mut self, module: &mut IrModule, name: &str) -> bool {
        let snapshot = snapshot_functions(module);
        let cx = PassContext { functions: &snapshot };
        let Some(f) = module.functions.iter_mut().find(|f| f.name == name) else {
            return false;
        };
        Self::run_pipeline(&mut self.passes, &mut self.stats, self.max_rounds, f, &cx)
    }

    fn run_pipeline(
        passes: &mut [Box<dyn Pass>],
        stats: &mut [PassStats],
        max_rounds: usize,
        f: &mut IrFunction,
        cx: &PassContext<'_>,
    ) -> bool {
        let mut changed = false;
        for pass in passes.iter_mut() {
            pass.begin_function(f);
        }
        for _ in 0..max_rounds {
            let mut round_changed = false;
            for (pass, stat) in passes.iter_mut().zip(stats.iter_mut()) {
                let pass_changed = pass.run(f, cx);
                stat.invocations += 1;
                if pass_changed {
                    stat.changes += 1;
                    round_changed = true;
                }
            }
            changed |= round_changed;
            if !round_changed {
                break;
            }
        }
        changed
    }
}

// =====================================================================
// Config-level drivers
// =====================================================================

/// Run a configuration's pipeline over a module.
///
/// # Panics
/// Panics if the pipeline names a pass outside the registry —
/// configurations built through [`Pipeline`] parsing, the presets or the
/// genome decoder are always valid.
pub fn run_passes(module: &mut IrModule, config: &CompilerConfig) {
    let mut pm = PassManager::new(config.pipeline.clone())
        .unwrap_or_else(|e| panic!("invalid configured pipeline: {e}"));
    pm.run(module);
}

/// Run per-function pass pipelines: each function is optimised under its
/// own configuration (the multi-version final build, where every task
/// keeps the Pareto variant the coordination layer selected for it).
/// Functions without an entry in `configs` use `default`.
///
/// Inlining runs as a first phase across all callers, against a single
/// up-front body snapshot — before any cleanup touches a callee:
/// callers then inline the same pristine bodies the whole-module
/// pipeline saw when the variant was measured, keeping the final build
/// faithful to the selected Pareto metrics.
///
/// # Panics
/// As [`run_passes`], for invalid pipelines.
pub fn run_passes_per_function(
    module: &mut IrModule,
    configs: &HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) {
    let names: Vec<String> = module.functions.iter().map(|f| f.name.clone()).collect();
    // Phase 1: inlining, per caller with its configured threshold.
    let snapshot = snapshot_functions(module);
    for name in &names {
        let config = configs.get(name).unwrap_or(default);
        for spec in &config.pipeline.passes {
            if spec.name == "inline" {
                let threshold = spec
                    .param
                    .or_else(|| lookup_pass("inline").and_then(|d| d.default_param))
                    .unwrap_or(40);
                if let Some(f) = module.functions.iter_mut().find(|f| &f.name == name) {
                    inline_with_snapshot(f, &snapshot, threshold);
                }
            }
        }
    }
    // Phase 2: the remaining pipeline, per function, to fixpoint.
    for name in &names {
        let config = configs.get(name).unwrap_or(default);
        let rest = Pipeline {
            passes: config
                .pipeline
                .passes
                .iter()
                .filter(|spec| spec.name != "inline")
                .cloned()
                .collect(),
        };
        let mut pm = PassManager::new(rest)
            .unwrap_or_else(|e| panic!("invalid configured pipeline: {e}"));
        pm.run_function(module, name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_minic::interp::RecordingPorts;
    use teamplay_minic::ir::exec_module;

    fn ir_of(src: &str) -> IrModule {
        compile_to_ir(src).expect("front-end")
    }

    fn run_ir(module: &IrModule, func: &str, args: &[i32]) -> Option<i32> {
        let mut ports = RecordingPorts::new();
        exec_module(module, func, args, &mut ports, 10_000_000).expect("run")
    }

    fn op_total(module: &IrModule) -> usize {
        module.functions.iter().map(|f| f.blocks.iter().map(|b| b.ops.len()).sum::<usize>()).sum()
    }

    #[test]
    fn const_fold_collapses_arithmetic() {
        let mut m = ir_of("int f() { return (2 + 3) * 4 - 6 / 2; }");
        let f = m.function_mut("f").expect("f");
        assert!(const_fold(f));
        assert_eq!(run_ir(&m, "f", &[]), Some(17));
    }

    #[test]
    fn const_fold_resolves_constant_branches() {
        let mut m = ir_of("int f() { if (1 < 2) { return 10; } return 20; }");
        let f = m.function_mut("f").expect("f");
        const_fold(f);
        // At least one branch terminator should have become a jump.
        let jumps = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, IrTerm::Jump(_)))
            .count();
        assert!(jumps > 0);
        assert_eq!(run_ir(&m, "f", &[]), Some(10));
    }

    #[test]
    fn dce_removes_unused_computation() {
        let mut m = ir_of("int f(int x) { int unused = x * 37; return x + 1; }");
        let before = op_total(&m);
        let f = m.function_mut("f").expect("f");
        assert!(dead_code_elim(f));
        assert!(op_total(&m) < before);
        assert_eq!(run_ir(&m, "f", &[4]), Some(5));
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut m = ir_of(
            "int g;
             void set(int v) { g = v; return; }
             int f(int x) { set(x); __out(1, x); return g; }",
        );
        let f = m.function_mut("f").expect("f");
        dead_code_elim(f);
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. } | IrOp::Out { .. }))
            .count();
        assert_eq!(calls, 2, "calls and port writes must survive DCE");
    }

    #[test]
    fn copy_prop_then_dce_shrinks_chains() {
        let mut m = ir_of("int f(int x) { int a = x; int b = a; int c = b; return c; }");
        let f = m.function_mut("f").expect("f");
        copy_propagate(f);
        dead_code_elim(f);
        let remaining: usize = f.blocks.iter().map(|b| b.ops.len()).sum();
        assert!(remaining <= 1, "copy chain should collapse, {remaining} ops left");
        assert_eq!(run_ir(&m, "f", &[9]), Some(9));
    }

    #[test]
    fn strength_reduction_pow2_becomes_shift() {
        let mut m = ir_of("int f(int x) { return x * 8; }");
        let f = m.function_mut("f").expect("f");
        assert!(strength_reduce_mul(f, false));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        for x in [-5, 0, 7, i32::MAX / 4] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x.wrapping_mul(8)));
        }
    }

    #[test]
    fn strength_reduction_shift_add_is_exact() {
        let mut m = ir_of("int f(int x) { return x * 10; }");
        let f = m.function_mut("f").expect("f");
        assert!(strength_reduce_mul(f, true));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        for x in [-5, 0, 7, 123_456_789, i32::MIN] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x.wrapping_mul(10)));
        }
    }

    #[test]
    fn strength_reduction_leaves_dense_constants() {
        // 0xEF has 7 set bits — not worth a shift-add chain.
        let mut m = ir_of("int f(int x) { return x * 239; }");
        let f = m.function_mut("f").expect("f");
        strength_reduce_mul(f, true);
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(has_mul, "dense multiplier should stay a mul");
    }

    #[test]
    fn inline_replaces_call_and_preserves_semantics() {
        let src = "int sq(int v) { return v * v; }
                   int f(int x) { return sq(x) + sq(x + 1); }";
        let mut m = ir_of(src);
        assert!(inline_functions(&mut m, 100));
        m.validate().expect("valid after inline");
        let f = m.function("f").expect("f");
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. }))
            .count();
        assert_eq!(calls, 0, "both call sites should be inlined");
        for x in [0, 3, -7] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x * x + (x + 1) * (x + 1)));
        }
    }

    #[test]
    fn inline_handles_array_params_and_loop_bounds() {
        let src = "int acc(int a[], int n) {
                       int s = 0;
                       for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; }
                       return s + n;
                   }
                   int buf[8] = {1,2,3,4,5,6,7,8};
                   int f(int n) { int loc[8]; loc[0] = 100; return acc(buf, n) + acc(loc, n); }";
        let mut m = ir_of(src);
        let bounds_before: usize =
            m.functions.iter().map(|f| f.loop_bounds.len()).sum();
        assert!(bounds_before >= 1);
        assert!(inline_functions(&mut m, 100));
        m.validate().expect("valid after inline");
        let f = m.function("f").expect("f");
        assert_eq!(
            f.loop_bounds.len(),
            2,
            "both inlined loops must carry their bounds"
        );
        assert_eq!(run_ir(&m, "f", &[5]), Some(36 + 5 + 100 + 5));
    }

    #[test]
    fn inline_skips_recursive_functions() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
                   int f(int n) { return fact(n); }";
        let mut m = ir_of(src);
        inline_functions(&mut m, 1000);
        let f = m.function("f").expect("f");
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. }))
            .count();
        assert_eq!(calls, 1, "recursive callee must not be inlined");
        assert_eq!(run_ir(&m, "f", &[5]), Some(120));
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let src = "int mac(int a, int b, int c) { return a * b + c; }
                   int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 6; i = i + 1) { s = mac(x, i, s); }
                       return s * 12;
                   }";
        let reference = ir_of(src);
        let expected = run_ir(&reference, "f", &[7]);
        let mut m = ir_of(src);
        let config = CompilerConfig {
            pipeline: "inline(50),mul_shift_add,const_fold,copy_prop,dce"
                .parse()
                .expect("pipeline"),
            mul_shift_add: true,
            pinned_regs: 4,
        };
        run_passes(&mut m, &config);
        m.validate().expect("valid after pipeline");
        assert_eq!(run_ir(&m, "f", &[7]), expected);
    }

    // --- framework-level tests -------------------------------------

    #[test]
    fn every_registry_pass_is_resolvable_by_name() {
        for d in REGISTRY {
            let mut pm = PassManager::from_str(d.name).expect("resolves");
            assert_eq!(pm.pipeline().passes.len(), 1);
            let mut m = ir_of("int f(int x) { return x * 8 + 0; }");
            pm.run(&mut m); // must not panic
        }
        assert_eq!(REGISTRY.len(), 6, "all six optimisations are registered");
    }

    #[test]
    fn pipeline_parses_names_params_and_rejects_junk() {
        let p: Pipeline = "const_fold, copy_prop ,dce".parse().expect("parses");
        assert_eq!(p.passes.len(), 3);
        let p: Pipeline = "inline(64),dce".parse().expect("parses");
        assert_eq!(p.param_of("inline"), Some(64));
        assert_eq!(p.to_string(), "inline(64),dce");
        let back: Pipeline = p.to_string().parse().expect("round-trips");
        assert_eq!(back, p);
        assert_eq!(Pipeline::from_str("").expect("empty ok"), Pipeline::o0());

        assert!(matches!(
            "turbo_encabulate".parse::<Pipeline>(),
            Err(PipelineError::UnknownPass(_))
        ));
        assert!(matches!("inline(".parse::<Pipeline>(), Err(PipelineError::Malformed(_))));
        assert!(matches!("inline(x)".parse::<Pipeline>(), Err(PipelineError::Malformed(_))));
        assert!(matches!("dce,,dce".parse::<Pipeline>(), Err(PipelineError::Malformed(_))));
        assert!(matches!(
            "dce(7)".parse::<Pipeline>(),
            Err(PipelineError::UnexpectedParam(name)) if name == "dce"
        ));
    }

    #[test]
    fn manager_reaches_fixpoint_and_records_stats() {
        let mut m = ir_of("int f(int x) { int a = 2 * 8; int b = a; return b + x; }");
        let mut pm = PassManager::from_str("const_fold,copy_prop,dce").expect("pipeline");
        assert!(pm.run(&mut m));
        let stats = pm.stats();
        assert_eq!(stats.len(), 3);
        assert!(stats.iter().any(|s| s.changes > 0), "cleanup must report changes");
        for s in stats {
            assert!(s.invocations >= s.changes);
        }
        // A second run is a no-op: the pipeline already converged.
        assert!(!pm.run(&mut m), "second run must find a fixpoint");
        assert_eq!(run_ir(&m, "f", &[1]), Some(17));
    }

    #[test]
    fn optimisation_levels_are_ordered_pipelines() {
        assert!(PassManager::o0().pipeline().passes.is_empty());
        assert_eq!(PassManager::o1().pipeline(), &Pipeline::o1());
        assert!(PassManager::o2().pipeline().contains("inline"));
        assert_eq!(PassManager::o3().pipeline().param_of("inline"), Some(80));
        // Higher levels strictly extend the optimisation surface.
        let counts: Vec<usize> = [Pipeline::o0(), Pipeline::o1(), Pipeline::o2()]
            .iter()
            .map(|p| p.passes.len())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn run_function_optimises_only_the_named_function() {
        let src = "int a(int x) { return x * 8; }
                   int b(int x) { return x * 8; }";
        let mut m = ir_of(src);
        let mut pm = PassManager::from_str("strength_reduce").expect("pipeline");
        assert!(pm.run_function(&mut m, "a"));
        let has_mul = |f: &IrFunction| {
            f.blocks.iter().flat_map(|b| &b.ops).any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }))
        };
        assert!(!has_mul(m.function("a").expect("a")), "a is optimised");
        assert!(has_mul(m.function("b").expect("b")), "b is untouched");
        assert!(!pm.run_function(&mut m, "missing"), "unknown names are no-ops");
    }

    #[test]
    fn per_function_configs_apply_their_own_pipelines() {
        let src = "int sq(int v) { return v * v; }
                   int hot(int x) { return sq(x) + 1; }
                   int cold(int x) { return sq(x) + 2; }";
        let mut m = ir_of(src);
        let mut configs = HashMap::new();
        configs.insert(
            "hot".to_string(),
            CompilerConfig { pipeline: Pipeline::o3(), mul_shift_add: false, pinned_regs: 0 },
        );
        let default =
            CompilerConfig { pipeline: Pipeline::o0(), mul_shift_add: false, pinned_regs: 0 };
        run_passes_per_function(&mut m, &configs, &default);
        m.validate().expect("valid after per-function pipelines");
        let calls = |f: &IrFunction| {
            f.blocks.iter().flat_map(|b| &b.ops).filter(|o| matches!(o, IrOp::Call { .. })).count()
        };
        assert_eq!(calls(m.function("hot").expect("hot")), 0, "hot inlines sq");
        assert_eq!(calls(m.function("cold").expect("cold")), 1, "cold keeps the call");
        assert_eq!(run_ir(&m, "hot", &[3]), Some(10));
        assert_eq!(run_ir(&m, "cold", &[3]), Some(11));
    }
}
