//! The trait-based optimisation-pass framework and the passes themselves.
//!
//! # Architecture
//!
//! Optimisations are *named, pluggable units* behind the [`Pass`] trait;
//! the [`PassManager`] applies an ordered [`Pipeline`] of them to
//! fixpoint with per-pass change instrumentation ([`PassManager::stats`]).
//! Every entry point — whole-module [`PassManager::run`], the
//! pool-sharded [`PassManager::run_on`], and the per-function
//! [`run_passes_per_function_on`] phases — funnels through one shared
//! application core, so a pipeline means the same thing everywhere.
//!
//! ## The analysis-aware `Pass` contract
//!
//! A pass runs as `run(&mut self, f, cx: &mut PassContext)`. The
//! [`PassContext`] owns a lazy, per-function cache of the
//! [`crate::dataflow`] analyses — dominator tree, liveness, def-use
//! chains, value graph — handed out as cheap `Rc` clones:
//!
//! * the first pass to ask for `cx.dominance(f)` pays for the build;
//!   later passes in the same round reuse it;
//! * after a pass reports a change, the core invalidates exactly what
//!   the pass does **not** declare in [`Pass::preserves`] — a pure
//!   rewrite that never edits terminators keeps the dominator tree, a
//!   CFG surgery like `unroll` drops everything;
//! * analyses are pure functions of the IR, so the cache is only a
//!   memoisation layer: correctness never depends on a `preserves()`
//!   claim being *tight*, only on it being *true*.
//!
//! Pipelines are data, not code: they are built
//!
//! * **by name** — `PassManager::from_str("const_fold,copy_prop,dce")`
//!   resolves each element against the static [`REGISTRY`]
//!   (parameterised passes use `name(arg)`, e.g. `"inline(40)"`);
//! * **by optimisation level** — [`PassManager::o0`]…[`PassManager::o3`]
//!   presets à la binaryen's `OptimizationOptions`;
//! * **by the search** — the FPA driver decodes genomes into pipelines
//!   ([`crate::driver::CompilerConfig::from_genome`]), so every point of
//!   the multi-objective search space is a registry-backed pipeline;
//! * **by catalogue name** — a [`PipelineCatalog`] maps strings like
//!   `"o2"` or `"camera_pill"` to pipelines, so the coordination layer
//!   and the benches pick pipelines from names, not structs.
//!
//! Every pass is semantics-preserving (the differential tests run each
//! pipeline against the reference interpreter) and *flow-fact
//! preserving*: loop bounds survive, because the WCET analysis downstream
//! depends on them. The registered passes are the knobs of the
//! multi-objective search:
//!
//! * `inline` — saves call/prologue overhead, grows code
//!   (parameterised by the callee-size threshold);
//! * `licm` — hoists loop-invariant computations into preheaders
//!   (cycles ↓ and energy ↓ by the loop bound, code ≈), with
//!   dominator-tree speculation safety;
//! * `cse` — block-local common-subexpression elimination, including
//!   redundant loads under coarse aliasing;
//! * `gvn` — global value numbering over the dominator tree: an
//!   expression already computed on *every* path is replaced by a copy
//!   of the temp that still holds it (subsumes `cse` across blocks);
//! * `load_fwd` — global store-to-load forwarding: a load whose cell
//!   provably holds a known value on every incoming path becomes a
//!   copy of that value;
//! * `unroll` — fully unrolls *provably* constant-trip loops up to a
//!   trip ceiling (cycles ↓, code ↑: the classic size/speed trade);
//! * `strength_reduce` — `x * 2ⁿ` → shift (strictly better);
//! * `mul_shift_add` — `x * c` → shift-add decomposition in the IR,
//!   which *trades cycles for energy* on PG32's power-hungry multiplier
//!   (the codegen-level variant is
//!   [`crate::codegen::CodegenOpts::mul_shift_add`]);
//! * `const_fold` + `copy_prop` + `dce` — the cleanup trio, iterated to
//!   fixpoint by the manager;
//! * `block_layout` — CFG straightening ahead of codegen: threads and
//!   merges blocks so their terminators (each a cycle/energy/halfword
//!   cost on PG32) disappear.
//!
//! # The phase-ordering search space
//!
//! Pass *order* matters — `licm` before `cse` exposes different
//! subexpressions than after, cleanup between `inline` and `unroll`
//! changes what is provably constant-trip — so the genome the FPA
//! explores encodes order, not just membership. Decoding uses a
//! random-key (argsort) scheme: one gene per menu pass doubles as the
//! selection bit (`> 0.5`) *and* the ordering key (selected passes run
//! in ascending key order), further genes set the `inline`/`unroll`
//! parameters, an optional duplicated cleanup round, and the codegen
//! knobs. See [`crate::driver::CompilerConfig::from_genome`]. Decoding
//! is pure and deterministic, which is what lets the parallel search
//! stay bit-identical across pool widths and lets the evaluation cache
//! key on the decoded configuration.
//!
//! # Writing a new pass
//!
//! Implement [`Pass`] (declare what the pass [`Pass::preserves`] when
//! it changes the IR, and pull any analyses it needs from the
//! [`PassContext`]), then add a [`PassDescriptor`] line to
//! [`REGISTRY`]; the pass immediately becomes available to
//! [`PassManager::from_str`], the optimisation levels and (if added to
//! the genome's pass menu, [`crate::driver::CompilerConfig::SEARCH_PASSES`])
//! the Pareto search — no driver changes needed.
//!
//! ```
//! use teamplay_compiler::passes::PassManager;
//! use teamplay_minic::compile_to_ir;
//!
//! let mut module = compile_to_ir("int f() { return 2 * 8; }")?;
//! let mut pm = PassManager::from_str("const_fold,dce")?;
//! pm.run(&mut module);
//! assert!(pm.stats().iter().any(|s| s.changes > 0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::dataflow::{self, may_alias, BitSet, DefUse, DomTree, Liveness, ValueGraph};
use crate::driver::CompilerConfig;
use minipool::Pool;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::str::FromStr;
use teamplay_minic::ast::{BinOp, UnOp};
use teamplay_minic::interp::eval_binop;
use teamplay_minic::ir::{
    CallArg, IrBlockId, IrFunction, IrModule, IrOp, IrTerm, MemBase, Operand, Temp,
};

// =====================================================================
// Pass implementations (free functions — the reusable cores)
// =====================================================================

/// Fold constant expressions and propagate constants within blocks.
///
/// Returns `true` if anything changed.
pub fn const_fold(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        // Block-local constant environment.
        let mut env: HashMap<Temp, i32> = HashMap::new();
        let resolve = |env: &HashMap<Temp, i32>, o: Operand| -> Operand {
            match o {
                Operand::Temp(t) => match env.get(&t) {
                    Some(v) => Operand::Const(*v),
                    None => o,
                },
                c => c,
            }
        };
        for op in &mut b.ops {
            // First, rewrite operands using known constants.
            match op {
                IrOp::Bin { a, b: bb, .. } => {
                    *a = resolve(&env, *a);
                    *bb = resolve(&env, *bb);
                }
                IrOp::Un { a, .. } => *a = resolve(&env, *a),
                IrOp::Copy { src, .. } => *src = resolve(&env, *src),
                IrOp::Load { index, .. } => *index = resolve(&env, *index),
                IrOp::Store { index, value, .. } => {
                    *index = resolve(&env, *index);
                    *value = resolve(&env, *value);
                }
                IrOp::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Value(v) = a {
                            *v = resolve(&env, *v);
                        }
                    }
                }
                IrOp::Select { cond, t, f: fv, .. } => {
                    *cond = resolve(&env, *cond);
                    *t = resolve(&env, *t);
                    *fv = resolve(&env, *fv);
                }
                IrOp::In { .. } | IrOp::Out { value: _, .. } => {}
            }
            if let IrOp::Out { value, .. } = op {
                *value = resolve(&env, *value);
            }
            // Then fold.
            let folded: Option<(Temp, i32)> = match op {
                IrOp::Bin {
                    op: bop,
                    dst,
                    a: Operand::Const(x),
                    b: Operand::Const(y),
                } => Some((*dst, eval_binop(*bop, *x, *y))),
                IrOp::Un {
                    op: uop,
                    dst,
                    a: Operand::Const(x),
                } => {
                    let v = match uop {
                        UnOp::Neg => x.wrapping_neg(),
                        UnOp::BitNot => !*x,
                        UnOp::LogNot => (*x == 0) as i32,
                    };
                    Some((*dst, v))
                }
                IrOp::Copy {
                    dst,
                    src: Operand::Const(x),
                } => Some((*dst, *x)),
                IrOp::Select {
                    dst,
                    cond: Operand::Const(c),
                    t,
                    f: fv,
                } => {
                    let chosen = if *c != 0 { *t } else { *fv };
                    if let Operand::Const(v) = chosen {
                        Some((*dst, v))
                    } else {
                        *op = IrOp::Copy {
                            dst: *dst,
                            src: chosen,
                        };
                        changed = true;
                        // The copy may still bind a constant next pass.
                        None
                    }
                }
                _ => None,
            };
            // Track definitions: any write invalidates the old binding.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            for d in &defs {
                env.remove(d);
            }
            if let Some((dst, v)) = folded {
                if !matches!(
                    op,
                    IrOp::Copy {
                        src: Operand::Const(_),
                        ..
                    }
                ) {
                    *op = IrOp::Copy {
                        dst,
                        src: Operand::Const(v),
                    };
                    changed = true;
                }
                env.insert(dst, v);
            }
        }
        // Terminator folding: constant branches become jumps.
        if let IrTerm::Branch {
            cond,
            taken,
            fallthrough,
        } = &b.term
        {
            let folded = match cond {
                Operand::Const(c) => Some(if *c != 0 { *taken } else { *fallthrough }),
                Operand::Temp(t) => env
                    .get(t)
                    .map(|v| if *v != 0 { *taken } else { *fallthrough }),
            };
            if let Some(target) = folded {
                b.term = IrTerm::Jump(target);
                changed = true;
            }
        }
    }
    changed
}

fn written_temps(op: &IrOp, out: &mut Vec<Temp>) {
    match op {
        IrOp::Bin { dst, .. }
        | IrOp::Un { dst, .. }
        | IrOp::Copy { dst, .. }
        | IrOp::Load { dst, .. }
        | IrOp::Select { dst, .. }
        | IrOp::In { dst, .. } => out.push(*dst),
        IrOp::Call { dst: Some(d), .. } => out.push(*d),
        _ => {}
    }
}

fn read_operands(op: &IrOp) -> Vec<Operand> {
    let mut reads = Vec::new();
    match op {
        IrOp::Bin { a, b, .. } => {
            reads.push(*a);
            reads.push(*b);
        }
        IrOp::Un { a, .. } => reads.push(*a),
        IrOp::Copy { src, .. } => reads.push(*src),
        IrOp::Load { base, index, .. } => {
            reads.push(*index);
            if let MemBase::Param(t) = base {
                reads.push(Operand::Temp(*t));
            }
        }
        IrOp::Store { base, index, value } => {
            reads.push(*index);
            reads.push(*value);
            if let MemBase::Param(t) = base {
                reads.push(Operand::Temp(*t));
            }
        }
        IrOp::Call { args, .. } => {
            for a in args {
                match a {
                    CallArg::Value(v) => reads.push(*v),
                    CallArg::ArrayRef(MemBase::Param(t)) => reads.push(Operand::Temp(*t)),
                    CallArg::ArrayRef(_) => {}
                }
            }
        }
        IrOp::Select { cond, t, f, .. } => {
            reads.push(*cond);
            reads.push(*t);
            reads.push(*f);
        }
        IrOp::In { .. } => {}
        IrOp::Out { value, .. } => reads.push(*value),
    }
    reads
}

/// Propagate copies within blocks (`t2 = t1; use t2` → `use t1`).
///
/// Returns `true` if anything changed.
pub fn copy_propagate(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        // dst -> source operand, valid while neither side is redefined.
        let mut env: HashMap<Temp, Operand> = HashMap::new();
        let resolve = |env: &HashMap<Temp, Operand>, o: Operand| -> Operand {
            match o {
                Operand::Temp(t) => env.get(&t).copied().unwrap_or(o),
                c => c,
            }
        };
        for op in &mut b.ops {
            let rewrite = |o: &mut Operand, env: &HashMap<Temp, Operand>, changed: &mut bool| {
                let new = resolve(env, *o);
                if new != *o {
                    *o = new;
                    *changed = true;
                }
            };
            match op {
                IrOp::Bin { a, b: bb, .. } => {
                    rewrite(a, &env, &mut changed);
                    rewrite(bb, &env, &mut changed);
                }
                IrOp::Un { a, .. } => rewrite(a, &env, &mut changed),
                IrOp::Copy { src, .. } => rewrite(src, &env, &mut changed),
                IrOp::Load { index, .. } => rewrite(index, &env, &mut changed),
                IrOp::Store { index, value, .. } => {
                    rewrite(index, &env, &mut changed);
                    rewrite(value, &env, &mut changed);
                }
                IrOp::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Value(v) = a {
                            rewrite(v, &env, &mut changed);
                        }
                    }
                }
                IrOp::Select { cond, t, f: fv, .. } => {
                    rewrite(cond, &env, &mut changed);
                    rewrite(t, &env, &mut changed);
                    rewrite(fv, &env, &mut changed);
                }
                IrOp::In { .. } => {}
                IrOp::Out { value, .. } => rewrite(value, &env, &mut changed),
            }
            // Kill bindings invalidated by this op's writes.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            for d in &defs {
                env.remove(d);
                env.retain(|_, src| *src != Operand::Temp(*d));
            }
            // Record new copies.
            if let IrOp::Copy { dst, src } = op {
                if *src != Operand::Temp(*dst) {
                    env.insert(*dst, *src);
                }
            }
        }
        if let IrTerm::Branch { cond, .. } = &mut b.term {
            let new = resolve(&env, *cond);
            if new != *cond {
                *cond = new;
                changed = true;
            }
        }
        if let IrTerm::Ret(Some(v)) = &mut b.term {
            let new = resolve(&env, *v);
            if new != *v {
                *v = new;
                changed = true;
            }
        }
    }
    changed
}

/// Remove pure operations whose results are never read.
///
/// Returns `true` if anything changed.
pub fn dead_code_elim(f: &mut IrFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used = vec![false; f.temp_count as usize];
        let mut mark = |o: Operand| {
            if let Operand::Temp(t) = o {
                used[t.0 as usize] = true;
            }
        };
        for b in &f.blocks {
            for op in &b.ops {
                for r in read_operands(op) {
                    mark(r);
                }
            }
            match &b.term {
                IrTerm::Branch { cond, .. } => mark(*cond),
                IrTerm::Ret(Some(v)) => mark(*v),
                _ => {}
            }
        }
        let mut removed = false;
        for b in &mut f.blocks {
            let before = b.ops.len();
            b.ops.retain(|op| match op {
                IrOp::Bin { dst, .. }
                | IrOp::Un { dst, .. }
                | IrOp::Copy { dst, .. }
                | IrOp::Load { dst, .. }
                | IrOp::Select { dst, .. } => used[dst.0 as usize],
                // Calls, stores, port I/O have effects; `In` consumes an
                // input value even if the result is unused.
                _ => true,
            });
            if b.ops.len() != before {
                removed = true;
            }
        }
        if removed {
            changed = true;
        } else {
            return changed;
        }
    }
}

/// Is `c` a power of two (≥ 2)?
fn pow2_shift(c: i32) -> Option<i32> {
    if c >= 2 && (c & (c - 1)) == 0 {
        Some(c.trailing_zeros() as i32)
    } else {
        None
    }
}

/// Strength-reduce multiplications by constants.
///
/// * Always (when enabled): `x * 2ⁿ` → `x << n`, `x * 1` → copy,
///   `x * 0` → 0 — strictly better in time and energy.
/// * With `shift_add`: `x * c` for small positive `c` with ≤ 3 set bits
///   → a shift/add sequence. On PG32 this costs extra cycles but less
///   energy than the power-hungry multiplier: a pure energy/time
///   trade-off for the Pareto search.
///
/// Returns `true` if anything changed.
pub fn strength_reduce_mul(f: &mut IrFunction, shift_add: bool) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let mut new_ops: Vec<IrOp> = Vec::with_capacity(f.blocks[bi].ops.len());
        let ops = std::mem::take(&mut f.blocks[bi].ops);
        for op in ops {
            // Normalise const-on-left multiplications.
            let (dst, x, c) = match op {
                IrOp::Bin {
                    op: BinOp::Mul,
                    dst,
                    a,
                    b,
                } => match (a, b) {
                    (x, Operand::Const(c)) => (dst, x, Some(c)),
                    (Operand::Const(c), x) => (dst, x, Some(c)),
                    _ => {
                        new_ops.push(op);
                        continue;
                    }
                },
                other => {
                    new_ops.push(other);
                    continue;
                }
            };
            let Some(c) = c else {
                new_ops.push(IrOp::Bin {
                    op: BinOp::Mul,
                    dst,
                    a: x,
                    b: x,
                });
                continue;
            };
            match c {
                0 => {
                    new_ops.push(IrOp::Copy {
                        dst,
                        src: Operand::Const(0),
                    });
                    changed = true;
                }
                1 => {
                    new_ops.push(IrOp::Copy { dst, src: x });
                    changed = true;
                }
                _ => {
                    if let Some(sh) = pow2_shift(c) {
                        new_ops.push(IrOp::Bin {
                            op: BinOp::Shl,
                            dst,
                            a: x,
                            b: Operand::Const(sh),
                        });
                        changed = true;
                    } else if shift_add && (2..=255).contains(&c) && c.count_ones() <= 3 {
                        // x*c = Σ x << kᵢ over the set bits of c (wrapping
                        // arithmetic makes this exact for all x).
                        let mut parts: Vec<Temp> = Vec::new();
                        for bit in 0..8 {
                            if c & (1 << bit) != 0 {
                                let t = f.fresh_temp();
                                new_ops.push(IrOp::Bin {
                                    op: BinOp::Shl,
                                    dst: t,
                                    a: x,
                                    b: Operand::Const(bit),
                                });
                                parts.push(t);
                            }
                        }
                        let mut acc = parts[0];
                        for p in &parts[1..] {
                            let t = f.fresh_temp();
                            new_ops.push(IrOp::Bin {
                                op: BinOp::Add,
                                dst: t,
                                a: Operand::Temp(acc),
                                b: Operand::Temp(*p),
                            });
                            acc = t;
                        }
                        new_ops.push(IrOp::Copy {
                            dst,
                            src: Operand::Temp(acc),
                        });
                        changed = true;
                    } else {
                        new_ops.push(IrOp::Bin {
                            op: BinOp::Mul,
                            dst,
                            a: x,
                            b: Operand::Const(c),
                        });
                    }
                }
            }
        }
        f.blocks[bi].ops = new_ops;
    }
    changed
}

/// Per-caller inlining budget: bounds code growth per function.
const MAX_INLINES_PER_FUNCTION: usize = 24;

/// Clone every function body by name — the callee snapshot inlining
/// reads from ([`PassContext::functions`]).
pub fn snapshot_functions(module: &IrModule) -> HashMap<String, IrFunction> {
    module
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.clone()))
        .collect()
}

/// Is `start` (even mutually) recursive, judged on a body snapshot?
fn is_recursive(snapshot: &HashMap<String, IrFunction>, start: &str) -> bool {
    let mut stack = vec![start.to_string()];
    let mut seen = vec![start.to_string()];
    while let Some(cur) = stack.pop() {
        let Some(f) = snapshot.get(&cur) else {
            continue;
        };
        for b in &f.blocks {
            for op in &b.ops {
                if let IrOp::Call { func, .. } = op {
                    if func == start {
                        return true;
                    }
                    if !seen.contains(func) {
                        seen.push(func.clone());
                        stack.push(func.clone());
                    }
                }
            }
        }
    }
    false
}

fn op_count(f: &IrFunction) -> usize {
    f.blocks.iter().map(|b| b.ops.len() + 1).sum::<usize>()
}

/// Inline eligible call sites of one caller, reading callee bodies from
/// `snapshot`. A call site is eligible when the callee (a) is not (even
/// mutually) recursive, (b) has at most `threshold` IR operations, and
/// (c) is not the caller itself. At most [`MAX_INLINES_PER_FUNCTION`]
/// sites are expanded per invocation to bound code growth ([`InlinePass`]
/// enforces the same bound across fixpoint rounds via its per-function
/// budget). Loop bounds of the callee transfer to the caller (block ids
/// remapped), keeping the result analysable.
///
/// Returns `true` if anything changed.
pub fn inline_with_snapshot(
    f: &mut IrFunction,
    snapshot: &HashMap<String, IrFunction>,
    threshold: usize,
) -> bool {
    let mut budget = MAX_INLINES_PER_FUNCTION;
    inline_with_budget(f, snapshot, threshold, &mut budget)
}

/// [`inline_with_snapshot`] with an externally owned budget, so repeated
/// invocations on the same function (fixpoint rounds) share one cap.
fn inline_with_budget(
    f: &mut IrFunction,
    snapshot: &HashMap<String, IrFunction>,
    threshold: usize,
    budget: &mut usize,
) -> bool {
    let mut changed = false;
    while *budget > 0 {
        // Find the first eligible call site.
        let mut site: Option<(usize, usize, String)> = None;
        'outer: for (bi, b) in f.blocks.iter().enumerate() {
            for (oi, op) in b.ops.iter().enumerate() {
                if let IrOp::Call { func, .. } = op {
                    if func != &f.name
                        && snapshot.get(func).is_some_and(|c| op_count(c) <= threshold)
                        && !is_recursive(snapshot, func)
                    {
                        site = Some((bi, oi, func.clone()));
                        break 'outer;
                    }
                }
            }
        }
        let Some((bi, oi, callee_name)) = site else {
            break;
        };
        let callee = snapshot[&callee_name].clone();
        inline_site(f, bi, oi, &callee);
        *budget -= 1;
        changed = true;
    }
    changed
}

/// Inline small callees into their callers, module-wide (callee bodies
/// are snapshotted up front; see [`inline_with_snapshot`] for
/// eligibility).
///
/// Returns `true` if anything changed.
pub fn inline_functions(module: &mut IrModule, threshold: usize) -> bool {
    let snapshot = snapshot_functions(module);
    let mut changed = false;
    for f in &mut module.functions {
        changed |= inline_with_snapshot(f, &snapshot, threshold);
    }
    changed
}

/// Inline eligible call sites of a single named caller. Returns `true`
/// on change.
pub fn inline_into(module: &mut IrModule, caller: &str, threshold: usize) -> bool {
    let snapshot = snapshot_functions(module);
    let Some(f) = module.functions.iter_mut().find(|f| f.name == caller) else {
        return false;
    };
    inline_with_snapshot(f, &snapshot, threshold)
}

/// Expand one call site in place.
fn inline_site(caller: &mut IrFunction, bi: usize, oi: usize, callee: &IrFunction) {
    let IrOp::Call { dst, args, .. } = caller.blocks[bi].ops[oi].clone() else {
        unreachable!("inline_site requires a call at the given position");
    };

    let temp_offset = caller.temp_count;
    caller.temp_count += callee.temp_count;
    let block_offset = caller.blocks.len() as u32;
    let array_offset = caller.local_arrays.len() as u32;
    caller.local_arrays.extend_from_slice(&callee.local_arrays);

    // Split the call block: ops after the call move to a continuation.
    let mut pre_ops: Vec<IrOp> = caller.blocks[bi].ops.drain(..).collect();
    let post_ops: Vec<IrOp> = pre_ops.split_off(oi + 1);
    pre_ops.pop(); // the call itself
    let original_term = caller.blocks[bi].term.clone();
    caller.blocks[bi].ops = pre_ops;

    // Map the callee's array-parameter temps to actual caller bases and
    // bind scalar parameters by copy.
    let mut param_arrays: HashMap<Temp, MemBase> = HashMap::new();
    for (p, a) in callee.params.iter().zip(&args) {
        match a {
            CallArg::Value(v) => {
                caller.blocks[bi].ops.push(IrOp::Copy {
                    dst: Temp(p.temp.0 + temp_offset),
                    src: *v,
                });
            }
            CallArg::ArrayRef(m) => {
                param_arrays.insert(p.temp, m.clone());
            }
        }
    }

    let remap_operand = |o: Operand| match o {
        Operand::Temp(t) => Operand::Temp(Temp(t.0 + temp_offset)),
        c => c,
    };
    let remap_base = |m: &MemBase| -> MemBase {
        match m {
            MemBase::Global(g) => MemBase::Global(g.clone()),
            MemBase::Local(id) => MemBase::Local(id + array_offset),
            MemBase::Param(t) => match param_arrays.get(t) {
                Some(actual) => actual.clone(),
                None => MemBase::Param(Temp(t.0 + temp_offset)),
            },
        }
    };

    // The continuation block receives the post-call ops + original term.
    let cont_id = IrBlockId(block_offset + callee.blocks.len() as u32);

    // Splice remapped callee blocks.
    for cb in &callee.blocks {
        let mut ops = Vec::with_capacity(cb.ops.len());
        for op in &cb.ops {
            let new_op = match op {
                IrOp::Bin { op, dst, a, b } => IrOp::Bin {
                    op: *op,
                    dst: Temp(dst.0 + temp_offset),
                    a: remap_operand(*a),
                    b: remap_operand(*b),
                },
                IrOp::Un { op, dst, a } => IrOp::Un {
                    op: *op,
                    dst: Temp(dst.0 + temp_offset),
                    a: remap_operand(*a),
                },
                IrOp::Copy { dst, src } => IrOp::Copy {
                    dst: Temp(dst.0 + temp_offset),
                    src: remap_operand(*src),
                },
                IrOp::Load { dst, base, index } => IrOp::Load {
                    dst: Temp(dst.0 + temp_offset),
                    base: remap_base(base),
                    index: remap_operand(*index),
                },
                IrOp::Store { base, index, value } => IrOp::Store {
                    base: remap_base(base),
                    index: remap_operand(*index),
                    value: remap_operand(*value),
                },
                IrOp::Call { dst, func, args } => IrOp::Call {
                    dst: dst.map(|d| Temp(d.0 + temp_offset)),
                    func: func.clone(),
                    args: args
                        .iter()
                        .map(|a| match a {
                            CallArg::Value(v) => CallArg::Value(remap_operand(*v)),
                            CallArg::ArrayRef(m) => CallArg::ArrayRef(remap_base(m)),
                        })
                        .collect(),
                },
                IrOp::Select { dst, cond, t, f } => IrOp::Select {
                    dst: Temp(dst.0 + temp_offset),
                    cond: remap_operand(*cond),
                    t: remap_operand(*t),
                    f: remap_operand(*f),
                },
                IrOp::In { dst, port } => IrOp::In {
                    dst: Temp(dst.0 + temp_offset),
                    port: *port,
                },
                IrOp::Out { port, value } => IrOp::Out {
                    port: *port,
                    value: remap_operand(*value),
                },
            };
            ops.push(new_op);
        }
        let term = match &cb.term {
            IrTerm::Jump(t) => IrTerm::Jump(IrBlockId(t.0 + block_offset)),
            IrTerm::Branch {
                cond,
                taken,
                fallthrough,
            } => IrTerm::Branch {
                cond: remap_operand(*cond),
                taken: IrBlockId(taken.0 + block_offset),
                fallthrough: IrBlockId(fallthrough.0 + block_offset),
            },
            IrTerm::Ret(v) => {
                // Return becomes: bind the destination, jump to the
                // continuation.
                if let (Some(d), Some(v)) = (dst, v) {
                    ops.push(IrOp::Copy {
                        dst: d,
                        src: remap_operand(*v),
                    });
                }
                IrTerm::Jump(cont_id)
            }
        };
        caller
            .blocks
            .push(teamplay_minic::ir::IrBlock { ops, term });
    }

    // Continuation block.
    caller.blocks.push(teamplay_minic::ir::IrBlock {
        ops: post_ops,
        term: original_term,
    });

    // Callee loop bounds transfer (remapped).
    for (hb, bound) in &callee.loop_bounds {
        caller
            .loop_bounds
            .insert(IrBlockId(hb.0 + block_offset), *bound);
    }

    // Enter the inlined body.
    caller.blocks[bi].term = IrTerm::Jump(IrBlockId(block_offset));
}

/// Loop-invariant code motion.
///
/// Hoists pure, *total* operations (`Bin`/`Un`/`Copy`/`Select` — every
/// arithmetic op of this IR is defined for all inputs, so speculation is
/// safe) out of natural loops into a preheader when, over the real
/// dominator tree ([`DomTree`]) and def-use chains ([`DefUse`]):
///
/// * every operand is loop-invariant (no definition inside the loop),
/// * the op is the *only* definition of its destination inside the loop
///   (the IR is not SSA; other defs outside the loop are fine because
///   the conditions below pin which def each read observes),
/// * the op's site dominates every in-loop read of the destination (so
///   each iteration's reads observe the op's value, which the invariant
///   operands keep identical across iterations), and
/// * either the op's block dominates every loop exit block (the op runs
///   on every trip through the loop, zero-trip included — e.g. ops in
///   the header itself), or every read of the destination anywhere in
///   the function sits inside the loop (a zero-trip entry that skips
///   the definition also skips every read, so the speculated value is
///   unobservable).
///
/// This subsumes the old single-static-definition rule: any dominated
/// invariant def hoists, even when the destination is also written
/// elsewhere in the function.
///
/// Loads are never hoisted: an out-of-bounds index would turn a
/// dynamically dead access into a trap. Hoisting chains (`t1 = c + 1;
/// t2 = t1 * 4`) resolve over the internal restart loop: once `t1`
/// leaves the loop, `t2` becomes invariant.
///
/// Returns `true` if anything was hoisted.
pub fn licm(f: &mut IrFunction) -> bool {
    let mut changed = false;
    // Each hoist invalidates the analyses; restart (bounded) after every
    // move. The bound only caps work per invocation — the manager's
    // fixpoint loop will call again while the pass keeps reporting
    // changes.
    for _ in 0..64 {
        let dom = DomTree::build(f);
        let du = DefUse::build(f);
        if !licm_step(f, &dom, &du) {
            break;
        }
        changed = true;
    }
    changed
}

/// One `licm` hoist attempt against prebuilt analyses. Performs at most
/// one hoist (which invalidates `dom`/`du`) and reports whether it did.
fn licm_step(f: &mut IrFunction, dom: &DomTree, du: &DefUse) -> bool {
    let loops = teamplay_minic::cfg::natural_loops(f);
    for l in &loops {
        if l.header == 0 {
            continue; // no edge to put a preheader on
        }
        let in_body = |b: usize| l.body.contains(&b);
        let invariant = |o: &Operand| match o {
            Operand::Const(_) => true,
            Operand::Temp(t) => !du.defs(*t).iter().any(|&(b, _)| in_body(b)),
        };
        // Loop exit blocks: body blocks with a successor outside.
        let exits: Vec<usize> = l
            .body
            .iter()
            .copied()
            .filter(|&b| {
                f.blocks[b]
                    .term
                    .successors()
                    .iter()
                    .any(|s| !in_body(s.index()))
            })
            .collect();
        let candidate = l.body.iter().find_map(|&bi| {
            f.blocks[bi].ops.iter().enumerate().find_map(|(oi, op)| {
                let dst = match op {
                    IrOp::Bin { dst, .. }
                    | IrOp::Un { dst, .. }
                    | IrOp::Copy { dst, .. }
                    | IrOp::Select { dst, .. } => *dst,
                    _ => return None, // effectful, memory or call
                };
                let mut reads = Vec::new();
                dataflow::for_each_read(op, |t| reads.push(t));
                if !reads.iter().all(|t| invariant(&Operand::Temp(*t))) {
                    return None;
                }
                // The only def of `dst` inside the loop.
                if du
                    .defs(dst)
                    .iter()
                    .any(|&site| in_body(site.0) && site != (bi, oi))
                {
                    return None;
                }
                // The op's site dominates every in-loop read of `dst`
                // (terminator reads sit at op index `ops.len()`).
                let site_dominates = |&(rb, ro): &(usize, usize)| {
                    if rb == bi {
                        ro > oi
                    } else {
                        dom.dominates(bi, rb)
                    }
                };
                if !du
                    .uses(dst)
                    .iter()
                    .filter(|&&(rb, _)| in_body(rb))
                    .all(site_dominates)
                {
                    return None;
                }
                // Zero-trip safety, by any of three arguments: the op
                // runs on every pass through the loop; nothing outside
                // the loop observes `dst`; or (the old conservative
                // rule) `dst` has one global def and every read is
                // dominated by it, so a zero-trip entry that skips the
                // def is unreachable for every read.
                let runs_every_trip = exits.iter().all(|&e| dom.dominates(bi, e));
                let observed_only_inside = du.uses(dst).iter().all(|&(rb, _)| in_body(rb));
                let single_def_dominates_all =
                    du.def_count(dst) == 1 && du.uses(dst).iter().all(site_dominates);
                if !(runs_every_trip || observed_only_inside || single_def_dominates_all) {
                    return None;
                }
                Some((bi, oi))
            })
        });
        if let Some((bi, oi)) = candidate {
            let hoisted = f.blocks[bi].ops.remove(oi);
            let pre = ensure_preheader(f, l.header, &l.body);
            f.blocks[pre].ops.push(hoisted);
            return true;
        }
    }
    false
}

/// The block every entry edge of `header`'s loop runs through, creating
/// one if needed. If the single outside predecessor already ends in an
/// unconditional jump to the header, it *is* the preheader (appending
/// ops to its end executes exactly once per loop entry); otherwise a
/// fresh forwarding block is spliced onto every outside edge.
fn ensure_preheader(
    f: &mut IrFunction,
    header: usize,
    body: &std::collections::BTreeSet<usize>,
) -> usize {
    let outside: Vec<usize> = (0..f.blocks.len())
        .filter(|bi| !body.contains(bi))
        .filter(|bi| {
            f.blocks[*bi]
                .term
                .successors()
                .iter()
                .any(|s| s.index() == header)
        })
        .collect();
    if let [single] = outside[..] {
        if matches!(f.blocks[single].term, IrTerm::Jump(_)) {
            return single;
        }
    }
    let pre = f.blocks.len();
    f.blocks.push(teamplay_minic::ir::IrBlock {
        ops: Vec::new(),
        term: IrTerm::Jump(IrBlockId(header as u32)),
    });
    let target = IrBlockId(pre as u32);
    for bi in outside {
        let retarget = |t: &mut IrBlockId| {
            if t.index() == header {
                *t = target;
            }
        };
        match &mut f.blocks[bi].term {
            IrTerm::Jump(t) => retarget(t),
            IrTerm::Branch {
                taken, fallthrough, ..
            } => {
                retarget(taken);
                retarget(fallthrough);
            }
            IrTerm::Ret(_) => {}
        }
    }
    pre
}

/// A value-numbering key for pure, recomputable operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(BinOp, Operand, Operand),
    Un(UnOp, Operand),
    Select(Operand, Operand, Operand),
    Load(MemBase, Operand),
}

impl ExprKey {
    /// The key of an op, with commutative operand normalisation.
    fn of(op: &IrOp) -> Option<ExprKey> {
        let rank = |o: &Operand| match o {
            Operand::Const(c) => (0u8, *c as i64),
            Operand::Temp(t) => (1, t.0 as i64),
        };
        Some(match op {
            IrOp::Bin { op, a, b, .. } => {
                let (a, b) = match op {
                    BinOp::Add
                    | BinOp::Mul
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
                    | BinOp::Eq
                    | BinOp::Ne
                        if rank(b) < rank(a) =>
                    {
                        (*b, *a)
                    }
                    _ => (*a, *b),
                };
                ExprKey::Bin(*op, a, b)
            }
            IrOp::Un { op, a, .. } => ExprKey::Un(*op, *a),
            IrOp::Select { cond, t, f, .. } => ExprKey::Select(*cond, *t, *f),
            IrOp::Load { base, index, .. } => ExprKey::Load(base.clone(), *index),
            _ => return None,
        })
    }

    /// Temps the keyed expression reads (redefinition invalidates).
    fn read_temps(&self) -> Vec<Temp> {
        let mut out = Vec::new();
        let mut push = |o: &Operand| {
            if let Operand::Temp(t) = o {
                out.push(*t);
            }
        };
        match self {
            ExprKey::Bin(_, a, b) => {
                push(a);
                push(b);
            }
            ExprKey::Un(_, a) => push(a),
            ExprKey::Select(c, t, f) => {
                push(c);
                push(t);
                push(f);
            }
            ExprKey::Load(base, index) => {
                push(index);
                if let MemBase::Param(t) = base {
                    out.push(*t);
                }
            }
        }
        out
    }
}

/// Local (block-scoped) common-subexpression elimination.
///
/// Within each block, a pure recomputation of an expression whose
/// operands (and previous result) are still live becomes a copy of the
/// first result. Loads participate too, with coarse alias analysis: any
/// store or call invalidates every remembered load (the callee may write
/// any global or by-reference array).
///
/// Returns `true` if anything changed.
pub fn local_cse(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        let mut available: HashMap<ExprKey, Temp> = HashMap::new();
        for op in &mut b.ops {
            let key = ExprKey::of(op);
            // Reuse an identical, still-valid prior computation.
            let mut replaced = false;
            if let (Some(key), Some(dst)) = (&key, op_dst(op)) {
                if let Some(prev) = available.get(key) {
                    if *prev != dst {
                        *op = IrOp::Copy {
                            dst,
                            src: Operand::Temp(*prev),
                        };
                        changed = true;
                        replaced = true;
                    }
                }
            }
            // Invalidate what this op clobbers — the rewritten copy
            // still writes `dst`, so the non-SSA IR's other entries
            // reading (or valued by) `dst` go stale either way.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            if !defs.is_empty() {
                available.retain(|k, v| {
                    !defs.contains(v) && !k.read_temps().iter().any(|t| defs.contains(t))
                });
            }
            if matches!(op, IrOp::Store { .. } | IrOp::Call { .. }) {
                available.retain(|k, _| !matches!(k, ExprKey::Load(..)));
            }
            // Record the *original* computation, unless it was replaced
            // (the surviving `key → prev` entry already covers it) or it
            // reads its own destination (the keyed value is stale the
            // moment the op runs).
            if !replaced {
                if let (Some(key), Some(dst)) = (key, op_dst(op)) {
                    if !key.read_temps().contains(&dst) {
                        available.insert(key, dst);
                    }
                }
            }
        }
    }
    changed
}

/// The single destination temp of a pure op, if any.
fn op_dst(op: &IrOp) -> Option<Temp> {
    match op {
        IrOp::Bin { dst, .. }
        | IrOp::Un { dst, .. }
        | IrOp::Copy { dst, .. }
        | IrOp::Load { dst, .. }
        | IrOp::Select { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Global value numbering over available expression *holders*.
///
/// The cross-block generalisation of [`local_cse`], sound on the
/// non-SSA IR by tracking per-site facts instead of bare expressions:
/// every computation `d = expr` whose destination has exactly **one**
/// definition in the whole function generates the fact "`d` holds the
/// current value of `expr`". A forward all-paths dataflow (meet =
/// intersection, entry = ∅) kills a fact when any temp its expression
/// reads is redefined — and, for loads, when an aliasing store or any
/// call lands ([`may_alias`]). A fact available at a recomputation of
/// the same expression proves the holder still carries exactly the
/// value the op would compute, on **every** incoming path — including
/// around loop back-edges — so the op becomes a copy of the holder.
///
/// Sites whose destination is multi-def generate no facts (the holder
/// can go stale without its expression changing); [`local_cse`] still
/// covers those within a block by tracking redefinitions positionally.
///
/// Returns `true` if anything changed.
pub fn gvn(f: &mut IrFunction) -> bool {
    let dom = DomTree::build(f);
    let du = DefUse::build(f);
    gvn_with(f, &dom, &du)
}

/// [`gvn`] against prebuilt analyses (the pass-framework entry point).
fn gvn_with(f: &mut IrFunction, dom: &DomTree, du: &DefUse) -> bool {
    // 1. The fact universe: every keyed pure op with a single-def
    //    destination, in deterministic site order. Self-reading ops
    //    (`t = t + 1`) are not keyed — their value goes stale the
    //    moment they run.
    struct Fact {
        site: (usize, usize),
        key: ExprKey,
        holder: Temp,
    }
    let mut facts: Vec<Fact> = Vec::new();
    let mut fact_at: HashMap<(usize, usize), usize> = HashMap::new();
    let mut facts_of_key: HashMap<ExprKey, Vec<usize>> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (oi, op) in b.ops.iter().enumerate() {
            let (Some(key), Some(dst)) = (ExprKey::of(op), op_dst(op)) else {
                continue;
            };
            if key.read_temps().contains(&dst) || du.single_def(dst) != Some((bi, oi)) {
                continue;
            }
            let id = facts.len();
            fact_at.insert((bi, oi), id);
            facts_of_key.entry(key.clone()).or_default().push(id);
            facts.push(Fact {
                site: (bi, oi),
                key,
                holder: dst,
            });
        }
    }
    let n = facts.len();
    if n == 0 {
        return false;
    }
    // Inverted indexes for the kill sets. (A fact's holder needs no
    // kill entry: it is single-def, and its one def *is* the gen site.)
    let mut killed_by_temp: HashMap<Temp, Vec<usize>> = HashMap::new();
    let mut load_facts: Vec<(usize, MemBase)> = Vec::new();
    for (id, fact) in facts.iter().enumerate() {
        for t in fact.key.read_temps() {
            killed_by_temp.entry(t).or_default().push(id);
        }
        if let ExprKey::Load(base, _) = &fact.key {
            load_facts.push((id, base.clone()));
        }
    }
    // The transfer of one op at one site: kills first (writes clobber
    // facts whose expression reads the temp; stores/calls clobber load
    // facts), then the site's own fact becomes available.
    let apply = |site: (usize, usize), op: &IrOp, avail: &mut BitSet| {
        dataflow::for_each_write(op, |t| {
            for &id in killed_by_temp.get(&t).map_or(&[][..], |v| v) {
                avail.remove(id);
            }
        });
        match op {
            IrOp::Store { base, .. } => {
                for (id, kb) in &load_facts {
                    if may_alias(base, kb) {
                        avail.remove(*id);
                    }
                }
            }
            IrOp::Call { .. } => {
                for (id, _) in &load_facts {
                    avail.remove(*id);
                }
            }
            _ => {}
        }
        if let Some(&id) = fact_at.get(&site) {
            avail.insert(id);
        }
    };
    // 2. Forward fixpoint over the reachable blocks in reverse
    //    postorder: in = ∩ preds' out, entry = ∅, unreached inits full.
    let nb = f.blocks.len();
    let preds = teamplay_minic::cfg::predecessors(f);
    let mut avail_in: Vec<BitSet> = (0..nb).map(|_| BitSet::full(n)).collect();
    let mut avail_out: Vec<BitSet> = (0..nb).map(|_| BitSet::full(n)).collect();
    avail_in[0] = BitSet::new(n);
    loop {
        let mut changed = false;
        for &b in dom.rpo() {
            if b != 0 {
                let mut inn = BitSet::full(n);
                for &p in &preds[b] {
                    inn.intersect_with(&avail_out[p]);
                }
                changed |= avail_in[b] != inn;
                avail_in[b] = inn;
            }
            let mut out = avail_in[b].clone();
            for (oi, op) in f.blocks[b].ops.iter().enumerate() {
                apply((b, oi), op, &mut out);
            }
            changed |= avail_out[b] != out;
            avail_out[b] = out;
        }
        if !changed {
            break;
        }
    }
    // 3. Replacement walk: a keyed op with an available fact for the
    //    same expression (held by a *different* temp) becomes a copy of
    //    the holder. The transfer uses the *original* op — its own fact
    //    (if any) still holds after the copy, so chains keep folding.
    let mut changed = false;
    for &b in dom.rpo() {
        let mut cur = avail_in[b].clone();
        for oi in 0..f.blocks[b].ops.len() {
            let op = f.blocks[b].ops[oi].clone();
            let replacement = (|| {
                let (key, dst) = (ExprKey::of(&op)?, op_dst(&op)?);
                if key.read_temps().contains(&dst) {
                    return None;
                }
                let holder = facts_of_key
                    .get(&key)?
                    .iter()
                    .copied()
                    .filter(|&id| cur.contains(id) && facts[id].site != (b, oi))
                    .map(|id| facts[id].holder)
                    .next()?;
                (holder != dst).then_some(IrOp::Copy {
                    dst,
                    src: Operand::Temp(holder),
                })
            })();
            if let Some(copy) = replacement {
                f.blocks[b].ops[oi] = copy;
                changed = true;
            }
            apply((b, oi), &op, &mut cur);
        }
    }
    changed
}

/// Store-to-load forwarding across block boundaries.
///
/// Tracks memory facts `mem[base][index] == value` generated by stores
/// (and by loads, whose destination then holds the cell's value) through
/// a forward all-paths dataflow, and replaces a `Load` whose cell has a
/// proven value on every incoming path with a copy of that value.
///
/// A fact dies when its index/value temp (or `Param` base temp) is
/// redefined, when a call runs (callees may write any global or
/// by-reference array), or when an aliasing store lands on it — unless
/// both stores address the *same* base at provably distinct constant
/// indexes. Self-referential facts (`t = A[t]`) are never recorded.
///
/// Returns `true` if anything changed.
pub fn load_fwd(f: &mut IrFunction) -> bool {
    // 1. The fact universe, in deterministic first-encounter order.
    type Fact = (MemBase, Operand, Operand);
    let fact_of = |op: &IrOp| -> Option<Fact> {
        match op {
            IrOp::Store { base, index, value } => Some((base.clone(), *index, *value)),
            IrOp::Load { dst, base, index } => Some((base.clone(), *index, Operand::Temp(*dst))),
            _ => None,
        }
    };
    // Temps a fact reads: redefinition invalidates it.
    let fact_temps = |(base, index, value): &Fact| -> Vec<Temp> {
        let mut out = Vec::new();
        if let MemBase::Param(t) = base {
            out.push(*t);
        }
        for o in [index, value] {
            if let Operand::Temp(t) = o {
                out.push(*t);
            }
        }
        out
    };
    // A load's own fact is unusable when it reads the destination.
    let valid = |op: &IrOp, fact: &Fact| -> bool {
        match op {
            IrOp::Load { dst, .. } => !fact_temps(fact).contains(dst),
            _ => true,
        }
    };
    let mut fact_id: HashMap<Fact, usize> = HashMap::new();
    let mut facts: Vec<Fact> = Vec::new();
    for b in &f.blocks {
        for op in &b.ops {
            let Some(fact) = fact_of(op) else { continue };
            if !valid(op, &fact) {
                continue;
            }
            fact_id.entry(fact.clone()).or_insert_with(|| {
                facts.push(fact);
                facts.len() - 1
            });
        }
    }
    let n = facts.len();
    if n == 0 {
        return false;
    }
    let mut killed_by_temp: HashMap<Temp, Vec<usize>> = HashMap::new();
    for (id, fact) in facts.iter().enumerate() {
        for t in fact_temps(fact) {
            killed_by_temp.entry(t).or_default().push(id);
        }
    }
    // Does a store to `(sb, si)` kill the fact about `(fb, fi)`? Not
    // when both name the same base at distinct constant indexes.
    let store_kills = |sb: &MemBase, si: &Operand, (fb, fi, _): &Fact| -> bool {
        if !may_alias(sb, fb) {
            return false;
        }
        !(sb == fb && matches!((si, fi), (Operand::Const(a), Operand::Const(b)) if a != b))
    };
    let apply = |op: &IrOp, avail: &mut BitSet| {
        dataflow::for_each_write(op, |t| {
            for &id in killed_by_temp.get(&t).map_or(&[][..], |v| v) {
                avail.remove(id);
            }
        });
        match op {
            IrOp::Store { base, index, .. } => {
                for (id, fact) in facts.iter().enumerate() {
                    if store_kills(base, index, fact) {
                        avail.remove(id);
                    }
                }
            }
            IrOp::Call { .. } => {
                *avail = BitSet::new(n);
            }
            _ => {}
        }
        if let Some(fact) = fact_of(op) {
            if valid(op, &fact) {
                avail.insert(fact_id[&fact]);
            }
        }
    };
    // 2. Forward all-paths fixpoint (entry = ∅, meet = intersection).
    let nb = f.blocks.len();
    let rpo = teamplay_minic::cfg::reverse_postorder(f);
    let preds = teamplay_minic::cfg::predecessors(f);
    let mut avail_in: Vec<BitSet> = (0..nb).map(|_| BitSet::full(n)).collect();
    let mut avail_out: Vec<BitSet> = (0..nb).map(|_| BitSet::full(n)).collect();
    avail_in[0] = BitSet::new(n);
    loop {
        let mut changed = false;
        for &b in &rpo {
            if b != 0 {
                let mut inn = BitSet::full(n);
                for &p in &preds[b] {
                    inn.intersect_with(&avail_out[p]);
                }
                changed |= avail_in[b] != inn;
                avail_in[b] = inn;
            }
            let mut out = avail_in[b].clone();
            for op in &f.blocks[b].ops {
                apply(op, &mut out);
            }
            changed |= avail_out[b] != out;
            avail_out[b] = out;
        }
        if !changed {
            break;
        }
    }
    // 3. Replacement walk: a load whose cell has an available fact
    //    becomes a copy of the proven value. The transfer keeps the
    //    original load semantics (its own fact still holds — the copy
    //    leaves `dst` equal to the cell).
    let mut changed = false;
    for &b in &rpo {
        let mut cur = avail_in[b].clone();
        for oi in 0..f.blocks[b].ops.len() {
            let op = f.blocks[b].ops[oi].clone();
            if let IrOp::Load { dst, base, index } = &op {
                let known = cur.iter().find_map(|id| {
                    let (fb, fi, value) = &facts[id];
                    (fb == base && fi == index).then_some(*value)
                });
                if let Some(value) = known {
                    if value != Operand::Temp(*dst) {
                        f.blocks[b].ops[oi] = IrOp::Copy {
                            dst: *dst,
                            src: value,
                        };
                        changed = true;
                    }
                }
            }
            apply(&op, &mut cur);
        }
    }
    changed
}

/// Exact body-execution count of a canonical counted loop, or `None`
/// when the shape cannot be bounded exactly (mirrors
/// `teamplay_minic::loops::trip_count`, on IR-level facts).
fn exact_trips(init: i64, limit: i64, step: i64, cmp: BinOp) -> Option<i64> {
    let count = match (cmp, step > 0) {
        (BinOp::Lt, true) => (limit - init + step - 1).max(0) / step,
        (BinOp::Le, true) => (limit - init + step).max(0) / step,
        (BinOp::Gt, false) => (init - limit + (-step) - 1).max(0) / (-step),
        (BinOp::Ge, false) => (init - limit + (-step)).max(0) / (-step),
        _ => return None,
    };
    // The unrolled copies replay the original wrapping arithmetic, but
    // the *count* above is only exact if the induction value never wraps
    // on its monotone path from init to the final compare.
    let last = init + count * step;
    if last < i64::from(i32::MIN) || last > i64::from(i32::MAX) {
        return None;
    }
    Some(count)
}

/// A recognised canonical counted loop with a provable exact trip
/// count: shared between [`unroll_loops`] (which replays the body
/// `trips` times) and [`proven_loop_bounds`] (which surfaces `trips` as
/// a WCET flow fact even when the loop is *not* unrolled).
struct CountedLoop {
    /// Header block index.
    header: usize,
    /// The single body block.
    body: usize,
    /// The header's condition temp (`ct = i <cmp> limit`).
    ct: Temp,
    /// The induction temp.
    i: Temp,
    /// The header comparison.
    cmp: BinOp,
    /// The constant limit.
    limit: i32,
    /// The loop's exit block.
    exit: IrBlockId,
    /// Exact body-execution count, provable from IR constants.
    trips: i64,
}

/// How a counted-loop recogniser resolves an operand to a compile-time
/// constant at a given `(block, op index)` site. The classic resolver
/// accepts literal `Const` operands only; the value-graph resolver also
/// accepts temps whose def chain provably folds to a constant valid at
/// that site (see [`value_graph_loop_bounds`]).
type ConstResolver<'r> = &'r dyn Fn(&Operand, (usize, usize)) -> Option<i32>;

/// Recognise the canonical lowered counted-loop shape over natural loop
/// `l` — a two-block loop whose header's only op compares the induction
/// temp against a resolvable limit, whose body jumps straight back,
/// updates the induction temp exactly once by a resolvable step
/// (directly or through the lowered `t = i ± s; i = t` pair) and never
/// reads the condition temp, with a resolvable init in the unique entry
/// predecessor — and compute its exact trip count. Upper-bound
/// annotations are never trusted; only what `resolve` proves is.
fn recognise_counted_loop_with(
    f: &IrFunction,
    l: &teamplay_minic::cfg::NaturalLoop,
    resolve: ConstResolver<'_>,
) -> Option<CountedLoop> {
    if l.body.len() != 2 || l.header == 0 {
        return None;
    }
    let h = l.header;
    let &bb = l.body.iter().find(|b| **b != h).expect("two-block loop");
    // Header: exactly `ct = i <cmp> limit`, branching into the body.
    let [IrOp::Bin {
        op: cmp,
        dst: ct,
        a: Operand::Temp(i),
        b: limit_op,
    }] = &f.blocks[h].ops[..]
    else {
        return None;
    };
    let limit = resolve(limit_op, (h, 0))?;
    let (cmp, ct, i) = (*cmp, *ct, *i);
    let (taken, exit) = match &f.blocks[h].term {
        IrTerm::Branch {
            cond: Operand::Temp(bc),
            taken,
            fallthrough,
        } if *bc == ct => (*taken, *fallthrough),
        _ => return None,
    };
    if ct == i || taken.index() != bb || exit.index() == bb {
        return None;
    }
    if !matches!(f.blocks[bb].term, IrTerm::Jump(t) if t.index() == h) {
        return None;
    }
    // The body must not read the condition temp (it goes stale in the
    // unrolled form) and must update `i` exactly once by a constant
    // step — either directly or through the lowered `t = i + s; i = t`
    // pair.
    let body_ops = &f.blocks[bb].ops;
    if body_ops
        .iter()
        .any(|op| read_operands(op).contains(&Operand::Temp(ct)))
    {
        return None;
    }
    let writes_of = |needle: Temp| -> Vec<usize> {
        body_ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                let mut defs = Vec::new();
                written_temps(op, &mut defs);
                defs.contains(&needle)
            })
            .map(|(oi, _)| oi)
            .collect()
    };
    let const_step = |op: &IrOp, oi: usize, dst_want: Temp| -> Option<i64> {
        match op {
            IrOp::Bin {
                op: BinOp::Add,
                dst,
                a,
                b,
            } if *dst == dst_want => match (a, b) {
                (Operand::Temp(t), s) | (s, Operand::Temp(t)) if *t == i => {
                    Some(i64::from(resolve(s, (bb, oi))?))
                }
                _ => None,
            },
            IrOp::Bin {
                op: BinOp::Sub,
                dst,
                a: Operand::Temp(t),
                b: s,
            } if *dst == dst_want && *t == i => Some(-i64::from(resolve(s, (bb, oi))?)),
            _ => None,
        }
    };
    let i_writes = writes_of(i);
    let [iw] = i_writes[..] else { return None };
    let step = match const_step(&body_ops[iw], iw, i) {
        Some(s) => s,
        None => {
            // Lowered pair: `t = i ± s; ...; i = copy t`.
            let IrOp::Copy {
                src: Operand::Temp(t),
                ..
            } = &body_ops[iw]
            else {
                return None;
            };
            let t = *t;
            if t == i {
                return None;
            }
            let t_writes = writes_of(t);
            let [tw] = t_writes[..] else { return None };
            if tw >= iw {
                return None;
            }
            const_step(&body_ops[tw], tw, t)?
        }
    };
    if step == 0 {
        return None;
    }
    // Constant init: the unique outside predecessor's last write of `i`
    // must be a constant copy.
    let outside: Vec<usize> = (0..f.blocks.len())
        .filter(|p| !l.body.contains(p))
        .filter(|p| {
            f.blocks[*p]
                .term
                .successors()
                .iter()
                .any(|s| s.index() == h)
        })
        .collect();
    let [pre] = outside[..] else { return None };
    let init = f.blocks[pre]
        .ops
        .iter()
        .enumerate()
        .rev()
        .find_map(|(oi, op)| {
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            if !defs.contains(&i) {
                return None;
            }
            match op {
                IrOp::Copy { src, .. } => Some(resolve(src, (pre, oi)).map(i64::from)),
                _ => Some(None), // last write is not resolvable: give up
            }
        });
    let Some(Some(init)) = init else { return None };
    let trips = exact_trips(init, i64::from(limit), step, cmp)?;
    Some(CountedLoop {
        header: h,
        body: bb,
        ct,
        i,
        cmp,
        limit,
        exit,
        trips,
    })
}

/// [`recognise_counted_loop_with`] under the classic resolver: only
/// literal `Const` operands count (what `unroll` replays must be
/// syntactically constant).
fn recognise_counted_loop(
    f: &IrFunction,
    l: &teamplay_minic::cfg::NaturalLoop,
) -> Option<CountedLoop> {
    recognise_counted_loop_with(f, l, &|op, _| match op {
        Operand::Const(c) => Some(*c),
        Operand::Temp(_) => None,
    })
}

/// Loop bounds provable from the IR itself: the exact trip counts the
/// `unroll` recogniser computes, surfaced as flow facts for the WCET/
/// WCEC analyses even when the loop is *not* unrolled (trip count above
/// the unroll ceiling, or `unroll` absent from the pipeline). Codegen
/// intersects these with the annotation/inference bounds — a proven
/// count can only tighten, never replace, an annotated upper bound.
pub fn proven_loop_bounds(f: &IrFunction) -> Vec<(IrBlockId, u32)> {
    teamplay_minic::cfg::natural_loops(f)
        .iter()
        .filter_map(|l| {
            let c = recognise_counted_loop(f, l)?;
            let trips = u32::try_from(c.trips).ok()?;
            Some((IrBlockId(c.header as u32), trips))
        })
        .collect()
}

/// Loop bounds proven through the value graph: like
/// [`proven_loop_bounds`], but the limit, step and init of a counted
/// loop may be *temps* whose def chains fold to constants, provided the
/// chain is **well-anchored** — every temp on it has a single
/// definition whose operands' definitions dominate it, and the root def
/// dominates the site consuming the value. Anchoring is what makes a
/// folded constant valid at the consuming site on the non-SSA IR: each
/// chain def re-executes to the same constant on every path, so the
/// value observed at the site equals the folded one.
///
/// This is the value-graph → IPET flow-fact layer: bounds that only
/// become visible after constants flow through copies and arithmetic
/// (e.g. `n = 8; lim = n * 4` feeding a loop compare) tighten the WCET
/// exactly like syntactic bounds do.
pub fn value_graph_loop_bounds(f: &IrFunction) -> Vec<(IrBlockId, u32)> {
    let du = DefUse::build(f);
    let vg = ValueGraph::build(f, &du);
    let dom = DomTree::build(f);
    // Does the def at `d` strictly precede the site `s` on every path?
    let site_dominates = |d: (usize, usize), s: (usize, usize)| -> bool {
        if d.0 == s.0 {
            d.1 < s.1
        } else {
            dom.dominates(d.0, s.0)
        }
    };
    // Well-anchored temps, memoized; in-progress entries read `false`,
    // so cyclic chains (inductions) are refused.
    let anchored = std::cell::RefCell::new(HashMap::<Temp, bool>::new());
    fn well_anchored(
        t: Temp,
        du: &DefUse,
        vg: &ValueGraph,
        site_dominates: &dyn Fn((usize, usize), (usize, usize)) -> bool,
        memo: &std::cell::RefCell<HashMap<Temp, bool>>,
    ) -> bool {
        if let Some(&v) = memo.borrow().get(&t) {
            return v;
        }
        memo.borrow_mut().insert(t, false);
        let ok = du.single_def(t).is_some_and(|site| {
            vg.operand_temps(t).iter().all(|&u| {
                well_anchored(u, du, vg, site_dominates, memo)
                    && du.single_def(u).is_some_and(|us| site_dominates(us, site))
            })
        });
        memo.borrow_mut().insert(t, ok);
        ok
    }
    let resolve = |op: &Operand, site: (usize, usize)| -> Option<i32> {
        match op {
            Operand::Const(c) => Some(*c),
            Operand::Temp(t) => {
                let c = vg.const_of_temp(*t)?;
                let def = du.single_def(*t)?;
                (well_anchored(*t, &du, &vg, &site_dominates, &anchored)
                    && site_dominates(def, site))
                .then_some(c)
            }
        }
    };
    teamplay_minic::cfg::natural_loops(f)
        .iter()
        .filter_map(|l| {
            let c = recognise_counted_loop_with(f, l, &resolve)?;
            let trips = u32::try_from(c.trips).ok()?;
            Some((IrBlockId(c.header as u32), trips))
        })
        .collect()
}

/// Bound-aware full unrolling of constant-trip counted loops.
///
/// Recognises the canonical lowered shape (see
/// [`recognise_counted_loop`]), computes the *exact* trip count from the
/// IR constants, and replaces the loop with that many straight-line
/// copies of the body followed by one final compare (so the condition
/// temp and the induction temp leave the loop with exactly the values
/// the rolled form produced). The per-iteration compare + branch
/// disappear: WCET and energy drop, code size grows — the classic
/// unrolling trade-off the search can now weigh.
///
/// Upper-bound annotations are never trusted as trip counts; only loops
/// whose count is provable from the IR are touched, and only up to
/// `max_trips` iterations (with a hard op-growth cap).
///
/// Returns `true` if anything was unrolled.
pub fn unroll_loops(f: &mut IrFunction, max_trips: usize) -> bool {
    /// Op-growth cap per unrolled loop, whatever the parameter says.
    const MAX_UNROLLED_OPS: usize = 512;
    let mut changed = false;
    'restart: loop {
        let loops = teamplay_minic::cfg::natural_loops(f);
        for l in &loops {
            let Some(counted) = recognise_counted_loop(f, l) else {
                continue;
            };
            let CountedLoop {
                header: h,
                body: bb,
                ct,
                i,
                cmp,
                limit,
                exit,
                trips,
            } = counted;
            let body_ops = &f.blocks[bb].ops;
            let trips = match usize::try_from(trips) {
                Ok(t) if t <= max_trips => t,
                _ => continue,
            };
            if trips.saturating_mul(body_ops.len().max(1)) > MAX_UNROLLED_OPS {
                continue;
            }
            // Rewrite: the header becomes the straight-line unrolling.
            let body_clone = f.blocks[bb].ops.clone();
            let mut new_ops = Vec::with_capacity(trips * body_clone.len() + 1);
            for _ in 0..trips {
                new_ops.extend(body_clone.iter().cloned());
            }
            new_ops.push(IrOp::Bin {
                op: cmp,
                dst: ct,
                a: Operand::Temp(i),
                b: Operand::Const(limit),
            });
            f.blocks[h].ops = new_ops;
            f.blocks[h].term = IrTerm::Jump(exit);
            f.loop_bounds.remove(&IrBlockId(h as u32));
            changed = true;
            continue 'restart;
        }
        break;
    }
    if changed {
        remove_unreachable_blocks(f);
    }
    changed
}

/// Branch-cost-aware CFG straightening ahead of codegen.
///
/// The PG32 cost model charges every block terminator — an unconditional
/// branch costs cycles, energy and an encoded halfword regardless of
/// layout — so the pass *removes* terminators rather than shuffling
/// them: empty forwarding blocks are threaded past, single-predecessor
/// jump targets are merged into their predecessor, unreachable blocks
/// (e.g. left behind by constant-branch folding) are dropped, and the
/// survivors are renumbered into reverse postorder so hot fallthrough
/// paths stay contiguous for codegen. Blocks carrying loop bounds are
/// never threaded or merged away, keeping every flow fact anchored.
///
/// Returns `true` if anything changed.
pub fn block_layout(f: &mut IrFunction) -> bool {
    let mut changed = false;

    // 1. Thread empty forwarding blocks (chase chains, guard cycles).
    let resolve = |f: &IrFunction, start: IrBlockId| -> IrBlockId {
        let mut cur = start;
        let mut seen = vec![false; f.blocks.len()];
        loop {
            let b = &f.blocks[cur.index()];
            let IrTerm::Jump(next) = &b.term else {
                return cur;
            };
            if cur.index() == 0
                || !b.ops.is_empty()
                || f.loop_bounds.contains_key(&cur)
                || seen[cur.index()]
            {
                return cur;
            }
            seen[cur.index()] = true;
            cur = *next;
        }
    };
    for bi in 0..f.blocks.len() {
        let mut term = f.blocks[bi].term.clone();
        let mut rewired = false;
        {
            let mut thread = |t: &mut IrBlockId| {
                let dst = resolve(f, *t);
                if dst != *t {
                    *t = dst;
                    rewired = true;
                }
            };
            match &mut term {
                IrTerm::Jump(t) => thread(t),
                IrTerm::Branch {
                    taken, fallthrough, ..
                } => {
                    thread(taken);
                    thread(fallthrough);
                }
                IrTerm::Ret(_) => {}
            }
        }
        if rewired {
            f.blocks[bi].term = term;
            changed = true;
        }
    }

    // 2. Merge unconditional jumps to single-predecessor targets.
    loop {
        // Count edges from *reachable* blocks only, so dead jumpers left
        // behind by constant-branch folding don't pin their targets.
        let reachable = teamplay_minic::cfg::reverse_postorder(f);
        let mut preds = vec![0usize; f.blocks.len()];
        for &bi in &reachable {
            for s in f.blocks[bi].term.successors() {
                preds[s.index()] += 1;
            }
        }
        let merge = reachable.iter().find_map(|&a| match f.blocks[a].term {
            IrTerm::Jump(t)
                if t.index() != a
                    && t.index() != 0
                    && preds[t.index()] == 1
                    && !f.loop_bounds.contains_key(&t) =>
            {
                Some((a, t.index()))
            }
            _ => None,
        });
        let Some((a, b)) = merge else { break };
        let absorbed = std::mem::take(&mut f.blocks[b].ops);
        f.blocks[a].ops.extend(absorbed);
        f.blocks[a].term = f.blocks[b].term.clone();
        // `b` is now unreachable; step 3 reclaims it.
        changed = true;
    }

    // 3. Drop unreachable blocks.
    changed |= remove_unreachable_blocks(f);

    // 4. Renumber into reverse postorder (entry-first by construction).
    let rpo = teamplay_minic::cfg::reverse_postorder(f);
    debug_assert_eq!(
        rpo.len(),
        f.blocks.len(),
        "unreachable blocks already dropped"
    );
    if !rpo.iter().enumerate().all(|(new, old)| new == *old) {
        let keep = vec![true; f.blocks.len()];
        let mut remap = vec![u32::MAX; f.blocks.len()];
        for (new, old) in rpo.iter().enumerate() {
            remap[*old] = new as u32;
        }
        renumber_blocks(f, &keep, &remap);
        changed = true;
    }
    changed
}

// =====================================================================
// CFG utilities shared by the loop passes
// =====================================================================

/// Drop blocks unreachable from the entry, compacting ids and remapping
/// terminators and loop bounds. Returns `true` if anything was removed.
pub fn remove_unreachable_blocks(f: &mut IrFunction) -> bool {
    let reachable = teamplay_minic::cfg::reverse_postorder(f);
    if reachable.len() == f.blocks.len() {
        return false;
    }
    let mut keep = vec![false; f.blocks.len()];
    for b in &reachable {
        keep[*b] = true;
    }
    // Compact in index order so the entry stays block 0.
    let mut remap = vec![u32::MAX; f.blocks.len()];
    let mut next = 0u32;
    for (i, kept) in keep.iter().enumerate() {
        if *kept {
            remap[i] = next;
            next += 1;
        }
    }
    renumber_blocks(f, &keep, &remap);
    true
}

/// Apply a block renumbering: retain blocks with `keep[i]`, reindex via
/// `remap[old] = new`, and rewrite terminators and loop bounds. Every
/// retained terminator target must itself be retained.
fn renumber_blocks(f: &mut IrFunction, keep: &[bool], remap: &[u32]) {
    let old_blocks = std::mem::take(&mut f.blocks);
    let mut new_blocks: Vec<(u32, teamplay_minic::ir::IrBlock)> = old_blocks
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(i, b)| (remap[i], b))
        .collect();
    new_blocks.sort_by_key(|(new_id, _)| *new_id);
    let retarget = |t: IrBlockId| IrBlockId(remap[t.index()]);
    f.blocks = new_blocks
        .into_iter()
        .map(|(_, mut b)| {
            b.term = match b.term {
                IrTerm::Jump(t) => IrTerm::Jump(retarget(t)),
                IrTerm::Branch {
                    cond,
                    taken,
                    fallthrough,
                } => IrTerm::Branch {
                    cond,
                    taken: retarget(taken),
                    fallthrough: retarget(fallthrough),
                },
                ret => ret,
            };
            b
        })
        .collect();
    let old_bounds = std::mem::take(&mut f.loop_bounds);
    f.loop_bounds = old_bounds
        .into_iter()
        .filter(|(h, _)| keep[h.index()])
        .map(|(h, n)| (IrBlockId(remap[h.index()]), n))
        .collect();
}

// =====================================================================
// The Pass trait and its implementations
// =====================================================================

/// Which cached analyses stay valid after a pass reports a change.
/// Declared by [`Pass::preserves`]; the application core invalidates
/// exactly the complement, so a CFG-shape-preserving pass like `gvn`
/// keeps the dominator tree warm for the next pass in the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preserves {
    /// The dominator tree ([`DomTree`]) stays valid (no block added,
    /// removed, renumbered, and no terminator target changed).
    pub dominance: bool,
    /// Liveness sets ([`Liveness`]) stay valid.
    pub liveness: bool,
    /// Def-use chains ([`DefUse`]) stay valid.
    pub def_use: bool,
    /// The value graph ([`ValueGraph`]) stays valid.
    pub value_graph: bool,
}

impl Preserves {
    /// Nothing survives (the conservative default).
    pub const NONE: Preserves = Preserves {
        dominance: false,
        liveness: false,
        def_use: false,
        value_graph: false,
    };
    /// The CFG shape survives — op lists changed, so every op-derived
    /// analysis is stale, but the dominator tree is intact. Right for
    /// passes that rewrite ops in place and never touch terminators.
    pub const CFG: Preserves = Preserves {
        dominance: true,
        ..Preserves::NONE
    };
    /// Everything survives (a pass that reported a change without
    /// structurally editing the function — rare, but expressible).
    pub const ALL: Preserves = Preserves {
        dominance: true,
        liveness: true,
        def_use: true,
        value_graph: true,
    };
}

/// Lazily computed per-function analyses, cached inside [`PassContext`].
#[derive(Default)]
struct Analyses {
    dominance: Option<Rc<DomTree>>,
    liveness: Option<Rc<Liveness>>,
    def_use: Option<Rc<DefUse>>,
    value_graph: Option<Rc<ValueGraph>>,
}

/// Context a pass runs under: the up-front module snapshot plus a lazy
/// per-function cache of the dataflow analyses.
///
/// Analyses are computed on first request ([`PassContext::dominance`]
/// and friends), shared as `Rc` handles (so a pass can hold one while
/// mutating the function), and invalidated by the application core
/// according to each mutating pass's [`Pass::preserves`] declaration —
/// a pipeline of shape-preserving passes computes the dominator tree
/// once, not once per pass.
pub struct PassContext<'a> {
    /// Snapshot of every function body at pipeline start, by name.
    /// Inlining reads callee bodies from here; most passes ignore it.
    pub functions: &'a HashMap<String, IrFunction>,
    analyses: Analyses,
}

impl<'a> PassContext<'a> {
    /// A context over the given module snapshot, with an empty cache.
    pub fn new(functions: &'a HashMap<String, IrFunction>) -> PassContext<'a> {
        PassContext {
            functions,
            analyses: Analyses::default(),
        }
    }

    /// The dominator tree of `f`, computed on first request.
    pub fn dominance(&mut self, f: &IrFunction) -> Rc<DomTree> {
        self.analyses
            .dominance
            .get_or_insert_with(|| Rc::new(DomTree::build(f)))
            .clone()
    }

    /// The liveness sets of `f`, computed on first request.
    pub fn liveness(&mut self, f: &IrFunction) -> Rc<Liveness> {
        self.analyses
            .liveness
            .get_or_insert_with(|| Rc::new(Liveness::build(f)))
            .clone()
    }

    /// The def-use chains of `f`, computed on first request.
    pub fn def_use(&mut self, f: &IrFunction) -> Rc<DefUse> {
        self.analyses
            .def_use
            .get_or_insert_with(|| Rc::new(DefUse::build(f)))
            .clone()
    }

    /// The value graph of `f` (over its def-use chains), computed on
    /// first request.
    pub fn value_graph(&mut self, f: &IrFunction) -> Rc<ValueGraph> {
        if self.analyses.value_graph.is_none() {
            let du = self.def_use(f);
            self.analyses.value_graph = Some(Rc::new(ValueGraph::build(f, &du)));
        }
        self.analyses.value_graph.clone().expect("just inserted")
    }

    /// Drop every cached analysis the given declaration does not keep.
    pub fn invalidate(&mut self, keep: Preserves) {
        if !keep.dominance {
            self.analyses.dominance = None;
        }
        if !keep.liveness {
            self.analyses.liveness = None;
        }
        if !keep.def_use {
            self.analyses.def_use = None;
        }
        if !keep.value_graph {
            self.analyses.value_graph = None;
        }
    }

    /// Drop every cached analysis.
    pub fn invalidate_all(&mut self) {
        self.invalidate(Preserves::NONE);
    }
}

/// One optimisation unit, applicable per function.
///
/// Contract: `run` must be semantics-preserving under the reference
/// interpreter and must keep every loop bounded (flow facts survive) —
/// the differential test in `tests/pass_framework_differential.rs`
/// enforces both for every registered pass. A pass that reports a
/// change must not leave any analysis it declares
/// [`preserved`](Pass::preserves) stale: the application core only
/// invalidates the complement.
pub trait Pass {
    /// The registry name (stable, used by [`PassManager::from_str`]).
    fn name(&self) -> &str;

    /// Called by the manager before the first fixpoint round on each
    /// function; passes with per-function state (budgets, caches) reset
    /// here. The default does nothing.
    fn begin_function(&mut self, _f: &IrFunction) {}

    /// Which cached analyses survive this pass reporting a change. The
    /// conservative default is [`Preserves::NONE`]; shape-preserving
    /// passes override to keep the dominator tree warm.
    fn preserves(&self) -> Preserves {
        Preserves::NONE
    }

    /// Transform one function; return `true` if the IR changed. The
    /// context serves the module snapshot and the lazy analyses.
    fn run(&mut self, f: &mut IrFunction, cx: &mut PassContext<'_>) -> bool;
}

/// `const_fold`: constant folding + constant branch resolution.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConstFoldPass;

impl Pass for ConstFoldPass {
    fn name(&self) -> &str {
        "const_fold"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        const_fold(f)
    }
}

/// `copy_prop`: block-local copy propagation.
#[derive(Debug, Default, Clone, Copy)]
pub struct CopyPropPass;

impl Pass for CopyPropPass {
    fn name(&self) -> &str {
        "copy_prop"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        copy_propagate(f)
    }
}

/// `dce`: dead-code elimination.
#[derive(Debug, Default, Clone, Copy)]
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &str {
        "dce"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        dead_code_elim(f)
    }
}

/// `strength_reduce`: power-of-two multiply strength reduction.
#[derive(Debug, Default, Clone, Copy)]
pub struct StrengthReducePass;

impl Pass for StrengthReducePass {
    fn name(&self) -> &str {
        "strength_reduce"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        strength_reduce_mul(f, false)
    }
}

/// `mul_shift_add`: IR-level shift-add decomposition of small
/// multipliers (subsumes `strength_reduce`). Trades cycles for energy;
/// the presets instead use the register-resident codegen variant
/// ([`crate::codegen::CodegenOpts::mul_shift_add`]), which does not
/// inflate memory traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct MulShiftAddPass;

impl Pass for MulShiftAddPass {
    fn name(&self) -> &str {
        "mul_shift_add"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        strength_reduce_mul(f, true)
    }
}

/// `licm`: loop-invariant code motion into loop preheaders.
#[derive(Debug, Default, Clone, Copy)]
pub struct LicmPass;

impl Pass for LicmPass {
    fn name(&self) -> &str {
        "licm"
    }
    fn run(&mut self, f: &mut IrFunction, cx: &mut PassContext<'_>) -> bool {
        let mut changed = false;
        // Each hoist edits the CFG; re-pull (possibly warm) analyses
        // from the context per step and invalidate after every move.
        for _ in 0..64 {
            let dom = cx.dominance(f);
            let du = cx.def_use(f);
            if !licm_step(f, &dom, &du) {
                break;
            }
            cx.invalidate_all();
            changed = true;
        }
        changed
    }
}

/// `gvn`: dominator-scoped global value numbering (subsumes the
/// block-local `cse` across block boundaries).
#[derive(Debug, Default, Clone, Copy)]
pub struct GvnPass;

impl Pass for GvnPass {
    fn name(&self) -> &str {
        "gvn"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, cx: &mut PassContext<'_>) -> bool {
        let dom = cx.dominance(f);
        let du = cx.def_use(f);
        gvn_with(f, &dom, &du)
    }
}

/// `load_fwd`: store-to-load forwarding across block boundaries.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoadFwdPass;

impl Pass for LoadFwdPass {
    fn name(&self) -> &str {
        "load_fwd"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        load_fwd(f)
    }
}

/// `cse`: block-local common-subexpression elimination.
#[derive(Debug, Default, Clone, Copy)]
pub struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &str {
        "cse"
    }
    fn preserves(&self) -> Preserves {
        Preserves::CFG
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        local_cse(f)
    }
}

/// `unroll`: bound-aware full unrolling of constant-trip loops (the
/// parameter caps the trip count eligible for unrolling).
#[derive(Debug, Clone, Copy)]
pub struct UnrollPass {
    /// Maximum provable trip count that is fully unrolled.
    pub max_trips: usize,
}

impl UnrollPass {
    /// Default trip-count ceiling.
    pub const DEFAULT_MAX_TRIPS: usize = 8;

    /// An unroll pass with the given trip-count ceiling.
    pub fn new(max_trips: usize) -> UnrollPass {
        UnrollPass { max_trips }
    }
}

impl Pass for UnrollPass {
    fn name(&self) -> &str {
        "unroll"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        unroll_loops(f, self.max_trips)
    }
}

/// `block_layout`: CFG straightening (thread, merge, drop dead blocks,
/// reverse-postorder renumbering) ahead of codegen.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockLayoutPass;

impl Pass for BlockLayoutPass {
    fn name(&self) -> &str {
        "block_layout"
    }
    fn run(&mut self, f: &mut IrFunction, _cx: &mut PassContext<'_>) -> bool {
        block_layout(f)
    }
}

/// `inline`: callee inlining below a size threshold (the parameter).
/// The code-growth budget ([`MAX_INLINES_PER_FUNCTION`]) is shared
/// across all fixpoint rounds on one function.
#[derive(Debug, Clone, Copy)]
pub struct InlinePass {
    /// Maximum callee size (IR ops) eligible for inlining.
    pub threshold: usize,
    budget: usize,
}

impl InlinePass {
    /// An inline pass with the given callee-size threshold.
    pub fn new(threshold: usize) -> InlinePass {
        InlinePass {
            threshold,
            budget: MAX_INLINES_PER_FUNCTION,
        }
    }
}

impl Pass for InlinePass {
    fn name(&self) -> &str {
        "inline"
    }
    fn begin_function(&mut self, _f: &IrFunction) {
        self.budget = MAX_INLINES_PER_FUNCTION;
    }
    fn run(&mut self, f: &mut IrFunction, cx: &mut PassContext<'_>) -> bool {
        inline_with_budget(f, cx.functions, self.threshold, &mut self.budget)
    }
}

// =====================================================================
// Registry
// =====================================================================

/// Registry entry: how to name, document and construct a pass.
pub struct PassDescriptor {
    /// Stable pipeline name.
    pub name: &'static str,
    /// One-line description (for tooling / docs).
    pub summary: &'static str,
    /// Default parameter, for parameterised passes.
    pub default_param: Option<usize>,
    factory: fn(Option<usize>) -> Box<dyn Pass>,
}

impl PassDescriptor {
    /// Instantiate the pass with `param` (or its default).
    pub fn instantiate(&self, param: Option<usize>) -> Box<dyn Pass> {
        (self.factory)(param.or(self.default_param))
    }
}

/// Every registered pass. New passes: implement [`Pass`], add one line
/// here.
pub static REGISTRY: &[PassDescriptor] = &[
    PassDescriptor {
        name: "inline",
        summary: "inline callees up to a size threshold (param, IR ops)",
        default_param: Some(40),
        factory: |p| Box::new(InlinePass::new(p.unwrap_or(40))),
    },
    PassDescriptor {
        name: "const_fold",
        summary: "fold constants and resolve constant branches",
        default_param: None,
        factory: |_| Box::new(ConstFoldPass),
    },
    PassDescriptor {
        name: "copy_prop",
        summary: "propagate copies within blocks",
        default_param: None,
        factory: |_| Box::new(CopyPropPass),
    },
    PassDescriptor {
        name: "dce",
        summary: "remove pure operations whose results are never read",
        default_param: None,
        factory: |_| Box::new(DcePass),
    },
    PassDescriptor {
        name: "strength_reduce",
        summary: "rewrite power-of-two multiplies into shifts",
        default_param: None,
        factory: |_| Box::new(StrengthReducePass),
    },
    PassDescriptor {
        name: "mul_shift_add",
        summary: "decompose small multipliers into shift-add chains (energy ↓, cycles ↑)",
        default_param: None,
        factory: |_| Box::new(MulShiftAddPass),
    },
    PassDescriptor {
        name: "licm",
        summary: "hoist loop-invariant computations into loop preheaders",
        default_param: None,
        factory: |_| Box::new(LicmPass),
    },
    PassDescriptor {
        name: "cse",
        summary: "eliminate block-local common subexpressions",
        default_param: None,
        factory: |_| Box::new(CsePass),
    },
    PassDescriptor {
        name: "gvn",
        summary: "eliminate redundant expressions across blocks (dominator-scoped value numbering)",
        default_param: None,
        factory: |_| Box::new(GvnPass),
    },
    PassDescriptor {
        name: "load_fwd",
        summary: "forward stored values to later loads of the same cell across blocks",
        default_param: None,
        factory: |_| Box::new(LoadFwdPass),
    },
    PassDescriptor {
        name: "unroll",
        summary: "fully unroll constant-trip loops up to a trip ceiling (param)",
        default_param: Some(UnrollPass::DEFAULT_MAX_TRIPS),
        factory: |p| Box::new(UnrollPass::new(p.unwrap_or(UnrollPass::DEFAULT_MAX_TRIPS))),
    },
    PassDescriptor {
        name: "block_layout",
        summary: "straighten the CFG: thread, merge and drop blocks, reorder for codegen",
        default_param: None,
        factory: |_| Box::new(BlockLayoutPass),
    },
];

/// Look up a pass descriptor by registry name.
pub fn lookup_pass(name: &str) -> Option<&'static PassDescriptor> {
    REGISTRY.iter().find(|d| d.name == name)
}

// =====================================================================
// Pipelines
// =====================================================================

/// One pipeline element: a registry name plus an optional parameter
/// (rendered `name` or `name(param)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PassSpec {
    /// Registry name of the pass.
    pub name: String,
    /// Parameter (e.g. the inline threshold); `None` uses the default.
    pub param: Option<usize>,
}

impl PassSpec {
    /// A spec without a parameter.
    pub fn new(name: &str) -> PassSpec {
        PassSpec {
            name: name.to_string(),
            param: None,
        }
    }

    /// A spec with a parameter.
    pub fn with_param(name: &str, param: usize) -> PassSpec {
        PassSpec {
            name: name.to_string(),
            param: Some(param),
        }
    }
}

impl fmt::Display for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.param {
            Some(p) => write!(f, "{}({p})", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// An ordered, registry-backed pass pipeline — the optimisation genome's
/// phenotype, and the unit of configuration everywhere (presets, search
/// points, per-task variants).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pipeline {
    /// Passes in application order.
    pub passes: Vec<PassSpec>,
}

/// Pipeline construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A name that no registry entry carries.
    UnknownPass(String),
    /// A malformed element (bad parentheses / parameter).
    Malformed(String),
    /// A parameter given to a pass that takes none.
    UnexpectedParam(String),
    /// A [`PipelineCatalog::resolve`] spec that is neither a registered
    /// catalogue name nor a valid pipeline.
    UnknownName {
        /// The unresolved spec.
        spec: String,
        /// The nearest catalogue or pass name (edit distance ≤ 2), if
        /// one is close enough to be a plausible typo.
        nearest: Option<String>,
    },
}

/// Levenshtein distance, for near-miss pass-name suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

/// The registry name closest to `name`, if it is close enough
/// (edit distance ≤ 2) to be a plausible typo.
fn nearest_pass_name(name: &str) -> Option<&'static str> {
    REGISTRY
        .iter()
        .map(|d| (edit_distance(name, d.name), d.name))
        .filter(|(dist, _)| *dist <= 2)
        .min_by_key(|(dist, _)| *dist)
        .map(|(_, best)| best)
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownPass(name) => match nearest_pass_name(name) {
                Some(best) => write!(f, "unknown pass `{name}`; did you mean `{best}`?"),
                None => {
                    let known: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
                    write!(f, "unknown pass `{name}` (known: {})", known.join(", "))
                }
            },
            PipelineError::Malformed(el) => write!(f, "malformed pipeline element `{el}`"),
            PipelineError::UnexpectedParam(name) => {
                write!(f, "pass `{name}` takes no parameter")
            }
            PipelineError::UnknownName { spec, nearest } => match nearest {
                Some(best) => {
                    write!(
                        f,
                        "unknown pipeline or pass `{spec}`; did you mean `{best}`?"
                    )
                }
                None => write!(
                    f,
                    "unknown pipeline or pass `{spec}` (catalogue names and \
                     `pass,pass(param),…` lists are accepted)"
                ),
            },
        }
    }
}

impl std::error::Error for PipelineError {}

impl Pipeline {
    /// The empty pipeline (O0: no IR optimisation).
    pub fn o0() -> Pipeline {
        Pipeline::default()
    }

    /// Cleanup trio (the "traditional toolchain" baseline).
    pub fn o1() -> Pipeline {
        "const_fold,copy_prop,dce"
            .parse()
            .expect("preset pipeline is valid")
    }

    /// Balanced: moderate inlining plus strength reduction and cleanup.
    pub fn o2() -> Pipeline {
        "inline(40),strength_reduce,const_fold,copy_prop,dce"
            .parse()
            .expect("preset pipeline is valid")
    }

    /// Aggressive: large inline threshold, all speed levers — invariant
    /// hoisting and CSE after inlining, the cleanup trio, and CFG
    /// straightening last so codegen sees the final shape.
    pub fn o3() -> Pipeline {
        "inline(80),licm,cse,strength_reduce,const_fold,copy_prop,dce,block_layout"
            .parse()
            .expect("preset pipeline is valid")
    }

    /// Does the pipeline contain a pass with this registry name?
    pub fn contains(&self, name: &str) -> bool {
        self.passes.iter().any(|p| p.name == name)
    }

    /// The parameter of the first pass with this name, if any.
    pub fn param_of(&self, name: &str) -> Option<usize> {
        self.passes
            .iter()
            .find(|p| p.name == name)
            .and_then(|p| p.param)
    }

    /// Append a pass spec.
    pub fn push(&mut self, spec: PassSpec) {
        self.passes.push(spec);
    }

    /// Instantiate every pass against the registry.
    ///
    /// # Errors
    /// [`PipelineError::UnknownPass`] for names outside [`REGISTRY`].
    pub fn instantiate(&self) -> Result<Vec<Box<dyn Pass>>, PipelineError> {
        self.passes
            .iter()
            .map(|spec| {
                lookup_pass(&spec.name)
                    .map(|d| d.instantiate(spec.param))
                    .ok_or_else(|| PipelineError::UnknownPass(spec.name.clone()))
            })
            .collect()
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: Vec<String> = self.passes.iter().map(PassSpec::to_string).collect();
        write!(f, "{}", rendered.join(","))
    }
}

impl FromStr for Pipeline {
    type Err = PipelineError;

    /// Parse `"const_fold,dce"` / `"inline(40),dce"` style pipelines.
    /// Whitespace around elements is ignored; the empty string is the
    /// empty pipeline.
    fn from_str(s: &str) -> Result<Pipeline, PipelineError> {
        let mut passes = Vec::new();
        for raw in s.split(',') {
            let el = raw.trim();
            if el.is_empty() {
                if s.trim().is_empty() {
                    continue;
                }
                return Err(PipelineError::Malformed(raw.to_string()));
            }
            let (name, param) = match el.split_once('(') {
                None => (el, None),
                Some((name, rest)) => {
                    let arg = rest
                        .strip_suffix(')')
                        .ok_or_else(|| PipelineError::Malformed(el.to_string()))?;
                    let value: usize = arg
                        .trim()
                        .parse()
                        .map_err(|_| PipelineError::Malformed(el.to_string()))?;
                    (name.trim(), Some(value))
                }
            };
            let descriptor =
                lookup_pass(name).ok_or_else(|| PipelineError::UnknownPass(name.to_string()))?;
            if param.is_some() && descriptor.default_param.is_none() {
                return Err(PipelineError::UnexpectedParam(name.to_string()));
            }
            passes.push(PassSpec {
                name: name.to_string(),
                param,
            });
        }
        Ok(Pipeline { passes })
    }
}

// =====================================================================
// PipelineCatalog
// =====================================================================

/// A name → [`Pipeline`] catalogue, so layers above the compiler
/// (coordination, workflows, benches) select pipelines by *string* —
/// `"o2"`, `"camera_pill"`, or a literal pipeline like
/// `"licm,const_fold,dce"` — instead of passing preset structs around.
///
/// [`PipelineCatalog::builtin`] carries the generic optimisation levels;
/// applications register their tuned pipelines on top (see
/// `teamplay_apps::catalog`). [`PipelineCatalog::resolve`] falls back to
/// parsing the string as a pipeline, so every call-site accepts both
/// catalogue names and inline pass lists.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineCatalog {
    /// Registered `(name, pipeline)` entries, in registration order.
    entries: Vec<(String, Pipeline)>,
}

impl PipelineCatalog {
    /// An empty catalogue.
    pub fn new() -> PipelineCatalog {
        PipelineCatalog::default()
    }

    /// The generic optimisation levels (`o0`–`o3`).
    pub fn builtin() -> PipelineCatalog {
        let mut cat = PipelineCatalog::new();
        for (name, p) in [
            ("o0", Pipeline::o0()),
            ("o1", Pipeline::o1()),
            ("o2", Pipeline::o2()),
            ("o3", Pipeline::o3()),
        ] {
            cat.entries.push((name.to_string(), p));
        }
        cat
    }

    /// Register (or replace) a named pipeline, parsed from a string.
    ///
    /// # Errors
    /// [`PipelineError`] if the pipeline string does not parse.
    pub fn register(&mut self, name: &str, pipeline: &str) -> Result<(), PipelineError> {
        let parsed: Pipeline = pipeline.parse()?;
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = parsed,
            None => self.entries.push((name.to_string(), parsed)),
        }
        Ok(())
    }

    /// Look up a registered pipeline by name.
    pub fn get(&self, name: &str) -> Option<&Pipeline> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    /// Resolve `spec` as a catalogue name, falling back to parsing it as
    /// a literal pipeline string.
    ///
    /// # Errors
    /// [`PipelineError`] if `spec` is neither a registered name nor a
    /// valid pipeline string; a single unresolvable element reports
    /// [`PipelineError::UnknownName`] with the nearest catalogue (or
    /// registry) name, so a mistyped entry like `"camera_pil"` points
    /// back at `"camera_pill"` instead of at the pass registry.
    pub fn resolve(&self, spec: &str) -> Result<Pipeline, PipelineError> {
        if let Some(p) = self.get(spec) {
            return Ok(p.clone());
        }
        match spec.parse() {
            Ok(p) => Ok(p),
            // The whole spec is one unknown element: it may just as well
            // be a mistyped catalogue name — suggest across both
            // namespaces, nearest catalogue entry first.
            Err(PipelineError::UnknownPass(name)) if name == spec.trim() => {
                let nearest = self
                    .names()
                    .map(|n| (edit_distance(&name, n), n))
                    .filter(|(dist, _)| *dist <= 2)
                    .min_by_key(|(dist, _)| *dist)
                    .map(|(_, n)| n.to_string())
                    .or_else(|| nearest_pass_name(&name).map(str::to_string));
                Err(PipelineError::UnknownName {
                    spec: spec.to_string(),
                    nearest,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }
}

// =====================================================================
// Function-content keys (parallel-pass dedup)
// =====================================================================

/// A name-independent 128-bit content key of a function body: FNV-1a
/// over the serialized IR with the function's own `name` cleared.
///
/// Two functions with equal keys are indistinguishable to every pass:
/// call *operands* stay in the serialization, so bodies that call
/// different callees key differently, and the only name-sensitive pass
/// behaviour — inline's self-call guard — cannot diverge either. If a
/// body contains a call to its own enclosing function, that function is
/// recursive, and any *other* function with a byte-equal body calls the
/// same (recursive) callee — which inlining refuses for both callers.
/// Every other pass is a pure function of the body alone. The pooled
/// pass runners therefore optimise one representative per key and copy
/// its result to the duplicates.
pub fn function_content_key(f: &IrFunction) -> u128 {
    let mut body = f.clone();
    body.name = String::new();
    crate::store::hash_json(crate::store::fnv_offset(), &body)
}

/// Group item indices by a per-item key, preserving first-seen order:
/// `groups[k][0]` is the representative of group `k` (also used by the
/// batch front-end to dedup whole jobs).
pub(crate) fn group_indices_by_key<K: std::hash::Hash + Eq>(keys: Vec<K>) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut index_of: HashMap<K, usize> = HashMap::new();
    for (i, key) in keys.into_iter().enumerate() {
        match index_of.entry(key) {
            Entry::Occupied(slot) => groups[*slot.get()].push(i),
            Entry::Vacant(slot) => {
                slot.insert(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

// =====================================================================
// PassManager
// =====================================================================

/// Per-pass instrumentation collected by the manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassStats {
    /// Registry name.
    pub name: String,
    /// How often the pass ran (per function, per fixpoint round).
    pub invocations: usize,
    /// How many invocations reported a change.
    pub changes: usize,
}

/// Fresh zeroed per-pass stats aligned with a pipeline's order.
fn pipeline_stats(pipeline: &Pipeline) -> Vec<PassStats> {
    pipeline
        .passes
        .iter()
        .map(|spec| PassStats {
            name: spec.name.clone(),
            invocations: 0,
            changes: 0,
        })
        .collect()
}

/// Applies a [`Pipeline`] to modules/functions, iterating to fixpoint
/// (bounded) and recording per-pass [`PassStats`].
pub struct PassManager {
    pipeline: Pipeline,
    passes: Vec<Box<dyn Pass>>,
    stats: Vec<PassStats>,
    /// Fixpoint bound: maximum rounds of the full pipeline per function.
    pub max_rounds: usize,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("pipeline", &self.pipeline.to_string())
            .field("max_rounds", &self.max_rounds)
            .finish()
    }
}

impl PassManager {
    /// Default fixpoint bound (matches the historical cleanup-trio loop).
    pub const DEFAULT_MAX_ROUNDS: usize = 4;

    /// Build a manager for a pipeline.
    ///
    /// # Errors
    /// [`PipelineError`] if a pass does not resolve in the registry.
    pub fn new(pipeline: Pipeline) -> Result<PassManager, PipelineError> {
        let passes = pipeline.instantiate()?;
        let stats = pipeline_stats(&pipeline);
        Ok(PassManager {
            pipeline,
            passes,
            stats,
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
        })
    }

    /// Build a manager by parsing a pipeline string
    /// (`"const_fold,copy_prop,dce"`, `"inline(40),dce"` …).
    ///
    /// # Errors
    /// [`PipelineError`] on unknown names or malformed elements.
    #[allow(clippy::should_implement_trait)] // mirrors binaryen-style API; FromStr exists on Pipeline
    pub fn from_str(s: &str) -> Result<PassManager, PipelineError> {
        PassManager::new(s.parse()?)
    }

    /// O0: no IR optimisation.
    pub fn o0() -> PassManager {
        PassManager::new(Pipeline::o0()).expect("preset pipeline is valid")
    }

    /// O1: the cleanup trio.
    pub fn o1() -> PassManager {
        PassManager::new(Pipeline::o1()).expect("preset pipeline is valid")
    }

    /// O2: moderate inlining + strength reduction + cleanup.
    pub fn o2() -> PassManager {
        PassManager::new(Pipeline::o2()).expect("preset pipeline is valid")
    }

    /// O3: aggressive inlining + strength reduction + cleanup.
    pub fn o3() -> PassManager {
        PassManager::new(Pipeline::o3()).expect("preset pipeline is valid")
    }

    /// The managed pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Per-pass instrumentation, aligned with the pipeline order.
    pub fn stats(&self) -> &[PassStats] {
        &self.stats
    }

    /// Run the pipeline over every function of a module. Callee bodies
    /// for inlining are snapshotted once, up front. Returns `true` if
    /// anything changed.
    ///
    /// Sequential and dedup-free (the per-genome search hot path, where
    /// hashing every function would cost more than it saves);
    /// [`PassManager::run_on`] is the fan-out variant with byte-identical
    /// module output.
    pub fn run(&mut self, module: &mut IrModule) -> bool {
        let snapshot = snapshot_functions(module);
        let mut changed = false;
        for f in &mut module.functions {
            changed |= Self::run_pipeline(
                &mut self.passes,
                &mut self.stats,
                self.max_rounds,
                f,
                &snapshot,
            );
        }
        changed
    }

    /// Run the pipeline over every function of a module, fanning
    /// individual functions across `pool` after deduplicating identical
    /// bodies by [`function_content_key`]: each unique body runs the
    /// pipeline exactly once, on fresh pass instances, and duplicates
    /// copy the result (keeping their own names).
    ///
    /// Module output is byte-identical to [`PassManager::run`] at any
    /// pool width — work items are formed deterministically before the
    /// fan-out, `par_map` preserves index order, and every pass is a
    /// pure function of the body and the up-front snapshot. Only the
    /// [`PassManager::stats`] accounting differs from `run`: duplicates
    /// contribute no invocations here, because they never run a pass.
    pub fn run_on(&mut self, pool: &Pool, module: &mut IrModule) -> bool {
        let snapshot = snapshot_functions(module);
        let groups = group_indices_by_key(
            module
                .functions
                .iter()
                .map(function_content_key)
                .collect::<Vec<_>>(),
        );
        let reps: Vec<&IrFunction> = groups.iter().map(|g| &module.functions[g[0]]).collect();
        let pipeline = &self.pipeline;
        let max_rounds = self.max_rounds;
        let results = pool.par_map(&reps, |_, rep| {
            let mut f = (*rep).clone();
            // `Box<dyn Pass>` is not `Sync`, so every work item
            // instantiates its own passes; `begin_function` resets all
            // per-function pass state either way.
            let mut passes = pipeline
                .instantiate()
                .expect("pipeline validated at construction");
            let mut stats = pipeline_stats(pipeline);
            let changed =
                Self::run_pipeline(&mut passes, &mut stats, max_rounds, &mut f, &snapshot);
            (f, stats, changed)
        });
        let mut changed = false;
        for (group, (body, stats, group_changed)) in groups.iter().zip(results) {
            for (stat, item) in self.stats.iter_mut().zip(&stats) {
                stat.invocations += item.invocations;
                stat.changes += item.changes;
            }
            changed |= group_changed;
            for &i in group {
                let name = std::mem::take(&mut module.functions[i].name);
                module.functions[i] = body.clone();
                module.functions[i].name = name;
            }
        }
        changed
    }

    /// Run the pipeline over one named function of a module (per-task
    /// variant builds). Returns `true` if anything changed; `false` for
    /// unknown names.
    pub fn run_function(&mut self, module: &mut IrModule, name: &str) -> bool {
        let snapshot = snapshot_functions(module);
        let Some(f) = module.functions.iter_mut().find(|f| f.name == name) else {
            return false;
        };
        Self::run_pipeline(
            &mut self.passes,
            &mut self.stats,
            self.max_rounds,
            f,
            &snapshot,
        )
    }

    /// The single application core every entry point funnels through
    /// ([`PassManager::run`], [`PassManager::run_on`],
    /// [`PassManager::run_function`], and phase 2 of
    /// [`run_passes_per_function_on`]): builds one [`PassContext`] for
    /// the function, iterates the pipeline to (bounded) fixpoint, and
    /// after every change invalidates exactly the analyses the pass did
    /// not declare [`preserved`](Pass::preserves).
    fn run_pipeline(
        passes: &mut [Box<dyn Pass>],
        stats: &mut [PassStats],
        max_rounds: usize,
        f: &mut IrFunction,
        functions: &HashMap<String, IrFunction>,
    ) -> bool {
        let mut cx = PassContext::new(functions);
        let mut changed = false;
        for pass in passes.iter_mut() {
            pass.begin_function(f);
        }
        for _ in 0..max_rounds {
            let mut round_changed = false;
            for (pass, stat) in passes.iter_mut().zip(stats.iter_mut()) {
                let pass_changed = pass.run(f, &mut cx);
                stat.invocations += 1;
                if pass_changed {
                    stat.changes += 1;
                    round_changed = true;
                    cx.invalidate(pass.preserves());
                }
            }
            changed |= round_changed;
            if !round_changed {
                break;
            }
        }
        changed
    }
}

// =====================================================================
// Config-level drivers
// =====================================================================

/// Run a configuration's pipeline over a module.
///
/// # Panics
/// Panics if the pipeline names a pass outside the registry —
/// configurations built through [`Pipeline`] parsing, the presets or the
/// genome decoder are always valid.
pub fn run_passes(module: &mut IrModule, config: &CompilerConfig) {
    let mut pm = PassManager::new(config.pipeline.clone())
        .unwrap_or_else(|e| panic!("invalid configured pipeline: {e}"));
    pm.run(module);
}

/// Run per-function pass pipelines: each function is optimised under its
/// own configuration (the multi-version final build, where every task
/// keeps the Pareto variant the coordination layer selected for it).
/// Functions without an entry in `configs` use `default`.
///
/// Inlining runs as a first phase across all callers, against a single
/// up-front body snapshot — before any cleanup touches a callee:
/// callers then inline the same pristine bodies the whole-module
/// pipeline saw when the variant was measured, keeping the final build
/// faithful to the selected Pareto metrics.
///
/// # Panics
/// As [`run_passes`], for invalid pipelines.
pub fn run_passes_per_function(
    module: &mut IrModule,
    configs: &HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) {
    run_passes_per_function_on(&Pool::new(1), module, configs, default);
}

/// [`run_passes_per_function`] on an explicit pool: functions are
/// deduplicated by ([`function_content_key`], configuration) — each
/// unique pair runs its two-phase pipeline exactly once — and the
/// unique work items fan out across `pool`.
///
/// Byte-identical to the sequential runner at any pool width: both
/// phases of one function are pure in (its own body, the shared
/// up-front snapshot, its configuration). Phase 1 reads only the
/// snapshot, and no phase-2 pass reads other functions (inlining is the
/// sole snapshot consumer and runs entirely in phase 1), so fusing the
/// phases per work item cannot observe another item's output.
///
/// # Panics
/// As [`run_passes`], for invalid pipelines.
pub fn run_passes_per_function_on(
    pool: &Pool,
    module: &mut IrModule,
    configs: &HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) {
    let snapshot = snapshot_functions(module);
    let config_of = |f: &IrFunction| -> &CompilerConfig { configs.get(&f.name).unwrap_or(default) };
    let groups = group_indices_by_key(
        module
            .functions
            .iter()
            .map(|f| (function_content_key(f), config_of(f)))
            .collect::<Vec<_>>(),
    );
    let reps: Vec<(&IrFunction, &CompilerConfig)> = groups
        .iter()
        .map(|g| {
            let f = &module.functions[g[0]];
            (f, config_of(f))
        })
        .collect();
    let results = pool.par_map(&reps, |_, &(rep, config)| {
        let mut f = rep.clone();
        // Phase 1: inlining, in pipeline order, against the shared
        // pre-pass snapshot — callers inline the same pristine bodies
        // the whole-module pipeline saw when the variant was measured.
        for spec in &config.pipeline.passes {
            if spec.name == "inline" {
                let threshold = spec
                    .param
                    .or_else(|| lookup_pass("inline").and_then(|d| d.default_param))
                    .unwrap_or(40);
                inline_with_snapshot(&mut f, &snapshot, threshold);
            }
        }
        // Phase 2: the remaining pipeline, to fixpoint. The snapshot
        // context is inert here — inline is filtered out and no other
        // pass reads `PassContext::functions`.
        let rest = Pipeline {
            passes: config
                .pipeline
                .passes
                .iter()
                .filter(|spec| spec.name != "inline")
                .cloned()
                .collect(),
        };
        let mut passes = rest
            .instantiate()
            .unwrap_or_else(|e| panic!("invalid configured pipeline: {e}"));
        let mut stats = pipeline_stats(&rest);
        PassManager::run_pipeline(
            &mut passes,
            &mut stats,
            PassManager::DEFAULT_MAX_ROUNDS,
            &mut f,
            &snapshot,
        );
        f
    });
    for (group, body) in groups.iter().zip(results) {
        for &i in group {
            let name = std::mem::take(&mut module.functions[i].name);
            module.functions[i] = body.clone();
            module.functions[i].name = name;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_minic::interp::RecordingPorts;
    use teamplay_minic::ir::exec_module;

    fn ir_of(src: &str) -> IrModule {
        compile_to_ir(src).expect("front-end")
    }

    fn run_ir(module: &IrModule, func: &str, args: &[i32]) -> Option<i32> {
        let mut ports = RecordingPorts::new();
        exec_module(module, func, args, &mut ports, 10_000_000).expect("run")
    }

    fn op_total(module: &IrModule) -> usize {
        module
            .functions
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.ops.len()).sum::<usize>())
            .sum()
    }

    #[test]
    fn const_fold_collapses_arithmetic() {
        let mut m = ir_of("int f() { return (2 + 3) * 4 - 6 / 2; }");
        let f = m.function_mut("f").expect("f");
        assert!(const_fold(f));
        assert_eq!(run_ir(&m, "f", &[]), Some(17));
    }

    #[test]
    fn const_fold_resolves_constant_branches() {
        let mut m = ir_of("int f() { if (1 < 2) { return 10; } return 20; }");
        let f = m.function_mut("f").expect("f");
        const_fold(f);
        // At least one branch terminator should have become a jump.
        let jumps = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, IrTerm::Jump(_)))
            .count();
        assert!(jumps > 0);
        assert_eq!(run_ir(&m, "f", &[]), Some(10));
    }

    #[test]
    fn dce_removes_unused_computation() {
        let mut m = ir_of("int f(int x) { int unused = x * 37; return x + 1; }");
        let before = op_total(&m);
        let f = m.function_mut("f").expect("f");
        assert!(dead_code_elim(f));
        assert!(op_total(&m) < before);
        assert_eq!(run_ir(&m, "f", &[4]), Some(5));
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut m = ir_of(
            "int g;
             void set(int v) { g = v; return; }
             int f(int x) { set(x); __out(1, x); return g; }",
        );
        let f = m.function_mut("f").expect("f");
        dead_code_elim(f);
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. } | IrOp::Out { .. }))
            .count();
        assert_eq!(calls, 2, "calls and port writes must survive DCE");
    }

    #[test]
    fn copy_prop_then_dce_shrinks_chains() {
        let mut m = ir_of("int f(int x) { int a = x; int b = a; int c = b; return c; }");
        let f = m.function_mut("f").expect("f");
        copy_propagate(f);
        dead_code_elim(f);
        let remaining: usize = f.blocks.iter().map(|b| b.ops.len()).sum();
        assert!(
            remaining <= 1,
            "copy chain should collapse, {remaining} ops left"
        );
        assert_eq!(run_ir(&m, "f", &[9]), Some(9));
    }

    #[test]
    fn strength_reduction_pow2_becomes_shift() {
        let mut m = ir_of("int f(int x) { return x * 8; }");
        let f = m.function_mut("f").expect("f");
        assert!(strength_reduce_mul(f, false));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        for x in [-5, 0, 7, i32::MAX / 4] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x.wrapping_mul(8)));
        }
    }

    #[test]
    fn strength_reduction_shift_add_is_exact() {
        let mut m = ir_of("int f(int x) { return x * 10; }");
        let f = m.function_mut("f").expect("f");
        assert!(strength_reduce_mul(f, true));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        for x in [-5, 0, 7, 123_456_789, i32::MIN] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x.wrapping_mul(10)));
        }
    }

    #[test]
    fn strength_reduction_leaves_dense_constants() {
        // 0xEF has 7 set bits — not worth a shift-add chain.
        let mut m = ir_of("int f(int x) { return x * 239; }");
        let f = m.function_mut("f").expect("f");
        strength_reduce_mul(f, true);
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(has_mul, "dense multiplier should stay a mul");
    }

    #[test]
    fn inline_replaces_call_and_preserves_semantics() {
        let src = "int sq(int v) { return v * v; }
                   int f(int x) { return sq(x) + sq(x + 1); }";
        let mut m = ir_of(src);
        assert!(inline_functions(&mut m, 100));
        m.validate().expect("valid after inline");
        let f = m.function("f").expect("f");
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. }))
            .count();
        assert_eq!(calls, 0, "both call sites should be inlined");
        for x in [0, 3, -7] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x * x + (x + 1) * (x + 1)));
        }
    }

    #[test]
    fn inline_handles_array_params_and_loop_bounds() {
        let src = "int acc(int a[], int n) {
                       int s = 0;
                       for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; }
                       return s + n;
                   }
                   int buf[8] = {1,2,3,4,5,6,7,8};
                   int f(int n) { int loc[8]; loc[0] = 100; return acc(buf, n) + acc(loc, n); }";
        let mut m = ir_of(src);
        let bounds_before: usize = m.functions.iter().map(|f| f.loop_bounds.len()).sum();
        assert!(bounds_before >= 1);
        assert!(inline_functions(&mut m, 100));
        m.validate().expect("valid after inline");
        let f = m.function("f").expect("f");
        assert_eq!(
            f.loop_bounds.len(),
            2,
            "both inlined loops must carry their bounds"
        );
        assert_eq!(run_ir(&m, "f", &[5]), Some(36 + 5 + 100 + 5));
    }

    #[test]
    fn inline_skips_recursive_functions() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
                   int f(int n) { return fact(n); }";
        let mut m = ir_of(src);
        inline_functions(&mut m, 1000);
        let f = m.function("f").expect("f");
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. }))
            .count();
        assert_eq!(calls, 1, "recursive callee must not be inlined");
        assert_eq!(run_ir(&m, "f", &[5]), Some(120));
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let src = "int mac(int a, int b, int c) { return a * b + c; }
                   int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 6; i = i + 1) { s = mac(x, i, s); }
                       return s * 12;
                   }";
        let reference = ir_of(src);
        let expected = run_ir(&reference, "f", &[7]);
        let mut m = ir_of(src);
        let config = CompilerConfig {
            pipeline: "inline(50),mul_shift_add,const_fold,copy_prop,dce"
                .parse()
                .expect("pipeline"),
            mul_shift_add: true,
            pinned_regs: 4,
        };
        run_passes(&mut m, &config);
        m.validate().expect("valid after pipeline");
        assert_eq!(run_ir(&m, "f", &[7]), expected);
    }

    // --- licm ------------------------------------------------------

    #[test]
    fn licm_hoists_invariant_multiply_out_of_the_loop() {
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 10; i = i + 1) { s = s + x * 7 + i; }
                       return s;
                   }";
        let reference = ir_of(src);
        let mut m = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert!(licm(f), "x * 7 is loop-invariant");
        m.validate().expect("valid after licm");
        // The multiply left every loop body.
        let f = m.function("f").expect("f");
        let loops = teamplay_minic::cfg::natural_loops(f);
        assert!(!loops.is_empty());
        for l in &loops {
            for &bi in &l.body {
                assert!(
                    !f.blocks[bi]
                        .ops
                        .iter()
                        .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. })),
                    "multiply must be hoisted out of block {bi}"
                );
            }
        }
        for x in [0, 3, -9] {
            assert_eq!(run_ir(&m, "f", &[x]), run_ir(&reference, "f", &[x]));
        }
    }

    #[test]
    fn licm_shrinks_the_wcet_bound() {
        use teamplay_isa::CycleModel;
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 32; i = i + 1) { s = s + (x * 3) / 5; }
                       return s;
                   }";
        let wcet = |m: &IrModule| {
            let p = crate::codegen::generate_program(m, crate::codegen::CodegenOpts::default())
                .expect("codegen");
            teamplay_wcet::analyze_program(&p, &CycleModel::pg32())
                .expect("analysable")
                .wcet_cycles("f")
                .expect("bounded")
        };
        let mut m = ir_of(src);
        let before = wcet(&m);
        assert!(licm(m.function_mut("f").expect("f")));
        let after = wcet(&m);
        assert!(
            after < before,
            "hoisting must shrink the bound: {after} vs {before}"
        );
    }

    #[test]
    fn licm_preserves_zero_trip_loops_and_multi_def_temps() {
        // `t` has two definitions (init + loop) so its copy must stay in
        // the loop; with a zero-trip loop the post-loop read of `t` then
        // still sees the initial 0.
        let src = "int f(int x) {
                       int s = 0;
                       int t = 0;
                       for (int i = 0; i < 0; i = i + 1) { t = x * 3; s = s + t; }
                       return s + t + 1;
                   }";
        let mut m = ir_of(src);
        licm(m.function_mut("f").expect("f"));
        m.validate().expect("valid after licm");
        assert_eq!(
            run_ir(&m, "f", &[50]),
            Some(1),
            "zero-trip loop leaves t at 0"
        );
    }

    // --- cse -------------------------------------------------------

    fn count_matching(f: &IrFunction, pred: impl Fn(&IrOp) -> bool) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| pred(o))
            .count()
    }

    #[test]
    fn cse_reuses_repeated_and_commuted_expressions() {
        let mut m = ir_of("int f(int x, int y) { return (x * y) + (y * x); }");
        let f = m.function_mut("f").expect("f");
        assert!(local_cse(f));
        assert_eq!(
            count_matching(f, |o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. })),
            1,
            "commuted product must be shared"
        );
        assert_eq!(run_ir(&m, "f", &[7, -3]), Some(2 * 7 * -3));
    }

    #[test]
    fn cse_shares_loads_but_respects_stores() {
        let src = "int g[4];
                   int f(int i) {
                       int a = g[1] + g[1];
                       g[1] = a;
                       int b = g[1];
                       return a + b + i;
                   }";
        let mut m = ir_of(src);
        let reference = ir_of(src);
        let f = m.function_mut("f").expect("f");
        let loads_before = count_matching(f, |o| matches!(o, IrOp::Load { .. }));
        assert!(local_cse(f));
        let loads_after = count_matching(f, |o| matches!(o, IrOp::Load { .. }));
        // The duplicated pre-store load collapses; the post-store load
        // survives the invalidation.
        assert_eq!(
            loads_before - loads_after,
            1,
            "exactly the safe load is shared"
        );
        assert_eq!(run_ir(&m, "f", &[5]), run_ir(&reference, "f", &[5]));
    }

    #[test]
    fn cse_replacement_copy_still_invalidates_its_destination() {
        // Non-SSA regression: when `t2 = a+1` is rewritten into a copy
        // of the earlier `a+1`, the *write* to t2 must still evict the
        // stale `(a+5) → t2` entry — otherwise the later `t4 = a+5`
        // becomes a copy of the redefined t2. Multi-def temps like this
        // come straight out of `unroll_loops`' cloned bodies, and the
        // permutation genome can order `unroll` before `cse`.
        use teamplay_minic::ir::{IrBlock, IrParam};
        let a = Temp(0);
        let (t1, t2, t3, t4) = (Temp(1), Temp(2), Temp(3), Temp(4));
        let add = |dst, c| IrOp::Bin {
            op: BinOp::Add,
            dst,
            a: Operand::Temp(a),
            b: Operand::Const(c),
        };
        let f = IrFunction {
            name: "f".into(),
            params: vec![IrParam {
                name: "a".into(),
                is_array: false,
                temp: a,
            }],
            returns_value: true,
            blocks: vec![IrBlock {
                ops: vec![
                    add(t1, 1),
                    add(t2, 5),
                    IrOp::Bin {
                        op: BinOp::Mul,
                        dst: t3,
                        a: Operand::Temp(t2),
                        b: Operand::Const(3),
                    },
                    add(t2, 1),
                    add(t4, 5),
                ],
                term: IrTerm::Ret(Some(Operand::Temp(t4))),
            }],
            temp_count: 5,
            local_arrays: vec![],
            loop_bounds: HashMap::new(),
            annotations: vec![],
        };
        let module = IrModule {
            functions: vec![f],
            globals: vec![],
        };
        let expected = run_ir(&module, "f", &[10]);
        assert_eq!(expected, Some(15));
        let mut m = module.clone();
        assert!(local_cse(m.function_mut("f").expect("f")));
        m.validate().expect("valid after cse");
        assert_eq!(run_ir(&m, "f", &[10]), expected);
    }

    #[test]
    fn cse_does_not_key_on_clobbered_operands() {
        // x + 1 recomputed after x changed: must NOT be shared.
        let src = "int f(int x) { int a = x + 1; x = x + 1; int b = x + 1; return a * 100 + b; }";
        let mut m = ir_of(src);
        let f = m.function_mut("f").expect("f");
        local_cse(f);
        assert_eq!(run_ir(&m, "f", &[4]), Some(5 * 100 + 6));
    }

    // --- gvn -------------------------------------------------------

    #[test]
    fn gvn_shares_expressions_across_blocks() {
        let src = "int f(int x, int y) {
                       int a = x * y;
                       int b = 2;
                       if (x > 0) { b = x * y + 1; }
                       return a + b + x * y;
                   }";
        let mut m = ir_of(src);
        let reference = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert!(gvn(f));
        assert_eq!(
            count_matching(f, |o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. })),
            1,
            "the dominating product is the only one left"
        );
        m.validate().expect("valid after gvn");
        for args in [[3, 4], [-3, 4], [0, 9]] {
            assert_eq!(run_ir(&m, "f", &args), run_ir(&reference, "f", &args));
        }
    }

    #[test]
    fn gvn_respects_redefinitions_across_paths() {
        // `x + 1` recomputed after a path that may change x: the fact
        // dies at the join (meet = intersection), so no sharing.
        let src = "int f(int x) {
                       int a = x + 1;
                       if (x > 0) { x = x + 1; }
                       int b = x + 1;
                       return a * 100 + b;
                   }";
        let mut m = ir_of(src);
        let reference = ir_of(src);
        gvn(m.function_mut("f").expect("f"));
        m.validate().expect("valid after gvn");
        assert_eq!(run_ir(&m, "f", &[4]), Some(5 * 100 + 6));
        assert_eq!(run_ir(&m, "f", &[-4]), run_ir(&reference, "f", &[-4]));
    }

    // --- load_fwd --------------------------------------------------

    #[test]
    fn load_fwd_forwards_stores_to_loads_across_blocks() {
        let src = "int g[4];
                   int f(int x) {
                       g[0] = x;
                       int b = 1;
                       if (x > 0) { b = g[0]; }
                       return b + g[0];
                   }";
        let mut m = ir_of(src);
        let reference = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert!(load_fwd(f));
        assert_eq!(
            count_matching(f, |o| matches!(o, IrOp::Load { .. })),
            0,
            "every load of g[0] sees the dominating store's value"
        );
        m.validate().expect("valid after load_fwd");
        for args in [[5], [-5]] {
            assert_eq!(run_ir(&m, "f", &args), run_ir(&reference, "f", &args));
        }
    }

    #[test]
    fn load_fwd_respects_aliasing_stores_and_calls() {
        let src = "int g[4];
                   int h[4];
                   int set(int v) { g[1] = v; return 0; }
                   int f(int x) {
                       g[0] = x;
                       h[2] = 7;
                       int a = g[0];
                       g[1] = 9;
                       int b = g[0];
                       int dummy = set(3);
                       int c = g[0];
                       return a + b + c + dummy;
                   }";
        let mut m = ir_of(src);
        let reference = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert!(load_fwd(f));
        // `a` and `b` forward (distinct global / distinct constant
        // index don't kill); `c` reloads after the call.
        assert_eq!(
            count_matching(f, |o| matches!(o, IrOp::Load { .. })),
            1,
            "only the post-call load survives"
        );
        m.validate().expect("valid after load_fwd");
        assert_eq!(run_ir(&m, "f", &[5]), run_ir(&reference, "f", &[5]));
    }

    #[test]
    fn licm_hoists_multi_def_invariants_observed_only_inside() {
        // The destination has a second (dead) definition before the
        // loop — the old single-static-definition rule refused this;
        // the dominator-tree rule hoists because every read of `t`
        // sits inside the loop, dominated by the in-loop def.
        let src = "int f(int n, int c) {
                       int s = 0;
                       int t = 9;
                       int i = 0;
                       while (i < n) { t = c * 3; s = s + t; i = i + 1; }
                       return s;
                   }";
        let mut m = ir_of(src);
        let reference = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert!(licm(f), "the invariant multiply hoists");
        for l in teamplay_minic::cfg::natural_loops(f) {
            for bi in &l.body {
                assert!(
                    !f.blocks[*bi]
                        .ops
                        .iter()
                        .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. })),
                    "no multiply left inside the loop"
                );
            }
        }
        m.validate().expect("valid after licm");
        for args in [[3, 5], [0, 5]] {
            assert_eq!(run_ir(&m, "f", &args), run_ir(&reference, "f", &args));
        }
    }

    // --- value-graph loop bounds -----------------------------------

    fn counted_loop_ir(entry_ops: Vec<IrOp>) -> IrModule {
        use teamplay_minic::ir::IrBlock;
        let (i, ct) = (Temp(2), Temp(3));
        let f = IrFunction {
            name: "f".into(),
            params: vec![],
            returns_value: true,
            blocks: vec![
                IrBlock {
                    ops: entry_ops,
                    term: IrTerm::Jump(IrBlockId(1)),
                },
                IrBlock {
                    ops: vec![IrOp::Bin {
                        op: BinOp::Lt,
                        dst: ct,
                        a: Operand::Temp(i),
                        b: Operand::Temp(Temp(1)),
                    }],
                    term: IrTerm::Branch {
                        cond: Operand::Temp(ct),
                        taken: IrBlockId(2),
                        fallthrough: IrBlockId(3),
                    },
                },
                IrBlock {
                    ops: vec![IrOp::Bin {
                        op: BinOp::Add,
                        dst: i,
                        a: Operand::Temp(i),
                        b: Operand::Const(1),
                    }],
                    term: IrTerm::Jump(IrBlockId(1)),
                },
                IrBlock {
                    ops: vec![],
                    term: IrTerm::Ret(Some(Operand::Const(0))),
                },
            ],
            temp_count: 4,
            local_arrays: vec![],
            loop_bounds: HashMap::new(),
            annotations: vec![],
        };
        IrModule {
            functions: vec![f],
            globals: vec![],
        }
    }

    #[test]
    fn value_graph_bounds_resolve_computed_limits() {
        // limit = u + 1 with u = 9 defined *before* it: well-anchored,
        // folds to 10 — a bound the syntactic prover cannot see.
        let (u, t, i) = (Temp(0), Temp(1), Temp(2));
        let m = counted_loop_ir(vec![
            IrOp::Copy {
                dst: u,
                src: Operand::Const(9),
            },
            IrOp::Bin {
                op: BinOp::Add,
                dst: t,
                a: Operand::Temp(u),
                b: Operand::Const(1),
            },
            IrOp::Copy {
                dst: i,
                src: Operand::Const(0),
            },
        ]);
        m.validate().expect("valid");
        let f = &m.functions[0];
        assert_eq!(proven_loop_bounds(f), vec![]);
        assert_eq!(value_graph_loop_bounds(f), vec![(IrBlockId(1), 10)]);
    }

    #[test]
    fn value_graph_bounds_require_anchored_chains() {
        // Same fold target, but `u = 9` lands *after* `t = u + 1`: at
        // runtime t reads the zero-initialised u (t == 1), while the
        // value graph would fold t to 10. The dominance anchoring must
        // refuse the chain.
        let (u, t, i) = (Temp(0), Temp(1), Temp(2));
        let m = counted_loop_ir(vec![
            IrOp::Bin {
                op: BinOp::Add,
                dst: t,
                a: Operand::Temp(u),
                b: Operand::Const(1),
            },
            IrOp::Copy {
                dst: u,
                src: Operand::Const(9),
            },
            IrOp::Copy {
                dst: i,
                src: Operand::Const(0),
            },
        ]);
        m.validate().expect("valid");
        let f = &m.functions[0];
        assert_eq!(value_graph_loop_bounds(f), vec![]);
    }

    // --- unroll ----------------------------------------------------

    fn loop_count(f: &IrFunction) -> usize {
        teamplay_minic::cfg::natural_loops(f).len()
    }

    #[test]
    fn unroll_flattens_constant_trip_loops() {
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 4; i = i + 1) { s = s + x + i; }
                       return s;
                   }";
        let reference = ir_of(src);
        let mut m = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert_eq!(loop_count(f), 1);
        assert!(unroll_loops(f, 8));
        assert_eq!(loop_count(f), 0, "the loop is gone");
        assert!(f.loop_bounds.is_empty(), "no residual flow facts");
        m.validate().expect("valid after unroll");
        for x in [0, 9, -2] {
            assert_eq!(run_ir(&m, "f", &[x]), run_ir(&reference, "f", &[x]));
        }
    }

    #[test]
    fn unroll_trades_cycles_for_code_size() {
        use teamplay_isa::CycleModel;
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 6; i = i + 1) { s = s + x * i; }
                       return s;
                   }";
        let build = |m: &IrModule| {
            crate::codegen::generate_program(m, crate::codegen::CodegenOpts::default())
                .expect("codegen")
        };
        let m0 = ir_of(src);
        let rolled = build(&m0);
        let mut m = ir_of(src);
        assert!(unroll_loops(m.function_mut("f").expect("f"), 8));
        let unrolled = build(&m);
        let wcet = |p: &teamplay_isa::Program| {
            teamplay_wcet::analyze_program(p, &CycleModel::pg32())
                .expect("analysable")
                .wcet_cycles("f")
                .expect("bounded")
        };
        assert!(
            wcet(&unrolled) < wcet(&rolled),
            "no per-iteration compare+branch"
        );
        let size = |p: &teamplay_isa::Program| {
            crate::driver::code_size_halfwords(p.function("f").expect("f"))
        };
        assert!(
            size(&unrolled) > size(&rolled),
            "six body copies cost code size"
        );
    }

    #[test]
    fn unroll_skips_variable_bounds_and_respects_the_ceiling() {
        // Variable trip count: must not unroll even though annotated.
        let src = "int f(int n) {
                       int s = 0;
                       /*@ loop bound(64) @*/
                       while (n > 0) { n = n - 1; s = s + 1; }
                       return s;
                   }";
        let mut m = ir_of(src);
        assert!(
            !unroll_loops(m.function_mut("f").expect("f"), 64),
            "bound is not a trip count"
        );

        // Provable 6-trip loop under a ceiling of 4: left rolled.
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 6; i = i + 1) { s = s + x; }
                       return s;
                   }";
        let mut m = ir_of(src);
        let f = m.function_mut("f").expect("f");
        assert!(!unroll_loops(f, 4));
        assert_eq!(loop_count(f), 1);
        assert!(unroll_loops(f, 6), "raising the ceiling unrolls it");
    }

    #[test]
    fn unroll_handles_down_counting_and_strided_loops() {
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 10; i > 0; i = i - 3) { s = s + x + i; }
                       return s;
                   }";
        let reference = ir_of(src);
        let mut m = ir_of(src);
        assert!(unroll_loops(m.function_mut("f").expect("f"), 8));
        assert_eq!(loop_count(m.function("f").expect("f")), 0);
        for x in [1, -4] {
            assert_eq!(run_ir(&m, "f", &[x]), run_ir(&reference, "f", &[x]));
        }
    }

    // --- block_layout ----------------------------------------------

    #[test]
    fn block_layout_straightens_folded_branches() {
        let src = "int f(int x) { if (1 < 2) { return x + 10; } return 20; }";
        let mut m = ir_of(src);
        let f = m.function_mut("f").expect("f");
        const_fold(f); // the branch becomes a jump; dead blocks remain
        let before = f.blocks.len();
        assert!(block_layout(f));
        assert!(f.blocks.len() < before, "dead + forwarding blocks collapse");
        m.validate().expect("valid after layout");
        assert_eq!(run_ir(&m, "f", &[1]), Some(11));
    }

    #[test]
    fn block_layout_preserves_loops_and_their_bounds() {
        let src = "int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 12; i = i + 1) { s = s + x; }
                       return s;
                   }";
        let reference = ir_of(src);
        let mut m = ir_of(src);
        let f = m.function_mut("f").expect("f");
        block_layout(f);
        m.validate().expect("valid after layout");
        let f = m.function("f").expect("f");
        assert_eq!(loop_count(f), 1, "the loop survives");
        assert_eq!(
            f.loop_bounds.values().copied().collect::<Vec<_>>(),
            vec![12]
        );
        assert_eq!(run_ir(&m, "f", &[3]), run_ir(&reference, "f", &[3]));
    }

    #[test]
    fn block_layout_reduces_wcet_and_size_on_branchy_code() {
        use teamplay_isa::CycleModel;
        let src = "int f(int x) {
                       int s = 0;
                       if (x > 0) { s = s + 1; } else { s = s - 1; }
                       if (x > 10) { s = s + 2; } else { s = s - 2; }
                       return s;
                   }";
        let measure = |m: &IrModule| {
            let p = crate::codegen::generate_program(m, crate::codegen::CodegenOpts::default())
                .expect("codegen");
            let w = teamplay_wcet::analyze_program(&p, &CycleModel::pg32())
                .expect("analysable")
                .wcet_cycles("f")
                .expect("bounded");
            (
                w,
                crate::driver::code_size_halfwords(p.function("f").expect("f")),
            )
        };
        let m0 = ir_of(src);
        let (w0, s0) = measure(&m0);
        let mut m = ir_of(src);
        assert!(block_layout(m.function_mut("f").expect("f")));
        let (w1, s1) = measure(&m);
        assert!(w1 <= w0 && s1 < s0, "({w1},{s1}) vs ({w0},{s0})");
        for x in [-5, 5, 50] {
            assert_eq!(run_ir(&m, "f", &[x]), run_ir(&m0, "f", &[x]));
        }
    }

    #[test]
    fn block_layout_reaches_a_fixpoint() {
        let mut m = ir_of("int f(int x) { if (x > 0) { return 1; } return 2; }");
        let f = m.function_mut("f").expect("f");
        block_layout(f);
        assert!(!block_layout(f), "second application must be a no-op");
    }

    // --- catalog and error ergonomics ------------------------------

    #[test]
    fn catalog_resolves_names_and_literal_pipelines() {
        let mut cat = PipelineCatalog::builtin();
        assert_eq!(cat.get("o2"), Some(&Pipeline::o2()));
        cat.register(
            "camera_pill",
            "inline(24),licm,cse,const_fold,copy_prop,dce",
        )
        .expect("registers");
        assert!(cat.get("camera_pill").expect("registered").contains("licm"));
        // Re-registration replaces.
        cat.register("camera_pill", "dce").expect("re-registers");
        assert_eq!(cat.get("camera_pill").expect("registered").passes.len(), 1);
        // Fallback: a literal pipeline string resolves without registration.
        let lit = cat
            .resolve("strength_reduce,dce")
            .expect("literal resolves");
        assert_eq!(lit.passes.len(), 2);
        // A mistyped catalogue name points back at the catalogue…
        cat.register("camera_pill", "dce").expect("re-registers");
        let err = cat.resolve("camera_pil").expect_err("unknown");
        assert_eq!(
            err.to_string(),
            "unknown pipeline or pass `camera_pil`; did you mean `camera_pill`?"
        );
        // …a mistyped pass name still points at the registry…
        let err = cat.resolve("licn").expect_err("unknown");
        assert_eq!(
            err.to_string(),
            "unknown pipeline or pass `licn`; did you mean `licm`?"
        );
        // …and something unlike either namespace explains the contract.
        let err = cat.resolve("no_such_name_or_pass").expect_err("unknown");
        assert!(
            matches!(&err, PipelineError::UnknownName { nearest: None, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("catalogue names"), "{err}");
        // Multi-element specs keep the precise per-element error.
        assert!(matches!(
            cat.resolve("dce,turbo_encabulate"),
            Err(PipelineError::UnknownPass(_))
        ));
        assert!(cat.register("bad", "turbo(7)").is_err());
        let builtin = PipelineCatalog::builtin();
        let names: Vec<&str> = builtin.names().collect();
        assert_eq!(names, ["o0", "o1", "o2", "o3"]);
    }

    #[test]
    fn unknown_pass_error_suggests_the_nearest_name() {
        let err = "licn".parse::<Pipeline>().expect_err("unknown");
        assert_eq!(err.to_string(), "unknown pass `licn`; did you mean `licm`?");
        let err = "unrol(4)".parse::<Pipeline>().expect_err("unknown");
        assert_eq!(
            err.to_string(),
            "unknown pass `unrol`; did you mean `unroll`?"
        );
        // Nothing within distance 2: fall back to the full listing.
        let err = "turbo_encabulate".parse::<Pipeline>().expect_err("unknown");
        assert!(err.to_string().contains("known:"), "{err}");
    }

    // --- framework-level tests -------------------------------------

    #[test]
    fn every_registry_pass_is_resolvable_by_name() {
        for d in REGISTRY {
            let mut pm = PassManager::from_str(d.name).expect("resolves");
            assert_eq!(pm.pipeline().passes.len(), 1);
            let mut m = ir_of("int f(int x) { return x * 8 + 0; }");
            pm.run(&mut m); // must not panic
        }
        assert_eq!(
            REGISTRY.len(),
            12,
            "all twelve optimisations are registered"
        );
    }

    #[test]
    fn pipeline_parses_names_params_and_rejects_junk() {
        let p: Pipeline = "const_fold, copy_prop ,dce".parse().expect("parses");
        assert_eq!(p.passes.len(), 3);
        let p: Pipeline = "inline(64),dce".parse().expect("parses");
        assert_eq!(p.param_of("inline"), Some(64));
        assert_eq!(p.to_string(), "inline(64),dce");
        let back: Pipeline = p.to_string().parse().expect("round-trips");
        assert_eq!(back, p);
        assert_eq!(Pipeline::from_str("").expect("empty ok"), Pipeline::o0());

        assert!(matches!(
            "turbo_encabulate".parse::<Pipeline>(),
            Err(PipelineError::UnknownPass(_))
        ));
        assert!(matches!(
            "inline(".parse::<Pipeline>(),
            Err(PipelineError::Malformed(_))
        ));
        assert!(matches!(
            "inline(x)".parse::<Pipeline>(),
            Err(PipelineError::Malformed(_))
        ));
        assert!(matches!(
            "dce,,dce".parse::<Pipeline>(),
            Err(PipelineError::Malformed(_))
        ));
        assert!(matches!(
            "dce(7)".parse::<Pipeline>(),
            Err(PipelineError::UnexpectedParam(name)) if name == "dce"
        ));
    }

    #[test]
    fn manager_reaches_fixpoint_and_records_stats() {
        let mut m = ir_of("int f(int x) { int a = 2 * 8; int b = a; return b + x; }");
        let mut pm = PassManager::from_str("const_fold,copy_prop,dce").expect("pipeline");
        assert!(pm.run(&mut m));
        let stats = pm.stats();
        assert_eq!(stats.len(), 3);
        assert!(
            stats.iter().any(|s| s.changes > 0),
            "cleanup must report changes"
        );
        for s in stats {
            assert!(s.invocations >= s.changes);
        }
        // A second run is a no-op: the pipeline already converged.
        assert!(!pm.run(&mut m), "second run must find a fixpoint");
        assert_eq!(run_ir(&m, "f", &[1]), Some(17));
    }

    #[test]
    fn optimisation_levels_are_ordered_pipelines() {
        assert!(PassManager::o0().pipeline().passes.is_empty());
        assert_eq!(PassManager::o1().pipeline(), &Pipeline::o1());
        assert!(PassManager::o2().pipeline().contains("inline"));
        assert_eq!(PassManager::o3().pipeline().param_of("inline"), Some(80));
        // Higher levels strictly extend the optimisation surface.
        let counts: Vec<usize> = [Pipeline::o0(), Pipeline::o1(), Pipeline::o2()]
            .iter()
            .map(|p| p.passes.len())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn run_function_optimises_only_the_named_function() {
        let src = "int a(int x) { return x * 8; }
                   int b(int x) { return x * 8; }";
        let mut m = ir_of(src);
        let mut pm = PassManager::from_str("strength_reduce").expect("pipeline");
        assert!(pm.run_function(&mut m, "a"));
        let has_mul = |f: &IrFunction| {
            f.blocks
                .iter()
                .flat_map(|b| &b.ops)
                .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }))
        };
        assert!(!has_mul(m.function("a").expect("a")), "a is optimised");
        assert!(has_mul(m.function("b").expect("b")), "b is untouched");
        assert!(
            !pm.run_function(&mut m, "missing"),
            "unknown names are no-ops"
        );
    }

    #[test]
    fn per_function_configs_apply_their_own_pipelines() {
        let src = "int sq(int v) { return v * v; }
                   int hot(int x) { return sq(x) + 1; }
                   int cold(int x) { return sq(x) + 2; }";
        let mut m = ir_of(src);
        let mut configs = HashMap::new();
        configs.insert(
            "hot".to_string(),
            CompilerConfig {
                pipeline: Pipeline::o3(),
                mul_shift_add: false,
                pinned_regs: 0,
            },
        );
        let default = CompilerConfig {
            pipeline: Pipeline::o0(),
            mul_shift_add: false,
            pinned_regs: 0,
        };
        run_passes_per_function(&mut m, &configs, &default);
        m.validate().expect("valid after per-function pipelines");
        let calls = |f: &IrFunction| {
            f.blocks
                .iter()
                .flat_map(|b| &b.ops)
                .filter(|o| matches!(o, IrOp::Call { .. }))
                .count()
        };
        assert_eq!(calls(m.function("hot").expect("hot")), 0, "hot inlines sq");
        assert_eq!(
            calls(m.function("cold").expect("cold")),
            1,
            "cold keeps the call"
        );
        assert_eq!(run_ir(&m, "hot", &[3]), Some(10));
        assert_eq!(run_ir(&m, "cold", &[3]), Some(11));
    }
}
