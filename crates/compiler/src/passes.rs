//! IR optimisation passes.
//!
//! Every pass is semantics-preserving (the differential tests run each
//! configuration against the reference interpreter) and *flow-fact
//! preserving*: loop bounds survive, because the WCET analysis downstream
//! depends on them. The passes are the knobs of the multi-objective
//! search:
//!
//! * [`inline_functions`] — saves call/prologue overhead, grows code;
//! * [`strength_reduce_mul`] — `x * 2ⁿ` → shift (strictly better), and
//!   optionally `x * c` → shift-add decomposition, which *trades cycles
//!   for energy* on PG32's power-hungry multiplier;
//! * [`const_fold`] + [`copy_propagate`] + [`dead_code_elim`] — the
//!   cleanup trio, iterated to fixpoint.

use crate::driver::CompilerConfig;
use teamplay_minic::ast::{BinOp, UnOp};
use teamplay_minic::interp::eval_binop;
use teamplay_minic::ir::{CallArg, IrBlockId, IrFunction, IrModule, IrOp, IrTerm, MemBase, Operand, Temp};
use std::collections::HashMap;

/// Fold constant expressions and propagate constants within blocks.
///
/// Returns `true` if anything changed.
pub fn const_fold(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        // Block-local constant environment.
        let mut env: HashMap<Temp, i32> = HashMap::new();
        let resolve = |env: &HashMap<Temp, i32>, o: Operand| -> Operand {
            match o {
                Operand::Temp(t) => match env.get(&t) {
                    Some(v) => Operand::Const(*v),
                    None => o,
                },
                c => c,
            }
        };
        for op in &mut b.ops {
            // First, rewrite operands using known constants.
            match op {
                IrOp::Bin { a, b: bb, .. } => {
                    *a = resolve(&env, *a);
                    *bb = resolve(&env, *bb);
                }
                IrOp::Un { a, .. } => *a = resolve(&env, *a),
                IrOp::Copy { src, .. } => *src = resolve(&env, *src),
                IrOp::Load { index, .. } => *index = resolve(&env, *index),
                IrOp::Store { index, value, .. } => {
                    *index = resolve(&env, *index);
                    *value = resolve(&env, *value);
                }
                IrOp::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Value(v) = a {
                            *v = resolve(&env, *v);
                        }
                    }
                }
                IrOp::Select { cond, t, f: fv, .. } => {
                    *cond = resolve(&env, *cond);
                    *t = resolve(&env, *t);
                    *fv = resolve(&env, *fv);
                }
                IrOp::In { .. } | IrOp::Out { value: _, .. } => {}
            }
            if let IrOp::Out { value, .. } = op {
                *value = resolve(&env, *value);
            }
            // Then fold.
            let folded: Option<(Temp, i32)> = match op {
                IrOp::Bin { op: bop, dst, a: Operand::Const(x), b: Operand::Const(y) } => {
                    Some((*dst, eval_binop(*bop, *x, *y)))
                }
                IrOp::Un { op: uop, dst, a: Operand::Const(x) } => {
                    let v = match uop {
                        UnOp::Neg => x.wrapping_neg(),
                        UnOp::BitNot => !*x,
                        UnOp::LogNot => (*x == 0) as i32,
                    };
                    Some((*dst, v))
                }
                IrOp::Copy { dst, src: Operand::Const(x) } => Some((*dst, *x)),
                IrOp::Select { dst, cond: Operand::Const(c), t, f: fv } => {
                    let chosen = if *c != 0 { *t } else { *fv };
                    if let Operand::Const(v) = chosen {
                        Some((*dst, v))
                    } else {
                        *op = IrOp::Copy { dst: *dst, src: chosen };
                        changed = true;
                        // The copy may still bind a constant next pass.
                        None
                    }
                }
                _ => None,
            };
            // Track definitions: any write invalidates the old binding.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            for d in &defs {
                env.remove(d);
            }
            if let Some((dst, v)) = folded {
                if !matches!(op, IrOp::Copy { src: Operand::Const(_), .. }) {
                    *op = IrOp::Copy { dst, src: Operand::Const(v) };
                    changed = true;
                }
                env.insert(dst, v);
            }
        }
        // Terminator folding: constant branches become jumps.
        if let IrTerm::Branch { cond, taken, fallthrough } = &b.term {
            let folded = match cond {
                Operand::Const(c) => Some(if *c != 0 { *taken } else { *fallthrough }),
                Operand::Temp(t) => env.get(t).map(|v| if *v != 0 { *taken } else { *fallthrough }),
            };
            if let Some(target) = folded {
                b.term = IrTerm::Jump(target);
                changed = true;
            }
        }
    }
    changed
}

fn written_temps(op: &IrOp, out: &mut Vec<Temp>) {
    match op {
        IrOp::Bin { dst, .. }
        | IrOp::Un { dst, .. }
        | IrOp::Copy { dst, .. }
        | IrOp::Load { dst, .. }
        | IrOp::Select { dst, .. }
        | IrOp::In { dst, .. } => out.push(*dst),
        IrOp::Call { dst: Some(d), .. } => out.push(*d),
        _ => {}
    }
}

fn read_operands(op: &IrOp) -> Vec<Operand> {
    let mut reads = Vec::new();
    match op {
        IrOp::Bin { a, b, .. } => {
            reads.push(*a);
            reads.push(*b);
        }
        IrOp::Un { a, .. } => reads.push(*a),
        IrOp::Copy { src, .. } => reads.push(*src),
        IrOp::Load { base, index, .. } => {
            reads.push(*index);
            if let MemBase::Param(t) = base {
                reads.push(Operand::Temp(*t));
            }
        }
        IrOp::Store { base, index, value } => {
            reads.push(*index);
            reads.push(*value);
            if let MemBase::Param(t) = base {
                reads.push(Operand::Temp(*t));
            }
        }
        IrOp::Call { args, .. } => {
            for a in args {
                match a {
                    CallArg::Value(v) => reads.push(*v),
                    CallArg::ArrayRef(MemBase::Param(t)) => reads.push(Operand::Temp(*t)),
                    CallArg::ArrayRef(_) => {}
                }
            }
        }
        IrOp::Select { cond, t, f, .. } => {
            reads.push(*cond);
            reads.push(*t);
            reads.push(*f);
        }
        IrOp::In { .. } => {}
        IrOp::Out { value, .. } => reads.push(*value),
    }
    reads
}

/// Propagate copies within blocks (`t2 = t1; use t2` → `use t1`).
///
/// Returns `true` if anything changed.
pub fn copy_propagate(f: &mut IrFunction) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        // dst -> source operand, valid while neither side is redefined.
        let mut env: HashMap<Temp, Operand> = HashMap::new();
        let resolve = |env: &HashMap<Temp, Operand>, o: Operand| -> Operand {
            match o {
                Operand::Temp(t) => env.get(&t).copied().unwrap_or(o),
                c => c,
            }
        };
        for op in &mut b.ops {
            let rewrite = |o: &mut Operand, env: &HashMap<Temp, Operand>, changed: &mut bool| {
                let new = resolve(env, *o);
                if new != *o {
                    *o = new;
                    *changed = true;
                }
            };
            match op {
                IrOp::Bin { a, b: bb, .. } => {
                    rewrite(a, &env, &mut changed);
                    rewrite(bb, &env, &mut changed);
                }
                IrOp::Un { a, .. } => rewrite(a, &env, &mut changed),
                IrOp::Copy { src, .. } => rewrite(src, &env, &mut changed),
                IrOp::Load { index, .. } => rewrite(index, &env, &mut changed),
                IrOp::Store { index, value, .. } => {
                    rewrite(index, &env, &mut changed);
                    rewrite(value, &env, &mut changed);
                }
                IrOp::Call { args, .. } => {
                    for a in args {
                        if let CallArg::Value(v) = a {
                            rewrite(v, &env, &mut changed);
                        }
                    }
                }
                IrOp::Select { cond, t, f: fv, .. } => {
                    rewrite(cond, &env, &mut changed);
                    rewrite(t, &env, &mut changed);
                    rewrite(fv, &env, &mut changed);
                }
                IrOp::In { .. } => {}
                IrOp::Out { value, .. } => rewrite(value, &env, &mut changed),
            }
            // Kill bindings invalidated by this op's writes.
            let mut defs = Vec::new();
            written_temps(op, &mut defs);
            for d in &defs {
                env.remove(d);
                env.retain(|_, src| *src != Operand::Temp(*d));
            }
            // Record new copies.
            if let IrOp::Copy { dst, src } = op {
                if *src != Operand::Temp(*dst) {
                    env.insert(*dst, *src);
                }
            }
        }
        if let IrTerm::Branch { cond, .. } = &mut b.term {
            let new = resolve(&env, *cond);
            if new != *cond {
                *cond = new;
                changed = true;
            }
        }
        if let IrTerm::Ret(Some(v)) = &mut b.term {
            let new = resolve(&env, *v);
            if new != *v {
                *v = new;
                changed = true;
            }
        }
    }
    changed
}

/// Remove pure operations whose results are never read.
///
/// Returns `true` if anything changed.
pub fn dead_code_elim(f: &mut IrFunction) -> bool {
    let mut changed = false;
    loop {
        let mut used = vec![false; f.temp_count as usize];
        let mut mark = |o: Operand| {
            if let Operand::Temp(t) = o {
                used[t.0 as usize] = true;
            }
        };
        for b in &f.blocks {
            for op in &b.ops {
                for r in read_operands(op) {
                    mark(r);
                }
            }
            match &b.term {
                IrTerm::Branch { cond, .. } => mark(*cond),
                IrTerm::Ret(Some(v)) => mark(*v),
                _ => {}
            }
        }
        let mut removed = false;
        for b in &mut f.blocks {
            let before = b.ops.len();
            b.ops.retain(|op| match op {
                IrOp::Bin { dst, .. }
                | IrOp::Un { dst, .. }
                | IrOp::Copy { dst, .. }
                | IrOp::Load { dst, .. }
                | IrOp::Select { dst, .. } => used[dst.0 as usize],
                // Calls, stores, port I/O have effects; `In` consumes an
                // input value even if the result is unused.
                _ => true,
            });
            if b.ops.len() != before {
                removed = true;
            }
        }
        if removed {
            changed = true;
        } else {
            return changed;
        }
    }
}

/// Is `c` a power of two (≥ 2)?
fn pow2_shift(c: i32) -> Option<i32> {
    if c >= 2 && (c & (c - 1)) == 0 {
        Some(c.trailing_zeros() as i32)
    } else {
        None
    }
}

/// Strength-reduce multiplications by constants.
///
/// * Always (when enabled): `x * 2ⁿ` → `x << n`, `x * 1` → copy,
///   `x * 0` → 0 — strictly better in time and energy.
/// * With `shift_add`: `x * c` for small positive `c` with ≤ 3 set bits
///   → a shift/add sequence. On PG32 this costs extra cycles but less
///   energy than the power-hungry multiplier: a pure energy/time
///   trade-off for the Pareto search.
///
/// Returns `true` if anything changed.
pub fn strength_reduce_mul(f: &mut IrFunction, shift_add: bool) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let mut new_ops: Vec<IrOp> = Vec::with_capacity(f.blocks[bi].ops.len());
        let ops = std::mem::take(&mut f.blocks[bi].ops);
        for op in ops {
            // Normalise const-on-left multiplications.
            let (dst, x, c) = match op {
                IrOp::Bin { op: BinOp::Mul, dst, a, b } => match (a, b) {
                    (x, Operand::Const(c)) => (dst, x, Some(c)),
                    (Operand::Const(c), x) => (dst, x, Some(c)),
                    _ => {
                        new_ops.push(op);
                        continue;
                    }
                },
                other => {
                    new_ops.push(other);
                    continue;
                }
            };
            let Some(c) = c else {
                new_ops.push(IrOp::Bin { op: BinOp::Mul, dst, a: x, b: x });
                continue;
            };
            match c {
                0 => {
                    new_ops.push(IrOp::Copy { dst, src: Operand::Const(0) });
                    changed = true;
                }
                1 => {
                    new_ops.push(IrOp::Copy { dst, src: x });
                    changed = true;
                }
                _ => {
                    if let Some(sh) = pow2_shift(c) {
                        new_ops.push(IrOp::Bin {
                            op: BinOp::Shl,
                            dst,
                            a: x,
                            b: Operand::Const(sh),
                        });
                        changed = true;
                    } else if shift_add && (2..=255).contains(&c) && c.count_ones() <= 3 {
                        // x*c = Σ x << kᵢ over the set bits of c (wrapping
                        // arithmetic makes this exact for all x).
                        let mut parts: Vec<Temp> = Vec::new();
                        for bit in 0..8 {
                            if c & (1 << bit) != 0 {
                                let t = f.fresh_temp();
                                new_ops.push(IrOp::Bin {
                                    op: BinOp::Shl,
                                    dst: t,
                                    a: x,
                                    b: Operand::Const(bit),
                                });
                                parts.push(t);
                            }
                        }
                        let mut acc = parts[0];
                        for p in &parts[1..] {
                            let t = f.fresh_temp();
                            new_ops.push(IrOp::Bin {
                                op: BinOp::Add,
                                dst: t,
                                a: Operand::Temp(acc),
                                b: Operand::Temp(*p),
                            });
                            acc = t;
                        }
                        new_ops.push(IrOp::Copy { dst, src: Operand::Temp(acc) });
                        changed = true;
                    } else {
                        new_ops.push(IrOp::Bin {
                            op: BinOp::Mul,
                            dst,
                            a: x,
                            b: Operand::Const(c),
                        });
                    }
                }
            }
        }
        f.blocks[bi].ops = new_ops;
    }
    changed
}

/// Inline small callees into their callers.
///
/// A call site is eligible when the callee (a) is not (even mutually)
/// recursive, (b) has at most `threshold` IR operations, and (c) is not
/// the caller itself. At most `MAX_INLINES_PER_FUNCTION` sites per caller
/// are expanded to bound code growth. Loop bounds of the callee transfer
/// to the caller (block ids remapped), keeping the result analysable.
///
/// Returns `true` if anything changed.
pub fn inline_functions(module: &mut IrModule, threshold: usize) -> bool {
    const MAX_INLINES_PER_FUNCTION: usize = 24;
    // Snapshot callee bodies up front (by value) to keep borrows simple.
    let snapshot: HashMap<String, IrFunction> =
        module.functions.iter().map(|f| (f.name.clone(), f.clone())).collect();
    // Recursion per function via DFS on the snapshot call graph.
    let recursive = |start: &str| -> bool {
        let mut stack = vec![start.to_string()];
        let mut seen = vec![start.to_string()];
        while let Some(cur) = stack.pop() {
            let Some(f) = snapshot.get(&cur) else { continue };
            for b in &f.blocks {
                for op in &b.ops {
                    if let IrOp::Call { func, .. } = op {
                        if func == start {
                            return true;
                        }
                        if !seen.contains(func) {
                            seen.push(func.clone());
                            stack.push(func.clone());
                        }
                    }
                }
            }
        }
        false
    };
    let op_count = |f: &IrFunction| f.blocks.iter().map(|b| b.ops.len() + 1).sum::<usize>();

    let mut changed = false;
    for f in &mut module.functions {
        let mut budget = MAX_INLINES_PER_FUNCTION;
        loop {
            if budget == 0 {
                break;
            }
            // Find the first eligible call site.
            let mut site: Option<(usize, usize, String)> = None;
            'outer: for (bi, b) in f.blocks.iter().enumerate() {
                for (oi, op) in b.ops.iter().enumerate() {
                    if let IrOp::Call { func, .. } = op {
                        if func != &f.name
                            && snapshot.get(func).is_some_and(|c| op_count(c) <= threshold)
                            && !recursive(func)
                        {
                            site = Some((bi, oi, func.clone()));
                            break 'outer;
                        }
                    }
                }
            }
            let Some((bi, oi, callee_name)) = site else { break };
            let callee = snapshot[&callee_name].clone();
            inline_site(f, bi, oi, &callee);
            budget -= 1;
            changed = true;
        }
    }
    changed
}

/// Expand one call site in place.
fn inline_site(caller: &mut IrFunction, bi: usize, oi: usize, callee: &IrFunction) {
    let IrOp::Call { dst, args, .. } = caller.blocks[bi].ops[oi].clone() else {
        unreachable!("inline_site requires a call at the given position");
    };

    let temp_offset = caller.temp_count;
    caller.temp_count += callee.temp_count;
    let block_offset = caller.blocks.len() as u32;
    let array_offset = caller.local_arrays.len() as u32;
    caller.local_arrays.extend_from_slice(&callee.local_arrays);

    // Split the call block: ops after the call move to a continuation.
    let mut pre_ops: Vec<IrOp> = caller.blocks[bi].ops.drain(..).collect();
    let post_ops: Vec<IrOp> = pre_ops.split_off(oi + 1);
    pre_ops.pop(); // the call itself
    let original_term = caller.blocks[bi].term.clone();
    caller.blocks[bi].ops = pre_ops;

    // Map the callee's array-parameter temps to actual caller bases and
    // bind scalar parameters by copy.
    let mut param_arrays: HashMap<Temp, MemBase> = HashMap::new();
    for (p, a) in callee.params.iter().zip(&args) {
        match a {
            CallArg::Value(v) => {
                caller.blocks[bi].ops.push(IrOp::Copy {
                    dst: Temp(p.temp.0 + temp_offset),
                    src: *v,
                });
            }
            CallArg::ArrayRef(m) => {
                param_arrays.insert(p.temp, m.clone());
            }
        }
    }

    let remap_operand = |o: Operand| match o {
        Operand::Temp(t) => Operand::Temp(Temp(t.0 + temp_offset)),
        c => c,
    };
    let remap_base = |m: &MemBase| -> MemBase {
        match m {
            MemBase::Global(g) => MemBase::Global(g.clone()),
            MemBase::Local(id) => MemBase::Local(id + array_offset),
            MemBase::Param(t) => match param_arrays.get(t) {
                Some(actual) => actual.clone(),
                None => MemBase::Param(Temp(t.0 + temp_offset)),
            },
        }
    };

    // The continuation block receives the post-call ops + original term.
    let cont_id = IrBlockId(block_offset + callee.blocks.len() as u32);

    // Splice remapped callee blocks.
    for cb in &callee.blocks {
        let mut ops = Vec::with_capacity(cb.ops.len());
        for op in &cb.ops {
            let new_op = match op {
                IrOp::Bin { op, dst, a, b } => IrOp::Bin {
                    op: *op,
                    dst: Temp(dst.0 + temp_offset),
                    a: remap_operand(*a),
                    b: remap_operand(*b),
                },
                IrOp::Un { op, dst, a } => IrOp::Un {
                    op: *op,
                    dst: Temp(dst.0 + temp_offset),
                    a: remap_operand(*a),
                },
                IrOp::Copy { dst, src } => IrOp::Copy {
                    dst: Temp(dst.0 + temp_offset),
                    src: remap_operand(*src),
                },
                IrOp::Load { dst, base, index } => IrOp::Load {
                    dst: Temp(dst.0 + temp_offset),
                    base: remap_base(base),
                    index: remap_operand(*index),
                },
                IrOp::Store { base, index, value } => IrOp::Store {
                    base: remap_base(base),
                    index: remap_operand(*index),
                    value: remap_operand(*value),
                },
                IrOp::Call { dst, func, args } => IrOp::Call {
                    dst: dst.map(|d| Temp(d.0 + temp_offset)),
                    func: func.clone(),
                    args: args
                        .iter()
                        .map(|a| match a {
                            CallArg::Value(v) => CallArg::Value(remap_operand(*v)),
                            CallArg::ArrayRef(m) => CallArg::ArrayRef(remap_base(m)),
                        })
                        .collect(),
                },
                IrOp::Select { dst, cond, t, f } => IrOp::Select {
                    dst: Temp(dst.0 + temp_offset),
                    cond: remap_operand(*cond),
                    t: remap_operand(*t),
                    f: remap_operand(*f),
                },
                IrOp::In { dst, port } => {
                    IrOp::In { dst: Temp(dst.0 + temp_offset), port: *port }
                }
                IrOp::Out { port, value } => {
                    IrOp::Out { port: *port, value: remap_operand(*value) }
                }
            };
            ops.push(new_op);
        }
        let term = match &cb.term {
            IrTerm::Jump(t) => IrTerm::Jump(IrBlockId(t.0 + block_offset)),
            IrTerm::Branch { cond, taken, fallthrough } => IrTerm::Branch {
                cond: remap_operand(*cond),
                taken: IrBlockId(taken.0 + block_offset),
                fallthrough: IrBlockId(fallthrough.0 + block_offset),
            },
            IrTerm::Ret(v) => {
                // Return becomes: bind the destination, jump to the
                // continuation.
                if let (Some(d), Some(v)) = (dst, v) {
                    ops.push(IrOp::Copy { dst: d, src: remap_operand(*v) });
                }
                IrTerm::Jump(cont_id)
            }
        };
        caller.blocks.push(teamplay_minic::ir::IrBlock { ops, term });
    }

    // Continuation block.
    caller
        .blocks
        .push(teamplay_minic::ir::IrBlock { ops: post_ops, term: original_term });

    // Callee loop bounds transfer (remapped).
    for (hb, bound) in &callee.loop_bounds {
        caller.loop_bounds.insert(IrBlockId(hb.0 + block_offset), *bound);
    }

    // Enter the inlined body.
    caller.blocks[bi].term = IrTerm::Jump(IrBlockId(block_offset));
}

/// Run per-function pass pipelines: each function is optimised under its
/// own configuration (the multi-version final build, where every task
/// keeps the Pareto variant the coordination layer selected for it).
/// Functions without an entry in `configs` use `default`.
pub fn run_passes_per_function(
    module: &mut IrModule,
    configs: &std::collections::HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) {
    // Inlining first, per caller with its own threshold.
    let names: Vec<String> = module.functions.iter().map(|f| f.name.clone()).collect();
    for name in &names {
        let cfg = configs.get(name).unwrap_or(default);
        if cfg.inline {
            inline_into(module, name, cfg.inline_threshold);
        }
    }
    for f in &mut module.functions {
        let cfg = configs.get(&f.name).unwrap_or(default);
        if cfg.strength_reduce {
            strength_reduce_mul(f, false);
        }
        for _ in 0..4 {
            let mut any = false;
            if cfg.const_fold {
                any |= const_fold(f);
            }
            if cfg.copy_prop {
                any |= copy_propagate(f);
            }
            if cfg.dce {
                any |= dead_code_elim(f);
            }
            if !any {
                break;
            }
        }
    }
}

/// Inline eligible call sites of a single caller (see
/// [`inline_functions`] for eligibility). Returns `true` on change.
pub fn inline_into(module: &mut IrModule, caller: &str, threshold: usize) -> bool {
    const MAX_INLINES_PER_FUNCTION: usize = 24;
    let snapshot: HashMap<String, IrFunction> =
        module.functions.iter().map(|f| (f.name.clone(), f.clone())).collect();
    let recursive = |start: &str| -> bool {
        let mut stack = vec![start.to_string()];
        let mut seen = vec![start.to_string()];
        while let Some(cur) = stack.pop() {
            let Some(f) = snapshot.get(&cur) else { continue };
            for b in &f.blocks {
                for op in &b.ops {
                    if let IrOp::Call { func, .. } = op {
                        if func == start {
                            return true;
                        }
                        if !seen.contains(func) {
                            seen.push(func.clone());
                            stack.push(func.clone());
                        }
                    }
                }
            }
        }
        false
    };
    let op_count = |f: &IrFunction| f.blocks.iter().map(|b| b.ops.len() + 1).sum::<usize>();
    let Some(f) = module.functions.iter_mut().find(|f| f.name == caller) else {
        return false;
    };
    let mut changed = false;
    let mut budget = MAX_INLINES_PER_FUNCTION;
    while budget > 0 {
        let mut site: Option<(usize, usize, String)> = None;
        'outer: for (bi, b) in f.blocks.iter().enumerate() {
            for (oi, op) in b.ops.iter().enumerate() {
                if let IrOp::Call { func, .. } = op {
                    if func != &f.name
                        && snapshot.get(func).is_some_and(|c| op_count(c) <= threshold)
                        && !recursive(func)
                    {
                        site = Some((bi, oi, func.clone()));
                        break 'outer;
                    }
                }
            }
        }
        let Some((bi, oi, callee_name)) = site else { break };
        let callee = snapshot[&callee_name].clone();
        inline_site(f, bi, oi, &callee);
        budget -= 1;
        changed = true;
    }
    changed
}

/// Run the configured pass pipeline over a module.
pub fn run_passes(module: &mut IrModule, config: &CompilerConfig) {
    if config.inline {
        inline_functions(module, config.inline_threshold);
    }
    for f in &mut module.functions {
        if config.strength_reduce {
            // Power-of-two strength reduction only: shift-add
            // decomposition is performed register-resident in codegen
            // (`CodegenOpts::mul_shift_add`), where it does not inflate
            // memory traffic.
            strength_reduce_mul(f, false);
        }
        // Cleanup trio to fixpoint (bounded).
        for _ in 0..4 {
            let mut any = false;
            if config.const_fold {
                any |= const_fold(f);
            }
            if config.copy_prop {
                any |= copy_propagate(f);
            }
            if config.dce {
                any |= dead_code_elim(f);
            }
            if !any {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_minic::interp::RecordingPorts;
    use teamplay_minic::ir::exec_module;

    fn ir_of(src: &str) -> IrModule {
        compile_to_ir(src).expect("front-end")
    }

    fn run_ir(module: &IrModule, func: &str, args: &[i32]) -> Option<i32> {
        let mut ports = RecordingPorts::new();
        exec_module(module, func, args, &mut ports, 10_000_000).expect("run")
    }

    fn op_total(module: &IrModule) -> usize {
        module.functions.iter().map(|f| f.blocks.iter().map(|b| b.ops.len()).sum::<usize>()).sum()
    }

    #[test]
    fn const_fold_collapses_arithmetic() {
        let mut m = ir_of("int f() { return (2 + 3) * 4 - 6 / 2; }");
        let f = m.function_mut("f").expect("f");
        assert!(const_fold(f));
        assert_eq!(run_ir(&m, "f", &[]), Some(17));
    }

    #[test]
    fn const_fold_resolves_constant_branches() {
        let mut m = ir_of("int f() { if (1 < 2) { return 10; } return 20; }");
        let f = m.function_mut("f").expect("f");
        const_fold(f);
        // At least one branch terminator should have become a jump.
        let jumps = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, IrTerm::Jump(_)))
            .count();
        assert!(jumps > 0);
        assert_eq!(run_ir(&m, "f", &[]), Some(10));
    }

    #[test]
    fn dce_removes_unused_computation() {
        let mut m = ir_of("int f(int x) { int unused = x * 37; return x + 1; }");
        let before = op_total(&m);
        let f = m.function_mut("f").expect("f");
        assert!(dead_code_elim(f));
        assert!(op_total(&m) < before);
        assert_eq!(run_ir(&m, "f", &[4]), Some(5));
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut m = ir_of(
            "int g;
             void set(int v) { g = v; return; }
             int f(int x) { set(x); __out(1, x); return g; }",
        );
        let f = m.function_mut("f").expect("f");
        dead_code_elim(f);
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. } | IrOp::Out { .. }))
            .count();
        assert_eq!(calls, 2, "calls and port writes must survive DCE");
    }

    #[test]
    fn copy_prop_then_dce_shrinks_chains() {
        let mut m = ir_of("int f(int x) { int a = x; int b = a; int c = b; return c; }");
        let f = m.function_mut("f").expect("f");
        copy_propagate(f);
        dead_code_elim(f);
        let remaining: usize = f.blocks.iter().map(|b| b.ops.len()).sum();
        assert!(remaining <= 1, "copy chain should collapse, {remaining} ops left");
        assert_eq!(run_ir(&m, "f", &[9]), Some(9));
    }

    #[test]
    fn strength_reduction_pow2_becomes_shift() {
        let mut m = ir_of("int f(int x) { return x * 8; }");
        let f = m.function_mut("f").expect("f");
        assert!(strength_reduce_mul(f, false));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        for x in [-5, 0, 7, i32::MAX / 4] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x.wrapping_mul(8)));
        }
    }

    #[test]
    fn strength_reduction_shift_add_is_exact() {
        let mut m = ir_of("int f(int x) { return x * 10; }");
        let f = m.function_mut("f").expect("f");
        assert!(strength_reduce_mul(f, true));
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(!has_mul);
        for x in [-5, 0, 7, 123_456_789, i32::MIN] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x.wrapping_mul(10)));
        }
    }

    #[test]
    fn strength_reduction_leaves_dense_constants() {
        // 0xEF has 7 set bits — not worth a shift-add chain.
        let mut m = ir_of("int f(int x) { return x * 239; }");
        let f = m.function_mut("f").expect("f");
        strength_reduce_mul(f, true);
        let has_mul = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|o| matches!(o, IrOp::Bin { op: BinOp::Mul, .. }));
        assert!(has_mul, "dense multiplier should stay a mul");
    }

    #[test]
    fn inline_replaces_call_and_preserves_semantics() {
        let src = "int sq(int v) { return v * v; }
                   int f(int x) { return sq(x) + sq(x + 1); }";
        let mut m = ir_of(src);
        assert!(inline_functions(&mut m, 100));
        m.validate().expect("valid after inline");
        let f = m.function("f").expect("f");
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. }))
            .count();
        assert_eq!(calls, 0, "both call sites should be inlined");
        for x in [0, 3, -7] {
            assert_eq!(run_ir(&m, "f", &[x]), Some(x * x + (x + 1) * (x + 1)));
        }
    }

    #[test]
    fn inline_handles_array_params_and_loop_bounds() {
        let src = "int acc(int a[], int n) {
                       int s = 0;
                       for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; }
                       return s + n;
                   }
                   int buf[8] = {1,2,3,4,5,6,7,8};
                   int f(int n) { int loc[8]; loc[0] = 100; return acc(buf, n) + acc(loc, n); }";
        let mut m = ir_of(src);
        let bounds_before: usize =
            m.functions.iter().map(|f| f.loop_bounds.len()).sum();
        assert!(bounds_before >= 1);
        assert!(inline_functions(&mut m, 100));
        m.validate().expect("valid after inline");
        let f = m.function("f").expect("f");
        assert_eq!(
            f.loop_bounds.len(),
            2,
            "both inlined loops must carry their bounds"
        );
        assert_eq!(run_ir(&m, "f", &[5]), Some(36 + 5 + 100 + 5));
    }

    #[test]
    fn inline_skips_recursive_functions() {
        let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
                   int f(int n) { return fact(n); }";
        let mut m = ir_of(src);
        inline_functions(&mut m, 1000);
        let f = m.function("f").expect("f");
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, IrOp::Call { .. }))
            .count();
        assert_eq!(calls, 1, "recursive callee must not be inlined");
        assert_eq!(run_ir(&m, "f", &[5]), Some(120));
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let src = "int mac(int a, int b, int c) { return a * b + c; }
                   int f(int x) {
                       int s = 0;
                       for (int i = 0; i < 6; i = i + 1) { s = mac(x, i, s); }
                       return s * 12;
                   }";
        let reference = ir_of(src);
        let expected = run_ir(&reference, "f", &[7]);
        let mut m = ir_of(src);
        let config = CompilerConfig {
            inline: true,
            inline_threshold: 50,
            const_fold: true,
            copy_prop: true,
            dce: true,
            strength_reduce: true,
            mul_shift_add: true,
            pinned_regs: 4,
        };
        run_passes(&mut m, &config);
        m.validate().expect("valid after pipeline");
        assert_eq!(run_ir(&m, "f", &[7]), expected);
    }
}
