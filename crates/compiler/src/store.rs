//! Persistent content-addressed evaluation store.
//!
//! The bottom tier of the driver's cache hierarchy (see [`crate::driver`]):
//! a directory of JSON files, one per evaluated configuration, keyed by a
//! 128-bit FNV-1a hash over the *serialized content* of everything the
//! evaluation depends on — the IR module, both cost models, the
//! [`CompilerConfig`](crate::CompilerConfig), and
//! [`STORE_FORMAT_VERSION`]. Because the key commits to the inputs rather
//! than to names or paths, a store can never serve a stale result: any
//! change to the module, the cost models, or the on-disk format lands on
//! a different key and reads as a cold miss. Infeasible configurations
//! are persisted too (as explicit `null` evaluations), so a warm process
//! does not re-discover known-bad genomes.
//!
//! All disk traffic is best-effort: unreadable, corrupt, or missing
//! entries behave as misses, and failed writes are dropped silently. The
//! store is therefore safe to share between concurrent processes —
//! writers land entries atomically (temp file + rename), and the worst
//! outcome of a race is a redundant compile.

use crate::driver::CachedEval;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version stamp mixed into every store key. Bump when the serialized
/// entry layout (or the meaning of any hashed input) changes: old
/// entries then simply stop matching instead of deserializing wrongly.
///
/// Version history: 1 — evaluation entries only; 2 — the secure search
/// added leakage-score entries ([`DiskStore::store_score`]) and stored
/// evals can now originate from ladderised IR, so every key moved;
/// 3 — codegen gained copy coalescing and value-graph loop bounds, and
/// the genome grew `gvn`/`load_fwd` genes, so cached metrics for equal
/// keys would no longer match what the compiler now produces.
pub const STORE_FORMAT_VERSION: u32 = 3;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Fold `bytes` into a running FNV-1a-128 hash. Seed the first call
/// with [`fnv_offset`]; chain later calls from the previous result so
/// compound keys (model prefix, then per-config suffix) need not
/// re-serialize their shared prefix.
pub(crate) fn fnv1a128(mut hash: u128, bytes: &[u8]) -> u128 {
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The FNV-1a-128 offset basis (the seed for a fresh hash chain).
pub(crate) fn fnv_offset() -> u128 {
    FNV_OFFSET
}

/// Hash a serializable value into a running FNV-1a-128 chain via its
/// compact JSON rendering. The vendored serde serializes hash maps in
/// canonical key order and floats in shortest round-trip form, so equal
/// values hash equally across processes.
pub(crate) fn hash_json<T: Serialize>(hash: u128, value: &T) -> u128 {
    let text = serde_json::to_string(value).expect("serializable value");
    fnv1a128(hash, text.as_bytes())
}

/// On-disk entry: the outcome of one evaluation. `eval: None` records
/// an infeasible configuration (codegen or analysis failed) — serving
/// it from disk skips the whole compile-and-fail path.
#[derive(Serialize, Deserialize)]
struct StoredEval {
    eval: Option<CachedEval>,
}

/// On-disk entry: one memoized leakage score of the secure search.
/// `score: None` records a variant whose measurement rig trapped —
/// persisted so a warm process skips the failing simulation too.
#[derive(Serialize, Deserialize)]
struct StoredScore {
    score: Option<f64>,
}

/// Distinguishes temp files (in-flight writes) from committed entries.
const ENTRY_EXT: &str = "json";

/// Monotonic suffix keeping concurrent in-process writers' temp files
/// distinct (the process id distinguishes concurrent processes).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A content-addressed directory of evaluation results shared across
/// processes. See the module docs for keying and corruption semantics.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `path`.
    ///
    /// # Errors
    /// Propagates the I/O error when the directory cannot be created.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<DiskStore> {
        let root = path.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DiskStore { root })
    }

    /// The store's root directory.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Number of committed entries (a diagnostic, not a fast path).
    pub fn entries(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(ENTRY_EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    fn entry_path(&self, key: u128) -> PathBuf {
        self.root.join(format!("{key:032x}.{ENTRY_EXT}"))
    }

    /// Load the entry for `key`. Outer `None` means absent (or
    /// unreadable/corrupt — both behave as a cold miss); inner `None`
    /// is a *recorded* infeasible configuration.
    pub fn load(&self, key: u128) -> Option<Option<CachedEval>> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let stored: StoredEval = serde_json::from_str(&text).ok()?;
        Some(stored.eval)
    }

    /// Persist the entry for `key` (best effort: write failures are
    /// dropped, leaving the slot cold). The temp-file + rename dance
    /// keeps concurrent readers from ever observing a half-written
    /// entry.
    pub fn store(&self, key: u128, eval: &Option<CachedEval>) {
        let Ok(text) = serde_json::to_string(&StoredEval { eval: eval.clone() }) else {
            return;
        };
        self.commit(key, text);
    }

    /// Load the leakage-score entry for `key`. Outer `None` means
    /// absent/corrupt (a cold miss); inner `None` is a *recorded*
    /// measurement failure.
    pub fn load_score(&self, key: u128) -> Option<Option<f64>> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        let stored: StoredScore = serde_json::from_str(&text).ok()?;
        Some(stored.score)
    }

    /// Persist a leakage score under `key` (best effort, atomic — same
    /// semantics as [`DiskStore::store`]). Score keys must chain in a
    /// discriminator distinct from evaluation keys so the two entry
    /// kinds can never collide on one slot.
    pub fn store_score(&self, key: u128, score: &Option<f64>) {
        let Ok(text) = serde_json::to_string(&StoredScore { score: *score }) else {
            return;
        };
        self.commit(key, text);
    }

    fn commit(&self, key: u128, text: String) {
        let tmp = self.root.join(format!(
            "{key:032x}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, self.entry_path(key)).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> DiskStore {
        let dir =
            std::env::temp_dir().join(format!("teamplay-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(&dir).expect("create store dir")
    }

    #[test]
    fn fnv_chain_matches_one_shot() {
        let one = fnv1a128(fnv_offset(), b"hello world");
        let chained = fnv1a128(fnv1a128(fnv_offset(), b"hello "), b"world");
        assert_eq!(one, chained);
        assert_ne!(one, fnv1a128(fnv_offset(), b"hello worlc"));
    }

    #[test]
    fn missing_and_corrupt_entries_are_misses() {
        let store = temp_store("corrupt");
        assert!(store.load(42).is_none());
        fs::write(store.entry_path(42), "{not json").expect("write corrupt entry");
        assert!(store.load(42).is_none());
        let _ = fs::remove_dir_all(store.path());
    }

    #[test]
    fn scores_round_trip_including_recorded_failures() {
        let store = temp_store("scores");
        assert!(store.load_score(11).is_none());
        store.store_score(11, &Some(4.25));
        assert_eq!(store.load_score(11), Some(Some(4.25)));
        store.store_score(12, &None);
        assert_eq!(store.load_score(12), Some(None));
        assert_eq!(store.entries(), 2);
        let _ = fs::remove_dir_all(store.path());
    }

    #[test]
    fn infeasible_entries_round_trip() {
        let store = temp_store("infeasible");
        store.store(7, &None);
        assert_eq!(store.entries(), 1);
        // Outer Some: the entry exists; inner None: recorded failure.
        assert_eq!(store.load(7).map(|e| e.is_none()), Some(true));
        let _ = fs::remove_dir_all(store.path());
    }
}
