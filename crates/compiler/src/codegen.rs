//! PG32 code generation.
//!
//! The base strategy is deliberately simple and certifiable: every IR temp
//! owns a storage home; each IR operation loads its operands, computes, and
//! stores the result. Two refinements sit on top:
//!
//! * **liveness-driven copy coalescing** — copy-related temps whose live
//!   ranges never interfere share one home ([`coalesce_classes`] over
//!   [`crate::dataflow::Liveness`]), so the copy itself emits nothing
//!   and the frame shrinks by the merged slots;
//! * the **register-pinning allocator** — the N most-used storage
//!   classes live permanently in callee-saved registers (r4–r7),
//!   eliminating their loads/stores entirely — the compiler's main
//!   time *and* energy lever, exposed to the multi-objective search.
//!
//! IR blocks map 1:1 to PG32 blocks, so loop-bound flow facts transfer
//! directly from the front-end to the binary-level analyses — the
//! "cross-layer management of ETS properties" of the paper's methodology.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use teamplay_isa::{
    AluOp, Block, BlockId, Cond, DataLayout, Function, Insn, Operand as IsaOperand, Program, Reg,
    Terminator,
};
use teamplay_minic::ast::{BinOp, UnOp};
use teamplay_minic::ir::{CallArg, IrFunction, IrModule, IrOp, IrTerm, MemBase, Operand, Temp};

/// Code-generation failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodegenError {
    /// More than 6 scalar/array parameters.
    TooManyParams(String),
    /// The frame (temps + local arrays) exceeds the 16-bit offset range.
    FrameTooLarge(String),
    /// IR validation failed.
    InvalidIr(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::TooManyParams(name) => {
                write!(f, "function `{name}` has more than 6 parameters")
            }
            CodegenError::FrameTooLarge(name) => {
                write!(
                    f,
                    "function `{name}`: stack frame exceeds encodable offsets"
                )
            }
            CodegenError::InvalidIr(msg) => write!(f, "invalid IR: {msg}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// Code-generation options. The default (no pinning, plain multiplies)
/// matches the unoptimised reference point.
///
/// `mul_shift_add` here is the register-resident counterpart of the IR
/// `mul_shift_add` pass in [`crate::passes::REGISTRY`]: the presets use
/// this codegen variant because it decomposes multiplications without
/// inflating IR temp traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodegenOpts {
    /// Register-pinning level (0, 2 or 4).
    pub pinned_regs: usize,
    /// Decompose multiplications by small constants into register-held
    /// shift/add chains: more cycles, less energy than the power-hungry
    /// multiplier — the instruction-level ETS trade-off knob.
    pub mul_shift_add: bool,
}

impl From<usize> for CodegenOpts {
    fn from(pinned_regs: usize) -> Self {
        CodegenOpts {
            pinned_regs,
            mul_shift_add: false,
        }
    }
}

/// Registers available for pinning (callee-saved by our ABI).
const PIN_POOL: [Reg; 4] = [Reg::R4, Reg::R5, Reg::R6, Reg::R7];

/// Where a temp lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    Slot(u32), // byte offset from SP
    Pinned(Reg),
}

struct Ctx {
    homes: Vec<Home>,
    array_offsets: Vec<u32>, // byte offset from SP per local array
    pinned: Vec<Reg>,
    layout: DataLayout,
    mul_shift_add: bool,
}

fn imm16(v: i32) -> bool {
    i32::from(v as i16) == v
}

/// Emit `dst = value` materialisation.
fn emit_const(insns: &mut Vec<Insn>, dst: Reg, v: i32) {
    if imm16(v) {
        insns.push(Insn::Mov {
            rd: dst,
            src: IsaOperand::Imm(v),
        });
    } else {
        insns.push(Insn::MovImm32 { rd: dst, imm: v });
    }
}

impl Ctx {
    /// Load an IR operand into `dst`. `disp` is the extra byte offset to
    /// apply to SP-relative slots (non-zero only while a call's staging
    /// area is reserved below the frame).
    fn load_operand_disp(&self, insns: &mut Vec<Insn>, op: Operand, dst: Reg, disp: i32) {
        match op {
            Operand::Const(v) => emit_const(insns, dst, v),
            Operand::Temp(t) => match self.homes[t.0 as usize] {
                Home::Pinned(r) => {
                    if r != dst {
                        insns.push(Insn::Mov {
                            rd: dst,
                            src: IsaOperand::Reg(r),
                        });
                    }
                }
                Home::Slot(off) => insns.push(Insn::Ldr {
                    rd: dst,
                    base: Reg::SP,
                    offset: IsaOperand::Imm(off as i32 + disp),
                }),
            },
        }
    }

    /// Load an IR operand into `dst`.
    fn load_operand(&self, insns: &mut Vec<Insn>, op: Operand, dst: Reg) {
        self.load_operand_disp(insns, op, dst, 0);
    }

    /// Store `src` into a temp's home.
    fn store_temp(&self, insns: &mut Vec<Insn>, t: Temp, src: Reg) {
        match self.homes[t.0 as usize] {
            Home::Pinned(r) => {
                if r != src {
                    insns.push(Insn::Mov {
                        rd: r,
                        src: IsaOperand::Reg(src),
                    });
                }
            }
            Home::Slot(off) => insns.push(Insn::Str {
                rs: src,
                base: Reg::SP,
                offset: IsaOperand::Imm(off as i32),
            }),
        }
    }

    /// Compute the base byte address of a memory region into `dst`,
    /// applying `disp` to SP-relative addressing (see
    /// [`Ctx::load_operand_disp`]).
    fn emit_base_address_disp(&self, insns: &mut Vec<Insn>, base: &MemBase, dst: Reg, disp: i32) {
        match base {
            MemBase::Global(name) => {
                let addr = self.layout.address(name).expect("layout covers globals") as i32;
                emit_const(insns, dst, addr);
            }
            MemBase::Local(id) => {
                let off = self.array_offsets[*id as usize] as i32 + disp;
                insns.push(Insn::Mov {
                    rd: dst,
                    src: IsaOperand::Reg(Reg::SP),
                });
                insns.push(Insn::Alu {
                    op: AluOp::Add,
                    rd: dst,
                    rn: dst,
                    src: IsaOperand::Imm(off),
                });
            }
            MemBase::Param(t) => self.load_operand_disp(insns, Operand::Temp(*t), dst, disp),
        }
    }

    /// Compute the base byte address of a memory region into `dst`.
    fn emit_base_address(&self, insns: &mut Vec<Insn>, base: &MemBase, dst: Reg) {
        self.emit_base_address_disp(insns, base, dst, 0);
    }

    /// Compute the full element address `base + index*4` into `dst`,
    /// using `scratch` as an intermediate (must differ from `dst`).
    fn emit_element_address(
        &self,
        insns: &mut Vec<Insn>,
        base: &MemBase,
        index: Operand,
        dst: Reg,
        scratch: Reg,
    ) {
        debug_assert_ne!(dst, scratch);
        self.emit_base_address(insns, base, dst);
        match index {
            Operand::Const(i) => {
                let byte_off = i.wrapping_mul(4);
                if byte_off != 0 {
                    if imm16(byte_off) {
                        insns.push(Insn::Alu {
                            op: AluOp::Add,
                            rd: dst,
                            rn: dst,
                            src: IsaOperand::Imm(byte_off),
                        });
                    } else {
                        insns.push(Insn::MovImm32 {
                            rd: scratch,
                            imm: byte_off,
                        });
                        insns.push(Insn::Alu {
                            op: AluOp::Add,
                            rd: dst,
                            rn: dst,
                            src: IsaOperand::Reg(scratch),
                        });
                    }
                }
            }
            Operand::Temp(_) => {
                self.load_operand(insns, index, scratch);
                insns.push(Insn::Alu {
                    op: AluOp::Lsl,
                    rd: scratch,
                    rn: scratch,
                    src: IsaOperand::Imm(2),
                });
                insns.push(Insn::Alu {
                    op: AluOp::Add,
                    rd: dst,
                    rn: dst,
                    src: IsaOperand::Reg(scratch),
                });
            }
        }
    }
}

fn binop_to_alu(op: BinOp) -> Option<AluOp> {
    Some(match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Orr,
        BinOp::Xor => AluOp::Eor,
        BinOp::Shl => AluOp::Lsl,
        BinOp::Shr => AluOp::Lsr,
        _ => return None,
    })
}

fn binop_to_cond(op: BinOp) -> Option<Cond> {
    Some(match op {
        BinOp::Lt => Cond::Lt,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::Gt,
        BinOp::Ge => Cond::Ge,
        BinOp::Eq => Cond::Eq,
        BinOp::Ne => Cond::Ne,
        _ => return None,
    })
}

/// Every temp mentioned by an IR operation (reads and writes).
fn temps_of_op(op: &IrOp, out: &mut Vec<Temp>) {
    let operand = |o: &Operand, out: &mut Vec<Temp>| {
        if let Operand::Temp(t) = o {
            out.push(*t);
        }
    };
    let base = |m: &MemBase, out: &mut Vec<Temp>| {
        if let MemBase::Param(t) = m {
            out.push(*t);
        }
    };
    match op {
        IrOp::Bin { dst, a, b, .. } => {
            operand(a, out);
            operand(b, out);
            out.push(*dst);
        }
        IrOp::Un { dst, a, .. } => {
            operand(a, out);
            out.push(*dst);
        }
        IrOp::Copy { dst, src } => {
            operand(src, out);
            out.push(*dst);
        }
        IrOp::Load {
            dst,
            base: m,
            index,
        } => {
            operand(index, out);
            base(m, out);
            out.push(*dst);
        }
        IrOp::Store {
            base: m,
            index,
            value,
        } => {
            operand(index, out);
            operand(value, out);
            base(m, out);
        }
        IrOp::Call { dst, args, .. } => {
            if let Some(d) = dst {
                out.push(*d);
            }
            for a in args {
                match a {
                    CallArg::Value(v) => operand(v, out),
                    CallArg::ArrayRef(m) => base(m, out),
                }
            }
        }
        IrOp::Select { dst, cond, t, f } => {
            operand(cond, out);
            operand(t, out);
            operand(f, out);
            out.push(*dst);
        }
        IrOp::In { dst, .. } => out.push(*dst),
        IrOp::Out { value, .. } => operand(value, out),
    }
}

/// Count temp uses for register pinning.
fn usage_counts(f: &IrFunction) -> Vec<u64> {
    let mut counts = vec![0u64; f.temp_count as usize];
    let mut mentioned = Vec::new();
    for b in &f.blocks {
        for op in &b.ops {
            temps_of_op(op, &mut mentioned);
        }
        match &b.term {
            IrTerm::Branch {
                cond: Operand::Temp(t),
                ..
            } => mentioned.push(*t),
            IrTerm::Ret(Some(Operand::Temp(t))) => mentioned.push(*t),
            _ => {}
        }
    }
    for t in mentioned {
        counts[t.0 as usize] += 1;
    }
    counts
}

/// Partition the temps into copy-coalescing classes: two copy-related
/// temps whose live ranges never interfere share one storage home, so
/// the copy between them costs nothing at all (see [`emit_op`]).
///
/// Classic Chaitin-style coalescing over the global [`Liveness`] sets:
/// a backward walk per block records an interference edge from every
/// definition to every temp live across it — except the source of the
/// very copy being defined, whose value is by construction the same —
/// and a union-find then merges each copy pair whose classes are still
/// interference-free, scanning copies in deterministic block/op order.
/// Everything live into the entry block (parameters homed by the
/// prologue, read-before-def temps) counts as defined simultaneously
/// "at entry", so those never collapse onto each other.
///
/// Returns the class representative (lowest member index) per temp.
fn coalesce_classes(f: &IrFunction) -> Vec<usize> {
    use crate::dataflow::{for_each_read, for_each_term_read, for_each_write, BitSet, Liveness};

    let n = f.temp_count as usize;
    let live = Liveness::build(f);
    let mut interferes = vec![BitSet::new(n); n];
    fn add_edge(m: &mut [BitSet], a: usize, b: usize) {
        if a != b {
            m[a].insert(b);
            m[b].insert(a);
        }
    }

    let entry: Vec<usize> = live.live_in(0).iter().collect();
    for (i, &a) in entry.iter().enumerate() {
        for &b in &entry[i + 1..] {
            add_edge(&mut interferes, a, b);
        }
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let mut cur = live.live_out(bi).clone();
        for_each_term_read(&b.term, |t| {
            cur.insert(t.0 as usize);
        });
        for op in b.ops.iter().rev() {
            let copy_src = match op {
                IrOp::Copy {
                    src: Operand::Temp(s),
                    ..
                } => Some(s.0 as usize),
                _ => None,
            };
            for_each_write(op, |d| {
                let di = d.0 as usize;
                // A def clobbers its home even when the def itself is
                // dead, so it interferes with everything live here.
                for l in cur.iter().collect::<Vec<_>>() {
                    if Some(l) != copy_src {
                        add_edge(&mut interferes, di, l);
                    }
                }
                cur.remove(di);
            });
            for_each_read(op, |t| {
                cur.insert(t.0 as usize);
            });
        }
    }

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut parent: Vec<usize> = (0..n).collect();
    // Class-level interference rows and member bitmaps, merged on union.
    let mut class_if = interferes.clone();
    let mut members: Vec<BitSet> = (0..n)
        .map(|t| {
            let mut s = BitSet::new(n);
            s.insert(t);
            s
        })
        .collect();
    for b in &f.blocks {
        for op in &b.ops {
            if let IrOp::Copy {
                dst,
                src: Operand::Temp(s),
            } = op
            {
                let (ra, rb) = (
                    find(&mut parent, dst.0 as usize),
                    find(&mut parent, s.0 as usize),
                );
                if ra == rb || class_if[ra].intersects(&members[rb]) {
                    continue;
                }
                let (keep, drop) = (ra.min(rb), ra.max(rb));
                parent[drop] = keep;
                let (lo, hi) = class_if.split_at_mut(drop);
                lo[keep].union_with(&hi[0]);
                let (lo, hi) = members.split_at_mut(drop);
                lo[keep].union_with(&hi[0]);
            }
        }
    }
    (0..n).map(|t| find(&mut parent, t)).collect()
}

/// The largest argument count among the function's call sites. Argument
/// registers up to this index must stay out of the pinning pool (a 5- or
/// 6-argument call pops into r4/r5).
fn max_call_args(f: &IrFunction) -> usize {
    f.blocks
        .iter()
        .flat_map(|b| &b.ops)
        .filter_map(|op| match op {
            IrOp::Call { args, .. } => Some(args.len()),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// Generate PG32 code for one IR function.
///
/// `pinned_regs` (0, 2 or 4) is the register-pinning level; `layout` must
/// be the layout of the final program's globals.
///
/// # Errors
/// See [`CodegenError`].
pub fn generate_function(
    f: &IrFunction,
    layout: &DataLayout,
    opts: impl Into<CodegenOpts>,
) -> Result<Function, CodegenError> {
    let opts: CodegenOpts = opts.into();
    let pinned_regs = opts.pinned_regs;
    f.validate().map_err(CodegenError::InvalidIr)?;
    if f.params.len() > 6 {
        return Err(CodegenError::TooManyParams(f.name.clone()));
    }
    // Calls with more than 4 arguments pop into r4/r5, so those registers
    // cannot hold pinned temps in this function.
    let pool: Vec<Reg> = PIN_POOL
        .iter()
        .copied()
        .filter(|r| r.index() >= max_call_args(f))
        .collect();
    let pinned_regs = pinned_regs.min(pool.len());

    // Coalesce copy-related temps into storage classes, then pin the
    // most-used classes (summed member usage, lowest-member tie-break)
    // and give every remaining class one stack slot. Copies between
    // temps of one class vanish at emission.
    let class_of = coalesce_classes(f);
    let counts = usage_counts(f);
    let n = f.temp_count as usize;
    let mut class_usage = vec![0u64; n];
    for t in 0..n {
        class_usage[class_of[t]] += counts[t];
    }
    let mut roots: Vec<usize> = (0..n).filter(|&t| class_of[t] == t).collect();
    roots.sort_by_key(|&r| (std::cmp::Reverse(class_usage[r]), r));
    let mut root_home = vec![None; n];
    let mut pinned = Vec::new();
    for (rank, &r) in roots.iter().enumerate() {
        if rank >= pinned_regs || class_usage[r] == 0 {
            break;
        }
        let reg = pool[rank];
        root_home[r] = Some(Home::Pinned(reg));
        pinned.push(reg);
    }
    pinned.sort_by_key(|r| r.index());

    // Slot assignment for the remaining classes, in representative order.
    let mut next_slot = 0u32;
    for r in 0..n {
        if class_of[r] == r && root_home[r].is_none() {
            root_home[r] = Some(Home::Slot(next_slot));
            next_slot += 4;
        }
    }
    let homes: Vec<Home> = (0..n)
        .map(|t| root_home[class_of[t]].expect("every class is homed"))
        .collect();
    let mut array_offsets = Vec::with_capacity(f.local_arrays.len());
    for len in &f.local_arrays {
        array_offsets.push(next_slot);
        next_slot += len * 4;
    }
    let frame_size = next_slot;
    if frame_size > 32_000 {
        return Err(CodegenError::FrameTooLarge(f.name.clone()));
    }

    let ctx = Ctx {
        homes,
        array_offsets,
        pinned: pinned.clone(),
        layout: layout.clone(),
        mul_shift_add: opts.mul_shift_add,
    };

    let mut blocks: Vec<Block> = Vec::with_capacity(f.blocks.len());
    for (bi, irb) in f.blocks.iter().enumerate() {
        let mut insns: Vec<Insn> = Vec::new();

        // Prologue on the entry block.
        if bi == 0 {
            let mut push_list = ctx.pinned.clone();
            push_list.push(Reg::LR);
            insns.push(Insn::Push { regs: push_list });
            if frame_size > 0 {
                insns.push(Insn::Alu {
                    op: AluOp::Sub,
                    rd: Reg::SP,
                    rn: Reg::SP,
                    src: IsaOperand::Imm(frame_size as i32),
                });
            }
            // Home the incoming arguments (r0..r5).
            for (i, p) in f.params.iter().enumerate() {
                let arg_reg = Reg::from_index(i).expect("≤6 params");
                ctx.store_temp(&mut insns, p.temp, arg_reg);
            }
        }

        for op in &irb.ops {
            emit_op(&ctx, &mut insns, op);
        }

        let terminator = match &irb.term {
            IrTerm::Jump(t) => Terminator::Branch(BlockId(t.0)),
            IrTerm::Branch {
                cond,
                taken,
                fallthrough,
            } => {
                ctx.load_operand(&mut insns, *cond, Reg::R1);
                insns.push(Insn::Cmp {
                    rn: Reg::R1,
                    src: IsaOperand::Imm(0),
                });
                Terminator::CondBranch {
                    cond: Cond::Ne,
                    taken: BlockId(taken.0),
                    fallthrough: BlockId(fallthrough.0),
                }
            }
            IrTerm::Ret(v) => {
                if let Some(v) = v {
                    ctx.load_operand(&mut insns, *v, Reg::R0);
                }
                if frame_size > 0 {
                    insns.push(Insn::Alu {
                        op: AluOp::Add,
                        rd: Reg::SP,
                        rn: Reg::SP,
                        src: IsaOperand::Imm(frame_size as i32),
                    });
                }
                let mut pop_list = ctx.pinned.clone();
                pop_list.push(Reg::LR);
                insns.push(Insn::Pop { regs: pop_list });
                Terminator::Return
            }
        };
        blocks.push(Block { insns, terminator });
    }

    // Annotation/inference bounds, intersected with the trip counts the
    // unroll recogniser can *prove* from IR constants — and with the
    // value-graph prover, which additionally resolves limits/inits/steps
    // that flow through dominating def chains of temps: a provable count
    // tightens an over-wide annotation (`bound(64)` on an 8-trip loop)
    // and bounds counted loops that carry no annotation at all, so the
    // IPET analysis downstream sees the sharpest available flow facts.
    let mut loop_bounds: std::collections::BTreeMap<BlockId, u32> = f
        .loop_bounds
        .iter()
        .map(|(b, n)| (BlockId(b.0), *n))
        .collect();
    for (header, trips) in crate::passes::proven_loop_bounds(f)
        .into_iter()
        .chain(crate::passes::value_graph_loop_bounds(f))
    {
        loop_bounds
            .entry(BlockId(header.0))
            .and_modify(|b| *b = (*b).min(trips))
            .or_insert(trips);
    }

    Ok(Function {
        name: f.name.clone(),
        blocks,
        loop_bounds,
        frame_size,
    })
}

/// Small positive multiplier eligible for shift/add decomposition.
fn decomposable_multiplier(c: i32) -> bool {
    (2..=255).contains(&c) && c.count_ones() <= 3
}

fn emit_op(ctx: &Ctx, insns: &mut Vec<Insn>, op: &IrOp) {
    match op {
        IrOp::Bin { op, dst, a, b } => {
            // Energy-saving multiply decomposition: the whole chain stays
            // in registers, so the only cost is the extra ALU cycles.
            if ctx.mul_shift_add && *op == BinOp::Mul {
                let (x, c) = match (a, b) {
                    (x, Operand::Const(c)) if decomposable_multiplier(*c) => (Some(*x), *c),
                    (Operand::Const(c), x) if decomposable_multiplier(*c) => (Some(*x), *c),
                    _ => (None, 0),
                };
                if let Some(x) = x {
                    ctx.load_operand(insns, x, Reg::R1);
                    let mut first = true;
                    for bit in 0..8 {
                        if c & (1 << bit) == 0 {
                            continue;
                        }
                        if first {
                            insns.push(Insn::Alu {
                                op: AluOp::Lsl,
                                rd: Reg::R0,
                                rn: Reg::R1,
                                src: IsaOperand::Imm(bit),
                            });
                            first = false;
                        } else {
                            insns.push(Insn::Alu {
                                op: AluOp::Lsl,
                                rd: Reg::R2,
                                rn: Reg::R1,
                                src: IsaOperand::Imm(bit),
                            });
                            insns.push(Insn::Alu {
                                op: AluOp::Add,
                                rd: Reg::R0,
                                rn: Reg::R0,
                                src: IsaOperand::Reg(Reg::R2),
                            });
                        }
                    }
                    ctx.store_temp(insns, *dst, Reg::R0);
                    return;
                }
            }
            if let Some(alu) = binop_to_alu(*op) {
                ctx.load_operand(insns, *a, Reg::R1);
                // Immediate second operand when it fits.
                match b {
                    Operand::Const(v) if imm16(*v) && !matches!(op, BinOp::Shl | BinOp::Shr) => {
                        insns.push(Insn::Alu {
                            op: alu,
                            rd: Reg::R0,
                            rn: Reg::R1,
                            src: IsaOperand::Imm(*v),
                        });
                    }
                    Operand::Const(v)
                        if matches!(op, BinOp::Shl | BinOp::Shr) && (0..32).contains(v) =>
                    {
                        insns.push(Insn::Alu {
                            op: alu,
                            rd: Reg::R0,
                            rn: Reg::R1,
                            src: IsaOperand::Imm(*v),
                        });
                    }
                    _ => {
                        ctx.load_operand(insns, *b, Reg::R2);
                        insns.push(Insn::Alu {
                            op: alu,
                            rd: Reg::R0,
                            rn: Reg::R1,
                            src: IsaOperand::Reg(Reg::R2),
                        });
                    }
                }
                ctx.store_temp(insns, *dst, Reg::R0);
            } else if let Some(cond) = binop_to_cond(*op) {
                ctx.load_operand(insns, *a, Reg::R1);
                ctx.load_operand(insns, *b, Reg::R2);
                insns.push(Insn::Cmp {
                    rn: Reg::R1,
                    src: IsaOperand::Reg(Reg::R2),
                });
                insns.push(Insn::Mov {
                    rd: Reg::R1,
                    src: IsaOperand::Imm(1),
                });
                insns.push(Insn::Mov {
                    rd: Reg::R2,
                    src: IsaOperand::Imm(0),
                });
                insns.push(Insn::Csel {
                    cond,
                    rd: Reg::R0,
                    rt: Reg::R1,
                    rf: Reg::R2,
                });
                ctx.store_temp(insns, *dst, Reg::R0);
            } else {
                // LogAnd/LogOr appear only pre-lowering; treat as bitwise
                // on normalised 0/1 is NOT equivalent, so they are
                // rejected by IR validation upstream. Emit a trap-like
                // no-op to keep the match exhaustive.
                unreachable!("logical operators are lowered to control flow");
            }
        }
        IrOp::Un { op, dst, a } => {
            match op {
                UnOp::Neg => {
                    ctx.load_operand(insns, *a, Reg::R1);
                    insns.push(Insn::Mov {
                        rd: Reg::R2,
                        src: IsaOperand::Imm(0),
                    });
                    insns.push(Insn::Alu {
                        op: AluOp::Sub,
                        rd: Reg::R0,
                        rn: Reg::R2,
                        src: IsaOperand::Reg(Reg::R1),
                    });
                }
                UnOp::BitNot => {
                    ctx.load_operand(insns, *a, Reg::R1);
                    insns.push(Insn::Alu {
                        op: AluOp::Eor,
                        rd: Reg::R0,
                        rn: Reg::R1,
                        src: IsaOperand::Imm(-1),
                    });
                }
                UnOp::LogNot => {
                    ctx.load_operand(insns, *a, Reg::R1);
                    insns.push(Insn::Cmp {
                        rn: Reg::R1,
                        src: IsaOperand::Imm(0),
                    });
                    insns.push(Insn::Mov {
                        rd: Reg::R1,
                        src: IsaOperand::Imm(1),
                    });
                    insns.push(Insn::Mov {
                        rd: Reg::R2,
                        src: IsaOperand::Imm(0),
                    });
                    insns.push(Insn::Csel {
                        cond: Cond::Eq,
                        rd: Reg::R0,
                        rt: Reg::R1,
                        rf: Reg::R2,
                    });
                }
            }
            ctx.store_temp(insns, *dst, Reg::R0);
        }
        IrOp::Copy { dst, src } => {
            // A copy between coalesced temps is storage-identical.
            if let Operand::Temp(s) = src {
                if ctx.homes[s.0 as usize] == ctx.homes[dst.0 as usize] {
                    return;
                }
            }
            ctx.load_operand(insns, *src, Reg::R0);
            ctx.store_temp(insns, *dst, Reg::R0);
        }
        IrOp::Load { dst, base, index } => {
            ctx.emit_element_address(insns, base, *index, Reg::R1, Reg::R2);
            insns.push(Insn::Ldr {
                rd: Reg::R0,
                base: Reg::R1,
                offset: IsaOperand::Imm(0),
            });
            ctx.store_temp(insns, *dst, Reg::R0);
        }
        IrOp::Store { base, index, value } => {
            ctx.emit_element_address(insns, base, *index, Reg::R1, Reg::R2);
            ctx.load_operand(insns, *value, Reg::R0);
            insns.push(Insn::Str {
                rs: Reg::R0,
                base: Reg::R1,
                offset: IsaOperand::Imm(0),
            });
        }
        IrOp::Call { dst, func, args } => {
            // Stage arguments in a scratch area below the frame so that
            // loading argument k cannot clobber argument registers already
            // populated, and SP-relative slots stay addressable via a
            // constant displacement.
            let k = args.len() as i32;
            if k > 0 {
                insns.push(Insn::Alu {
                    op: AluOp::Sub,
                    rd: Reg::SP,
                    rn: Reg::SP,
                    src: IsaOperand::Imm(4 * k),
                });
                for (i, a) in args.iter().enumerate() {
                    match a {
                        CallArg::Value(v) => ctx.load_operand_disp(insns, *v, Reg::R1, 4 * k),
                        CallArg::ArrayRef(m) => {
                            ctx.emit_base_address_disp(insns, m, Reg::R1, 4 * k)
                        }
                    }
                    insns.push(Insn::Str {
                        rs: Reg::R1,
                        base: Reg::SP,
                        offset: IsaOperand::Imm(4 * i as i32),
                    });
                }
                for i in 0..args.len() {
                    insns.push(Insn::Ldr {
                        rd: Reg::from_index(i).expect("at most 6 args"),
                        base: Reg::SP,
                        offset: IsaOperand::Imm(4 * i as i32),
                    });
                }
                insns.push(Insn::Alu {
                    op: AluOp::Add,
                    rd: Reg::SP,
                    rn: Reg::SP,
                    src: IsaOperand::Imm(4 * k),
                });
            }
            insns.push(Insn::Call { func: func.clone() });
            if let Some(d) = dst {
                ctx.store_temp(insns, *d, Reg::R0);
            }
        }
        IrOp::Select { dst, cond, t, f } => {
            ctx.load_operand(insns, *cond, Reg::R1);
            ctx.load_operand(insns, *t, Reg::R2);
            ctx.load_operand(insns, *f, Reg::R3);
            insns.push(Insn::Cmp {
                rn: Reg::R1,
                src: IsaOperand::Imm(0),
            });
            insns.push(Insn::Csel {
                cond: Cond::Ne,
                rd: Reg::R0,
                rt: Reg::R2,
                rf: Reg::R3,
            });
            ctx.store_temp(insns, *dst, Reg::R0);
        }
        IrOp::In { dst, port } => {
            insns.push(Insn::In {
                rd: Reg::R0,
                port: *port,
            });
            ctx.store_temp(insns, *dst, Reg::R0);
        }
        IrOp::Out { port, value } => {
            ctx.load_operand(insns, *value, Reg::R1);
            insns.push(Insn::Out {
                rs: Reg::R1,
                port: *port,
            });
        }
    }
}

/// Generate a full PG32 program from an IR module, applying the same
/// pinning level to every function.
///
/// # Errors
/// See [`CodegenError`].
pub fn generate_program(
    module: &IrModule,
    opts: impl Into<CodegenOpts>,
) -> Result<Program, CodegenError> {
    let opts: CodegenOpts = opts.into();
    let mut program = Program::new();
    for (name, words) in &module.globals {
        program.globals.insert(name.clone(), words.clone());
    }
    let layout = DataLayout::of_program(&program);
    for f in &module.functions {
        program.add_function(generate_function(f, &layout, opts)?);
    }
    program.validate().map_err(CodegenError::InvalidIr)?;
    Ok(program)
}

/// Per-function pinning levels (used by the variant search, which tunes
/// one task while callees keep their own configurations).
pub fn generate_program_with(
    module: &IrModule,
    per_function: &HashMap<String, CodegenOpts>,
    default_opts: CodegenOpts,
) -> Result<Program, CodegenError> {
    let mut program = Program::new();
    for (name, words) in &module.globals {
        program.globals.insert(name.clone(), words.clone());
    }
    let layout = DataLayout::of_program(&program);
    for f in &module.functions {
        let opts = per_function.get(&f.name).copied().unwrap_or(default_opts);
        program.add_function(generate_function(f, &layout, opts)?);
    }
    program.validate().map_err(CodegenError::InvalidIr)?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_minic::interp::{Interp, RecordingPorts};
    use teamplay_sim::{Machine, RecordingDevice};

    /// Differential: AST interpreter vs compiled code on the machine.
    fn check_compiled(src: &str, func: &str, argsets: &[Vec<i32>], pinned: usize) {
        let program_ast = teamplay_minic::parse_and_check(src).expect("front-end");
        let module = compile_to_ir(src).expect("front-end");
        let program = generate_program(&module, pinned).expect("codegen");
        let mut machine = Machine::new(program).expect("load");
        for args in argsets {
            let mut interp = Interp::new(&program_ast, RecordingPorts::new(), 50_000_000);
            let expected = interp.call(func, args).expect("oracle").return_value;
            machine.reset_data();
            let mut dev = RecordingDevice::new();
            let got = machine.call(func, args, &mut dev).expect("machine run");
            assert_eq!(
                Some(got.return_value),
                expected,
                "pinned={pinned}, diverged on {func}({args:?})"
            );
        }
    }

    const KERNEL: &str = "
        int weights[8] = {3, 1, 4, 1, 5, 9, 2, 6};
        int dot(int a[], int n) {
            int s = 0;
            /*@ loop bound(8) @*/
            for (int i = 0; i < n; i = i + 1) { s = s + a[i] * weights[i]; }
            return s;
        }
        int f(int n) {
            int buf[8];
            for (int i = 0; i < 8; i = i + 1) { buf[i] = i * i - 3; }
            return dot(buf, n);
        }";

    #[test]
    fn straight_line_matches_oracle() {
        for pinned in [0, 2, 4] {
            check_compiled(
                "int f(int a, int b) { return (a + b) * (a - b) / 3 % 7 ^ (a << 2) ^ (b >> 1); }",
                "f",
                &[vec![10, 3], vec![-5, 9], vec![0, 0], vec![i32::MAX, 1]],
                pinned,
            );
        }
    }

    #[test]
    fn control_flow_matches_oracle() {
        for pinned in [0, 4] {
            check_compiled(
                "int f(int x) {
                    int r = 0;
                    if (x > 10 && x < 100) { r = 1; }
                    else if (!(x == 5) || x >= -3) { r = 2; } else { r = 3; }
                    while (x > 0) { x = x - 7; r = r + x; }
                    return r * 10 + x;
                }",
                "f",
                &[vec![50], vec![5], vec![-10], vec![0], vec![101]],
                pinned,
            );
        }
    }

    #[test]
    fn arrays_and_calls_match_oracle() {
        for pinned in [0, 2, 4] {
            check_compiled(KERNEL, "f", &[vec![0], vec![4], vec![8]], pinned);
        }
    }

    #[test]
    fn unary_and_comparisons_match_oracle() {
        check_compiled(
            "int f(int x, int y) { return (-x + ~y) * (!x + (x < y) + (x == y) * 2); }",
            "f",
            &[vec![0, 0], vec![3, -3], vec![-7, 7], vec![1, 1]],
            2,
        );
    }

    #[test]
    fn ports_match_oracle() {
        let src = "int f() { int x = __in(2); __out(5, x * 3); return x + 1; }";
        let program_ast = teamplay_minic::parse_and_check(src).expect("front-end");
        let module = compile_to_ir(src).expect("front-end");
        let program = generate_program(&module, 2).expect("codegen");
        let mut machine = Machine::new(program).expect("load");
        let mut oracle_ports = RecordingPorts::new();
        oracle_ports.queue(2, [14]);
        let mut interp = Interp::new(&program_ast, oracle_ports, 10_000);
        let expected = interp.call("f", &[]).expect("oracle").return_value;
        let expected_out = interp.into_ports().outputs;
        let mut dev = RecordingDevice::new();
        dev.queue(2, [14]);
        let got = machine.call("f", &[], &mut dev).expect("run");
        assert_eq!(Some(got.return_value), expected);
        assert_eq!(dev.outputs, expected_out);
    }

    #[test]
    fn pinning_reduces_cycles_and_energy() {
        let module = compile_to_ir(KERNEL).expect("front-end");
        let p0 = generate_program(&module, 0).expect("codegen 0");
        let p4 = generate_program(&module, 4).expect("codegen 4");
        let mut m0 = Machine::new(p0).expect("load 0");
        let mut m4 = Machine::new(p4).expect("load 4");
        let r0 = m0
            .call("f", &[8], &mut RecordingDevice::new())
            .expect("run 0");
        let r4 = m4
            .call("f", &[8], &mut RecordingDevice::new())
            .expect("run 4");
        assert_eq!(r0.return_value, r4.return_value);
        assert!(
            r4.cycles < r0.cycles,
            "pinning must save cycles: {} vs {}",
            r4.cycles,
            r0.cycles
        );
        assert!(r4.energy_pj < r0.energy_pj, "pinning must save energy");
    }

    #[test]
    fn six_args_supported_seven_rejected() {
        let src6 = "int f(int a, int b, int c, int d, int e, int g) { return a+b+c+d+e+g; }";
        check_compiled(src6, "f", &[vec![1, 2, 3, 4, 5, 6]], 0);
        let module =
            compile_to_ir("int f(int a, int b, int c, int d, int e, int g, int h) { return a+h; }")
                .expect("front-end");
        assert!(matches!(
            generate_program(&module, 0),
            Err(CodegenError::TooManyParams(_))
        ));
    }

    #[test]
    fn loop_bounds_transfer_to_binary() {
        let module = compile_to_ir(
            "int f() { int s = 0; for (int i = 0; i < 12; i = i + 1) { s = s + i; } return s; }",
        )
        .expect("front-end");
        let program = generate_program(&module, 0).expect("codegen");
        let f = program.function("f").expect("f");
        assert_eq!(
            f.loop_bounds.values().copied().collect::<Vec<_>>(),
            vec![12]
        );
    }

    #[test]
    fn wcet_bounds_simulated_cycles() {
        use teamplay_isa::CycleModel;
        let module = compile_to_ir(KERNEL).expect("front-end");
        for pinned in [0, 2, 4] {
            let program = generate_program(&module, pinned).expect("codegen");
            let report =
                teamplay_wcet::analyze_program(&program, &CycleModel::pg32()).expect("wcet");
            let wcet = report.wcet_cycles("f").expect("f");
            let mut machine = Machine::new(program).expect("load");
            for n in [0, 3, 8] {
                machine.reset_data();
                let r = machine
                    .call("f", &[n], &mut RecordingDevice::new())
                    .expect("run");
                assert!(
                    wcet >= r.cycles,
                    "pinned={pinned} n={n}: WCET {wcet} < measured {}",
                    r.cycles
                );
            }
        }
    }

    #[test]
    fn wcec_bounds_measured_energy() {
        use teamplay_energy::{analyze_program_energy, IsaEnergyModel};
        use teamplay_isa::CycleModel;
        let module = compile_to_ir(KERNEL).expect("front-end");
        let program = generate_program(&module, 2).expect("codegen");
        let report = analyze_program_energy(
            &program,
            &IsaEnergyModel::pg32_datasheet(),
            &CycleModel::pg32(),
        )
        .expect("wcec");
        let wcec = report.wcec_pj("f").expect("f");
        let mut machine = Machine::new(program).expect("load");
        for n in [0, 3, 8] {
            machine.reset_data();
            let r = machine
                .call("f", &[n], &mut RecordingDevice::new())
                .expect("run");
            assert!(
                wcec >= r.energy_pj,
                "WCEC {wcec} < measured {}",
                r.energy_pj
            );
        }
    }
}
