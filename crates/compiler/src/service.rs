//! Batched compile front-end: the toolchain as a service.
//!
//! [`compile_many`] takes a stream of module+contract jobs — each an IR
//! module, the task functions to search, and a search budget — and
//! shards them across a [`minipool`] pool with one shared persistent
//! [`DiskStore`]. Identical jobs (same IR, tasks, budget, and seed) are
//! deduplicated by content hash before any work is scheduled, so a
//! fleet of clients submitting the same module costs one search.
//!
//! Determinism: the returned fronts are byte-identical at any pool
//! width and for any store state (warm entries replay exactly what a
//! cold compile would produce). The *disk* counters in [`BatchStats`]
//! are the one timing-dependent observable — concurrent jobs over the
//! same module race benignly for who writes a store entry first.

use crate::driver::{copy_cache_counters, pareto_search_with_cache, EvalCache, ParetoFront};
use crate::fpa::{FpaConfig, SearchStats};
use crate::passes::group_indices_by_key;
use crate::store::{self, DiskStore};
use minipool::Pool;
use serde::{Deserialize, Serialize};
use teamplay_energy::IsaEnergyModel;
use teamplay_isa::CycleModel;
use teamplay_minic::ir::IrModule;

/// One unit of batched work: search Pareto fronts for `tasks` within
/// `ir` under one FPA budget.
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// Caller-chosen identifier, echoed in the matching [`JobResult`]
    /// (not part of the dedup key — two ids with identical work share
    /// one search).
    pub id: String,
    /// The module to compile.
    pub ir: IrModule,
    /// Task functions to search fronts for, in order.
    pub tasks: Vec<String>,
    /// Search budget and parameters.
    pub fpa: FpaConfig,
    /// Base RNG seed; task `t` searches with `seed + t`.
    pub seed: u64,
}

/// The fronts of one [`CompileJob`], in the job's task order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's [`CompileJob::id`].
    pub id: String,
    /// `(task, front)` per requested task.
    pub fronts: Vec<(String, ParetoFront)>,
}

/// Batch-level instrumentation of one [`compile_many`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs actually searched (after content-hash dedup).
    pub unique_jobs: usize,
    /// Fraction of submitted jobs answered by another job's search
    /// (`(jobs - unique_jobs) / jobs`; 0 for an empty batch).
    pub dedup_rate: f64,
    /// Search counters merged across the unique jobs (cache tiers
    /// included; disk counters are timing-dependent across concurrent
    /// jobs sharing a store).
    pub search: SearchStats,
}

/// Compile a batch of jobs on `pool`, deduplicating identical jobs and
/// optionally warm-starting every search from (and spilling back to)
/// one shared persistent store.
///
/// Each unique job evaluates through its own [`EvalCache`] — per-task
/// searches within one job share compiles — while `disk` (when given)
/// is shared by *all* jobs, so jobs over the same module also share
/// work across job boundaries and across processes. Results for
/// deduplicated jobs are cloned from their representative (cheap:
/// compiled programs are `Arc`-shared).
pub fn compile_many(
    pool: &Pool,
    jobs: &[CompileJob],
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    disk: Option<&DiskStore>,
) -> (Vec<JobResult>, BatchStats) {
    let groups = group_indices_by_key(
        jobs.iter()
            .map(|job| {
                store::hash_json(
                    store::fnv_offset(),
                    &(&job.ir, &job.tasks, &job.fpa, job.seed),
                )
            })
            .collect::<Vec<_>>(),
    );
    let reps: Vec<&CompileJob> = groups.iter().map(|g| &jobs[g[0]]).collect();
    let inner = pool.split_across(reps.len());
    let searched = pool.par_map(&reps, |_, job| {
        let cache = match disk {
            Some(disk) => EvalCache::with_store(&job.ir, cycle_model, energy_model, disk),
            None => EvalCache::new(&job.ir, cycle_model, energy_model),
        };
        let mut stats = SearchStats::default();
        let fronts: Vec<(String, ParetoFront)> = job
            .tasks
            .iter()
            .enumerate()
            .map(|(t, task)| {
                let front = pareto_search_with_cache(
                    &inner,
                    &cache,
                    task,
                    job.fpa,
                    job.seed.wrapping_add(t as u64),
                );
                stats.evaluations += front.stats.evaluations;
                stats.generations += front.stats.generations;
                (task.clone(), front)
            })
            .collect();
        copy_cache_counters(&mut stats, &cache);
        (fronts, stats)
    });

    let mut results: Vec<Option<JobResult>> = jobs.iter().map(|_| None).collect();
    let mut merged = SearchStats::default();
    for (group, (fronts, stats)) in groups.iter().zip(searched) {
        merged.evaluations += stats.evaluations;
        merged.generations += stats.generations;
        merged.cache_hits += stats.cache_hits;
        merged.cache_misses += stats.cache_misses;
        merged.disk_hits += stats.disk_hits;
        merged.disk_misses += stats.disk_misses;
        for &i in group {
            results[i] = Some(JobResult {
                id: jobs[i].id.clone(),
                fronts: fronts.clone(),
            });
        }
    }
    let results: Vec<JobResult> = results
        .into_iter()
        .map(|r| r.expect("every job grouped"))
        .collect();

    let stats = BatchStats {
        jobs: jobs.len(),
        unique_jobs: reps.len(),
        dedup_rate: if jobs.is_empty() {
            0.0
        } else {
            (jobs.len() - reps.len()) as f64 / jobs.len() as f64
        },
        search: merged,
    };
    (results, stats)
}
