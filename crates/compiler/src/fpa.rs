//! Multi-objective Flower Pollination Algorithm (FPA).
//!
//! Paper ref \[5\] ("Multi-Objective Optimization for the Compiler of
//! Real-Time Systems based on Flower Pollination Algorithm", SCOPES '19)
//! drives WCC's optimisation-sequence search with FPA; this module is
//! that search engine. Genomes are points in `[0,1]^d` that the caller
//! decodes into compiler configurations; the algorithm alternates
//!
//! * **global pollination** — a Lévy flight towards a randomly chosen
//!   leader from the non-dominated archive (long, heavy-tailed jumps),
//! * **local pollination** — uniform mixing of two population members,
//!
//! and maintains a Pareto archive pruned by crowding distance.
//!
//! # Batched generations and the determinism contract
//!
//! Each generation is processed in three phases so that candidate
//! evaluation — by far the expensive step when genomes decode to full
//! compile + WCET + WCEC analyses — can fan out over a
//! [`minipool::Pool`]:
//!
//! 1. **Draw** — ALL randomness for the generation is drawn up front on
//!    the single-threaded seeded RNG, in population-index order: every
//!    candidate proposal (Lévy/local moves against the archive as frozen
//!    at generation start) and every 0.35 acceptance draw, whether or not
//!    the draw ends up being consulted.
//! 2. **Evaluate** — the candidate batch is mapped through the `Sync`
//!    eval closure with [`minipool::Pool::par_map`], which returns
//!    results in index order regardless of pool width.
//! 3. **Apply** — archive insertions and population acceptance updates
//!    are applied sequentially in index order.
//!
//! Because no phase observes scheduling order, [`MultiObjectiveFpa::run_on`]
//! returns **bit-identical** outcomes for any pool size given the same
//! seed and a deterministic eval — and is provably identical to a
//! sequential run (pool of 1) of the same batched algorithm. The archive
//! a generation's proposals lean on is the one from the *previous*
//! generation's end, which is what makes intra-generation evaluation
//! order irrelevant.

use minipool::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpaConfig {
    /// Population size.
    pub population: usize,
    /// Iterations (generations).
    pub iterations: usize,
    /// Probability of global (vs local) pollination per move.
    pub switch_prob: f64,
    /// Maximum archive size (crowding-distance pruned).
    pub archive_cap: usize,
    /// Lévy exponent λ (1 < λ ≤ 3; ref \[5\] uses 1.5).
    pub levy_lambda: f64,
    /// Global step scale.
    pub step_scale: f64,
}

impl FpaConfig {
    /// The setting used by the compiler searches: small but effective.
    pub fn standard() -> FpaConfig {
        FpaConfig {
            population: 16,
            iterations: 12,
            switch_prob: 0.8,
            archive_cap: 24,
            levy_lambda: 1.5,
            step_scale: 0.12,
        }
    }

    /// A smoke-test-sized configuration.
    pub fn tiny() -> FpaConfig {
        FpaConfig {
            population: 6,
            iterations: 4,
            ..FpaConfig::standard()
        }
    }
}

impl Default for FpaConfig {
    fn default() -> Self {
        FpaConfig::standard()
    }
}

/// A non-dominated solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The genome in `[0,1]^d`.
    pub genome: Vec<f64>,
    /// Objective values (all minimised).
    pub objectives: Vec<f64>,
}

/// `a` dominates `b` (all objectives ≤, at least one <).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Instrumentation of one search run.
///
/// `evaluations` and `generations` are filled by the FPA itself; the
/// cache counters are zero unless the eval pipeline is memoized (see
/// `pareto_search` in the driver, which copies its [`EvalCache`]'s
/// counters here — `EvalCache` in `crate::driver`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Eval-closure invocations (population init + one per candidate).
    pub evaluations: usize,
    /// Generations processed.
    pub generations: usize,
    /// Memoized evaluations answered from cache (0 when uncached).
    pub cache_hits: usize,
    /// Memoized evaluations that had to compile + analyse (0 when
    /// uncached).
    pub cache_misses: usize,
    /// Cache misses answered from the persistent disk store without
    /// compiling (0 unless the cache spills to a
    /// `crate::store::DiskStore`).
    pub disk_hits: usize,
    /// Cache misses that actually compiled + analysed and were written
    /// back to the disk store (0 when no store is attached; equals
    /// `cache_misses` on a fully cold store).
    pub disk_misses: usize,
}

/// Search outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpaOutcome {
    /// The final non-dominated archive.
    pub archive: Vec<ParetoPoint>,
    /// Run instrumentation (evaluation counts, cache behaviour).
    pub stats: SearchStats,
}

/// The multi-objective FPA driver.
#[derive(Debug, Clone)]
pub struct MultiObjectiveFpa {
    config: FpaConfig,
}

impl MultiObjectiveFpa {
    /// Create a driver with the given parameters.
    pub fn new(config: FpaConfig) -> MultiObjectiveFpa {
        MultiObjectiveFpa { config }
    }

    /// Run the search on the process-wide [`minipool::global`] pool.
    /// `eval` maps a genome to its objective vector, or `None` for
    /// infeasible genomes (they are discarded). Deterministic for a
    /// fixed seed and deterministic `eval`, whatever the pool width —
    /// see the module docs for the batched-generation contract.
    pub fn run(
        &self,
        dims: usize,
        seed: u64,
        eval: impl Fn(&[f64]) -> Option<Vec<f64>> + Sync,
    ) -> FpaOutcome {
        self.run_on(minipool::global(), dims, seed, eval)
    }

    /// [`MultiObjectiveFpa::run`] on an explicit pool (pass
    /// `Pool::new(1)` to force a sequential run).
    pub fn run_on(
        &self,
        pool: &Pool,
        dims: usize,
        seed: u64,
        eval: impl Fn(&[f64]) -> Option<Vec<f64>> + Sync,
    ) -> FpaOutcome {
        self.run_on_seeded(pool, dims, seed, &[], eval)
    }

    /// [`MultiObjectiveFpa::run_on`] with caller-supplied *seed genomes*
    /// mixed into the initial population (after the two corner points,
    /// before the random fill, capped at the population size). Seeding a
    /// known-good genome — e.g. an application's tuned pipeline encoded
    /// via `CompilerConfig::to_genome` — starts the search from that
    /// point instead of the corners, so its objectives are on the
    /// archive from generation 0 onward. With `seeds` empty this is
    /// exactly [`MultiObjectiveFpa::run_on`]: the RNG stream, evaluation
    /// count and pool-width bit-identity contract are unchanged.
    pub fn run_on_seeded(
        &self,
        pool: &Pool,
        dims: usize,
        seed: u64,
        seeds: &[Vec<f64>],
        eval: impl Fn(&[f64]) -> Option<Vec<f64>> + Sync,
    ) -> FpaOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = SearchStats::default();

        // Initial population: corner points, then seed genomes (resized
        // and clamped into `[0,1]^dims`), then uniform random fill.
        let mut population: Vec<Vec<f64>> = Vec::with_capacity(cfg.population);
        population.push(vec![0.0; dims]);
        population.push(vec![1.0; dims]);
        for s in seeds
            .iter()
            .take(cfg.population.saturating_sub(population.len()))
        {
            let mut g = s.clone();
            g.resize(dims, 0.0);
            for x in &mut g {
                *x = x.clamp(0.0, 1.0);
            }
            population.push(g);
        }
        while population.len() < cfg.population {
            population.push((0..dims).map(|_| rng.gen_range(0.0..1.0)).collect());
        }

        let mut archive: Vec<ParetoPoint> = Vec::new();
        let initial = pool.par_map(&population, |_, genome| eval(genome));
        stats.evaluations += initial.len();
        let mut scores: Vec<Option<Vec<f64>>> = Vec::with_capacity(population.len());
        for (genome, obj) in population.iter().zip(initial) {
            // A non-finite objective vector is demoted to infeasible: it
            // may neither enter the archive nor linger in `scores` where
            // later dominance comparisons would consult it.
            let feasible = match &obj {
                Some(o) => insert_archive(&mut archive, genome, o, cfg.archive_cap).is_ok(),
                None => false,
            };
            scores.push(if feasible { obj } else { None });
        }

        for _iter in 0..cfg.iterations {
            stats.generations += 1;

            // Phase 1 — draw the whole generation's randomness in index
            // order against the archive as of generation start. The 0.35
            // acceptance draw happens unconditionally so the RNG stream
            // does not depend on evaluation results.
            let moves: Vec<(Vec<f64>, bool)> = (0..population.len())
                .map(|i| {
                    let candidate: Vec<f64> = if rng.gen_bool(cfg.switch_prob)
                        && !archive.is_empty()
                    {
                        // Global pollination: Lévy flight toward an
                        // archive leader.
                        let leader = &archive[rng.gen_range(0..archive.len())].genome;
                        population[i]
                            .iter()
                            .zip(leader)
                            .map(|(x, g)| {
                                let l = levy(&mut rng, cfg.levy_lambda);
                                (x + cfg.step_scale * l * (g - x)).clamp(0.0, 1.0)
                            })
                            .collect()
                    } else {
                        // Local pollination: mix two random flowers.
                        let a = rng.gen_range(0..population.len());
                        let b = rng.gen_range(0..population.len());
                        let eps: f64 = rng.gen_range(0.0..1.0);
                        population[i]
                            .iter()
                            .enumerate()
                            .map(|(d, x)| {
                                (x + eps * (population[a][d] - population[b][d])).clamp(0.0, 1.0)
                            })
                            .collect()
                    };
                    let lucky = rng.gen_bool(0.35);
                    (candidate, lucky)
                })
                .collect();

            // Phase 2 — evaluate the batch on the pool (index order out).
            let objs = pool.par_map(&moves, |_, (candidate, _)| eval(candidate));
            stats.evaluations += moves.len();

            // Phase 3 — apply archive/acceptance updates in index order.
            for (i, ((candidate, lucky), obj)) in moves.into_iter().zip(objs).enumerate() {
                let Some(o) = obj else { continue };
                if insert_archive(&mut archive, &candidate, &o, cfg.archive_cap).is_err() {
                    // Non-finite objectives: the candidate is treated as
                    // infeasible rather than panicking downstream in the
                    // crowding-distance sort.
                    continue;
                }
                // Replace if the candidate dominates (or the old one was
                // infeasible, or neither dominates and the pre-drawn
                // acceptance coin came up heads).
                let accept = match &scores[i] {
                    None => true,
                    Some(old) => dominates(&o, old) || !dominates(old, &o) && lucky,
                };
                if accept {
                    population[i] = candidate;
                    scores[i] = Some(o);
                }
            }
        }

        FpaOutcome { archive, stats }
    }
}

/// Mantegna's algorithm for a Lévy-stable step.
fn levy(rng: &mut StdRng, lambda: f64) -> f64 {
    let sigma = ((gamma_approx(1.0 + lambda) * (lambda * std::f64::consts::PI / 2.0).sin())
        / (gamma_approx((1.0 + lambda) / 2.0) * lambda * 2f64.powf((lambda - 1.0) / 2.0)))
    .powf(1.0 / lambda);
    let u = normal(rng) * sigma;
    let v = normal(rng).abs().max(1e-12);
    u / v.powf(1.0 / lambda)
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Stirling-series gamma approximation (accurate enough for Lévy scale).
fn gamma_approx(x: f64) -> f64 {
    // Lanczos approximation, g = 7.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_approx(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = C[0];
        let t = x + G + 0.5;
        for (i, c) in C.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A candidate carried a NaN or ±∞ objective and was refused at the
/// archive boundary. Structured so callers can distinguish "infeasible
/// genome" (an expected search outcome) from "an objective function
/// produced garbage" (a caller bug worth surfacing) — and so the
/// non-finite value never reaches the crowding-distance sort, which
/// used to panic on it far from the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonFiniteObjective {
    /// Index of the first offending objective in the vector.
    pub index: usize,
}

impl std::fmt::Display for NonFiniteObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "non-finite value at objective index {}", self.index)
    }
}

impl std::error::Error for NonFiniteObjective {}

/// The bit pattern of an objective for duplicate detection, with `-0.0`
/// normalised to `+0.0` (they compare equal and describe the same
/// objective value, so they must dedup together; distinct NaN payloads
/// must *not* silently collapse an archive invariant — but NaN is
/// rejected before ever reaching this comparison).
fn objective_bits(x: f64) -> u64 {
    (x + 0.0).to_bits()
}

/// Exact duplicate check by (normalised) bit pattern rather than `==`,
/// so `-0.0`/`0.0` pairs dedup and NaN can never satisfy *nor* defeat
/// the check in surprising ways.
fn same_objectives(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| objective_bits(*x) == objective_bits(*y))
}

/// Insert into the archive, keeping it non-dominated and within `cap`
/// (crowding-distance pruning, NSGA-II style).
///
/// # Errors
/// [`NonFiniteObjective`] when `objectives` contains NaN or ±∞; the
/// archive is left untouched. The search loop treats such candidates as
/// infeasible, so an objective function that misbehaves on one genome
/// degrades the search instead of panicking it.
pub(crate) fn insert_archive(
    archive: &mut Vec<ParetoPoint>,
    genome: &[f64],
    objectives: &[f64],
    cap: usize,
) -> Result<(), NonFiniteObjective> {
    if let Some(index) = objectives.iter().position(|x| !x.is_finite()) {
        return Err(NonFiniteObjective { index });
    }
    if archive
        .iter()
        .any(|p| dominates(&p.objectives, objectives) || same_objectives(&p.objectives, objectives))
    {
        return Ok(());
    }
    archive.retain(|p| !dominates(objectives, &p.objectives));
    archive.push(ParetoPoint {
        genome: genome.to_vec(),
        objectives: objectives.to_vec(),
    });
    if archive.len() > cap {
        let distances = crowding_distances(archive);
        let (victim, _) = distances
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty archive");
        archive.remove(victim);
    }
    Ok(())
}

/// NSGA-II crowding distance per archive member. Archived objectives
/// are finite by construction ([`insert_archive`] rejects the rest), and
/// `total_cmp` keeps the sort total even if that invariant is ever
/// violated — boundary distances are ±∞ on purpose and must still sort.
fn crowding_distances(archive: &[ParetoPoint]) -> Vec<f64> {
    let n = archive.len();
    let m = archive[0].objectives.len();
    let mut dist = vec![0.0f64; n];
    for obj in 0..m {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| archive[a].objectives[obj].total_cmp(&archive[b].objectives[obj]));
        let lo = archive[idx[0]].objectives[obj];
        let hi = archive[idx[n - 1]].objectives[obj];
        let range = (hi - lo).max(1e-12);
        dist[idx[0]] = f64::INFINITY;
        dist[idx[n - 1]] = f64::INFINITY;
        for w in 1..n - 1 {
            dist[idx[w]] +=
                (archive[idx[w + 1]].objectives[obj] - archive[idx[w - 1]].objectives[obj]) / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
    }

    /// ZDT1-like bi-objective test problem on [0,1]^3:
    /// f1 = x0; f2 = g·(1 − sqrt(x0/g)), g = 1 + 9·mean(x1..).
    fn zdt1(x: &[f64]) -> Option<Vec<f64>> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * (x[1..].iter().sum::<f64>() / (x.len() - 1) as f64);
        let f2 = g * (1.0 - (f1 / g).sqrt());
        Some(vec![f1, f2])
    }

    #[test]
    fn archive_is_mutually_non_dominated() {
        let fpa = MultiObjectiveFpa::new(FpaConfig::standard());
        let out = fpa.run(3, 42, zdt1);
        assert!(!out.archive.is_empty());
        for a in &out.archive {
            for b in &out.archive {
                if a.objectives != b.objectives {
                    assert!(
                        !dominates(&a.objectives, &b.objectives)
                            || !dominates(&b.objectives, &a.objectives)
                    );
                }
            }
        }
    }

    #[test]
    fn search_approaches_the_zdt1_front() {
        // The true front has g = 1 (x1..=0). After a short run the
        // archive should contain points with small g.
        let fpa = MultiObjectiveFpa::new(FpaConfig {
            iterations: 40,
            ..FpaConfig::standard()
        });
        let out = fpa.run(3, 7, zdt1);
        let best_g = out
            .archive
            .iter()
            .map(|p| {
                // Reconstruct g from the genome.
                1.0 + 9.0 * (p.genome[1..].iter().sum::<f64>() / 2.0)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(best_g < 2.0, "search failed to reduce g: {best_g}");
    }

    #[test]
    fn deterministic_given_seed() {
        let fpa = MultiObjectiveFpa::new(FpaConfig::tiny());
        let a = fpa.run(3, 9, zdt1);
        let b = fpa.run(3, 9, zdt1);
        assert_eq!(a.archive, b.archive);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn pool_width_does_not_change_the_outcome() {
        // The batched-generation contract: a 1-thread run and wide runs
        // of the same seed are bit-identical (f64 bits and all).
        let fpa = MultiObjectiveFpa::new(FpaConfig::standard());
        let sequential = fpa.run_on(&Pool::new(1), 3, 1337, zdt1);
        for threads in [2, 4, 8] {
            let parallel = fpa.run_on(&Pool::new(threads), 3, 1337, zdt1);
            assert_eq!(
                sequential.archive, parallel.archive,
                "{threads} threads diverged"
            );
            assert_eq!(sequential.stats, parallel.stats);
        }
        assert_eq!(
            sequential.stats.generations,
            FpaConfig::standard().iterations
        );
    }

    #[test]
    fn empty_seed_list_is_bit_identical_to_unseeded() {
        // The seeded entry point must not perturb the unseeded RNG
        // stream: run_on is run_on_seeded(&[]).
        let fpa = MultiObjectiveFpa::new(FpaConfig::standard());
        let plain = fpa.run(3, 21, zdt1);
        let seeded = fpa.run_on_seeded(minipool::global(), 3, 21, &[], zdt1);
        assert_eq!(plain.archive, seeded.archive);
        assert_eq!(plain.stats, seeded.stats);
    }

    #[test]
    fn seed_genomes_reach_the_archive_at_generation_zero() {
        // A known-good point seeds the population; with zero iterations
        // the archive can only come from the initial population, so the
        // front must weakly dominate the seed's objectives.
        let seed_genome = vec![0.2, 0.0, 0.0]; // on the true ZDT1 front
        let expected = zdt1(&seed_genome).expect("feasible");
        let fpa = MultiObjectiveFpa::new(FpaConfig {
            iterations: 0,
            ..FpaConfig::tiny()
        });
        let out = fpa.run_on_seeded(
            &Pool::new(1),
            3,
            5,
            std::slice::from_ref(&seed_genome),
            zdt1,
        );
        assert!(
            out.archive.iter().any(|p| {
                p.objectives
                    .iter()
                    .zip(&expected)
                    .all(|(a, b)| *a <= b + 1e-12)
            }),
            "no archive point weakly dominates the seed: {:?}",
            out.archive
        );
        // Seeds count toward (not on top of) the population budget.
        assert_eq!(out.stats.evaluations, FpaConfig::tiny().population);
        // The seeded path honours the pool-width bit-identity contract.
        let wide = fpa.run_on_seeded(&Pool::new(4), 3, 5, &[seed_genome], zdt1);
        assert_eq!(out.archive, wide.archive);
        assert_eq!(out.stats, wide.stats);
    }

    #[test]
    fn infeasible_genomes_are_skipped() {
        let fpa = MultiObjectiveFpa::new(FpaConfig::tiny());
        let out = fpa.run(2, 3, |x| {
            if x[0] > 0.5 {
                None
            } else {
                Some(vec![x[0], 1.0 - x[0]])
            }
        });
        for p in &out.archive {
            assert!(p.genome[0] <= 0.5);
        }
    }

    #[test]
    fn archive_cap_is_respected() {
        let cfg = FpaConfig {
            archive_cap: 5,
            iterations: 30,
            ..FpaConfig::standard()
        };
        let fpa = MultiObjectiveFpa::new(cfg);
        let out = fpa.run(3, 11, zdt1);
        assert!(out.archive.len() <= 5);
    }

    #[test]
    fn non_finite_objectives_are_rejected_with_a_structured_error() {
        let mut archive = Vec::new();
        insert_archive(&mut archive, &[0.5], &[1.0, 2.0], 8).expect("finite");
        for bad in [
            vec![f64::NAN, 1.0],
            vec![1.0, f64::INFINITY],
            vec![f64::NEG_INFINITY, 0.0],
        ] {
            let idx = bad.iter().position(|x| !x.is_finite()).expect("bad value");
            let err = insert_archive(&mut archive, &[0.5], &bad, 8)
                .expect_err("non-finite objectives must be refused");
            assert_eq!(err, NonFiniteObjective { index: idx });
        }
        // The archive is untouched by refused insertions.
        assert_eq!(archive.len(), 1);
        assert_eq!(archive[0].objectives, vec![1.0, 2.0]);
    }

    #[test]
    fn non_finite_evals_are_skipped_without_panicking() {
        // An objective function that sometimes produces NaN used to
        // panic in the crowding-distance sort ("finite objectives");
        // now those candidates degrade to infeasible.
        let fpa = MultiObjectiveFpa::new(FpaConfig {
            archive_cap: 4,
            iterations: 20,
            ..FpaConfig::standard()
        });
        let out = fpa.run(2, 13, |x| {
            if x[0] > 0.6 {
                Some(vec![f64::NAN, x[1]])
            } else if x[1] > 0.8 {
                Some(vec![x[0], f64::INFINITY])
            } else {
                Some(vec![x[0], 1.0 - x[0]])
            }
        });
        assert!(!out.archive.is_empty());
        for p in &out.archive {
            assert!(p.objectives.iter().all(|o| o.is_finite()), "{p:?}");
        }
    }

    #[test]
    fn negative_zero_deduplicates_against_positive_zero() {
        // -0.0 == 0.0 describes the same objective value; the bit-pattern
        // dedup must normalise the sign so the archive can't accumulate
        // both spellings of one point.
        let mut archive = Vec::new();
        insert_archive(&mut archive, &[0.1], &[0.0, 1.0], 8).expect("finite");
        insert_archive(&mut archive, &[0.9], &[-0.0, 1.0], 8).expect("finite");
        assert_eq!(archive.len(), 1, "{archive:?}");
        assert_eq!(archive[0].genome, vec![0.1], "first spelling wins");
        // Genuinely distinct non-dominated points still coexist.
        insert_archive(&mut archive, &[0.5], &[1.0, 0.0], 8).expect("finite");
        assert_eq!(archive.len(), 2);
    }

    #[test]
    fn gamma_approximation_sane() {
        assert!((gamma_approx(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_approx(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_approx(5.0) - 24.0).abs() < 1e-6);
        assert!((gamma_approx(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }
}
