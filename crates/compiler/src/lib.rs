//! # teamplay-compiler — the multi-criteria optimising compiler
//!
//! The reproduction of TeamPlay's WCC-based compiler (paper refs \[2\]–\[5\]
//! and Fig. 1): it consumes Mini-C IR, applies a configurable set of
//! optimisation passes, generates PG32 code, and evaluates every candidate
//! configuration with the WCET and energy analyser plug-ins. A
//! multi-objective **Flower Pollination Algorithm** (ref \[5\]) searches the
//! configuration space and returns a Pareto front of *task variants* with
//! distinct (WCET, WCEC, code size) trade-offs — the raw material the
//! coordination layer's multi-version scheduler selects from.
//!
//! * [`codegen`] — IR → PG32 with a stack-frame base strategy plus an
//!   optional register-pinning allocator (the main time/energy knob),
//! * [`passes`] — the trait-based pass framework: a [`passes::Pass`]
//!   trait, a static name registry (ten passes, from `inline` and
//!   `licm` through `unroll` and `block_layout`), and a
//!   [`passes::PassManager`] with fixpoint iteration and per-pass
//!   instrumentation. Pipelines are constructible by name
//!   (`PassManager::from_str("const_fold,dce")`), by optimisation
//!   level (`o0()`–`o3()`), and by catalogue lookup
//!   ([`passes::PipelineCatalog`]); every configuration the search
//!   explores is such a pipeline — and since the genome encodes pass
//!   *order* (random-key permutation decoding), the search space is
//!   the classic phase-ordering space, not an on/off subset,
//! * [`fpa`] — the multi-objective Flower Pollination search, run in
//!   deterministic generational batches whose candidate evaluations fan
//!   out over the vendored `minipool` work-stealing pool (see the
//!   module docs for the batched-generation determinism contract),
//! * [`driver`] — configuration plumbing, per-task variant evaluation
//!   (memoized by decoded configuration in an [`driver::EvalCache`]) and
//!   the Pareto front construction ([`driver::pareto_search_on`]).
//!
//! ```
//! use teamplay_compiler::{compile_module, CompilerConfig};
//! use teamplay_minic::compile_to_ir;
//!
//! let ir = compile_to_ir("int main() { return 21 * 2; }")?;
//! let program = compile_module(&ir, &CompilerConfig::balanced())?;
//! assert!(program.function("main").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codegen;
pub mod driver;
pub mod fpa;
pub mod passes;

pub use codegen::{generate_function, generate_program, CodegenError, CodegenOpts};
pub use driver::{
    compile_module, compile_module_per_function, evaluate_module, evaluate_module_memo,
    pareto_front_for, pareto_search, pareto_search_on, pareto_search_with_cache,
    pareto_search_with_cache_seeded, AnalysisMemo, CachedEval, CompilerConfig, EvalCache,
    ModuleMetrics, ParetoFront, TaskVariant, VariantMetrics,
};
pub use fpa::{FpaConfig, FpaOutcome, MultiObjectiveFpa, ParetoPoint, SearchStats};
pub use passes::{
    run_passes, run_passes_per_function, Pass, PassContext, PassManager, PassSpec, PassStats,
    Pipeline, PipelineCatalog, PipelineError, REGISTRY,
};
