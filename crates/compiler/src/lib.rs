//! # teamplay-compiler — the multi-criteria optimising compiler
//!
//! The reproduction of TeamPlay's WCC-based compiler (paper refs \[2\]–\[5\]
//! and Fig. 1): it consumes Mini-C IR, applies a configurable set of
//! optimisation passes, generates PG32 code, and evaluates every candidate
//! configuration with the WCET and energy analyser plug-ins. A
//! multi-objective **Flower Pollination Algorithm** (ref \[5\]) searches the
//! configuration space and returns a Pareto front of *task variants* with
//! distinct (WCET, WCEC, code size) trade-offs — the raw material the
//! coordination layer's multi-version scheduler selects from.
//!
//! * [`codegen`] — IR → PG32 with a stack-frame base strategy,
//!   liveness-driven copy coalescing at the IR→ISA transfer, plus an
//!   optional register-pinning allocator (the main time/energy knob),
//! * [`dataflow`] — the analysis backbone the passes and codegen share:
//!   dominator tree, global liveness, def-use chains and a hash-consed
//!   constant-folding value graph,
//! * [`passes`] — the trait-based pass framework: an analysis-aware
//!   [`passes::Pass`] trait (each pass pulls dominance, liveness,
//!   def-use chains and the value graph lazily from a
//!   [`passes::PassContext`] cache and declares what it preserves), a
//!   static name registry (twelve passes, from `inline` and `licm`
//!   through `gvn`, `load_fwd`, `unroll` and `block_layout`), and a
//!   [`passes::PassManager`] with fixpoint iteration and per-pass
//!   instrumentation. Pipelines are constructible by name
//!   (`PassManager::from_str("const_fold,dce")`), by optimisation
//!   level (`o0()`–`o3()`), and by catalogue lookup
//!   ([`passes::PipelineCatalog`]); every configuration the search
//!   explores is such a pipeline — and since the genome encodes pass
//!   *order* (random-key permutation decoding), the search space is
//!   the classic phase-ordering space, not an on/off subset,
//! * [`fpa`] — the multi-objective Flower Pollination search, run in
//!   deterministic generational batches whose candidate evaluations fan
//!   out over the vendored `minipool` work-stealing pool (see the
//!   module docs for the batched-generation determinism contract),
//! * [`driver`] — configuration plumbing, per-task variant evaluation
//!   (memoized through a three-tier cache hierarchy: the config-keyed
//!   [`driver::EvalCache`], the per-function [`driver::AnalysisMemo`],
//!   and an optional persistent [`store::DiskStore`] — see the
//!   [`driver`] module docs) and the Pareto front construction
//!   ([`driver::pareto_search_on`]),
//! * [`secure`] — the security-aware variant of the search: a
//!   ladder-rung gene selects the countermeasure level each candidate
//!   compiles under, and the leakage measured on the simulator rig
//!   joins the objective vector, yielding time/energy/leakage Pareto
//!   fronts ([`secure::pareto_search_secure_on`]),
//! * [`store`] — the content-addressed on-disk evaluation store that
//!   lets searches warm-start across processes (keys commit to the IR,
//!   the cost models and a format version, so stale entries are
//!   unreachable by construction),
//! * [`service`] — the batched [`service::compile_many`] front-end:
//!   many module+contract jobs, deduplicated by content hash and
//!   sharded across the pool with one shared persistent store.
//!
//! ```
//! use teamplay_compiler::{compile_module, CompilerConfig};
//! use teamplay_minic::compile_to_ir;
//!
//! let ir = compile_to_ir("int main() { return 21 * 2; }")?;
//! let program = compile_module(&ir, &CompilerConfig::balanced())?;
//! assert!(program.function("main").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codegen;
pub mod dataflow;
pub mod driver;
pub mod fpa;
pub mod passes;
pub mod secure;
pub mod service;
pub mod store;

pub use codegen::{generate_function, generate_program, CodegenError, CodegenOpts};
pub use dataflow::{DefUse, DomTree, Liveness, ValueGraph};
pub use driver::{
    compile_module, compile_module_per_function, compile_module_per_function_on, evaluate_module,
    evaluate_module_memo, pareto_front_for, pareto_search, pareto_search_on,
    pareto_search_with_cache, pareto_search_with_cache_seeded, pareto_search_with_store,
    AnalysisMemo, CachedEval, CompilerConfig, EvalCache, ModuleMetrics, ParetoFront, TaskVariant,
    VariantMetrics, VariantSecurity,
};
pub use fpa::{FpaConfig, FpaOutcome, MultiObjectiveFpa, ParetoPoint, SearchStats};
pub use passes::{
    function_content_key, gvn, load_fwd, run_passes, run_passes_per_function,
    run_passes_per_function_on, value_graph_loop_bounds, Pass, PassContext, PassManager, PassSpec,
    PassStats, Pipeline, PipelineCatalog, PipelineError, Preserves, REGISTRY,
};
pub use secure::{
    genome_with_rung, ladderised_ir, pareto_search_secure_on, pareto_search_secure_with_store,
    rung_of_genome, LeakageRig, LADDER_RUNGS, SECURE_GENOME_DIMS,
};
pub use service::{compile_many, BatchStats, CompileJob, JobResult};
pub use store::{DiskStore, STORE_FORMAT_VERSION};
