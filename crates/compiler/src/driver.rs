//! Compiler driver: configurations, evaluation, Pareto variant search.
//!
//! A [`CompilerConfig`] is one point in the optimisation space (Fig. 1's
//! "multi-criteria optimising compiler" explores many). The driver
//! compiles a configuration, invokes the WCET and energy analyser
//! plug-ins, and [`pareto_front_for`] runs the FPA to produce the
//! multi-version task variants the coordination layer schedules.
//!
//! # The three-tier cache hierarchy
//!
//! Every evaluation the search performs flows through up to three
//! memoization tiers, each answering a different repetition pattern:
//!
//! 1. **[`EvalCache`]** (in-memory, config-keyed): the many genomes
//!    that decode to the same [`CompilerConfig`] — and the archive
//!    reconstruction after a search — compile and analyse exactly once
//!    per process. Concurrent probes of one configuration block on a
//!    per-entry `OnceLock`, so `misses()` counts distinct
//!    configurations at any pool width.
//! 2. **[`AnalysisMemo`]** (in-memory, function-content-keyed): below
//!    the config tier, distinct configurations mostly recompile
//!    byte-identical functions; their WCET/WCEC analyses are replayed
//!    from per-function content-hash memos instead of re-solving IPET.
//! 3. **[`DiskStore`](crate::store::DiskStore)** (persistent,
//!    content-addressed): an optional bottom tier
//!    ([`EvalCache::with_store`]) that spills every evaluation —
//!    including *infeasible* ones — to a directory keyed by a versioned
//!    hash of the IR, both cost models, and the configuration. A fresh
//!    process (or a [`compile_many`](crate::service::compile_many)
//!    batch) warm-starts from it and skips compilation entirely; stale
//!    poisoning is impossible because any input change moves the key.
//!
//! Tier-1/2 counters surface as `cache_hits`/`cache_misses` and tier-3
//! counters as `disk_hits`/`disk_misses` in
//! [`SearchStats`](crate::fpa::SearchStats): `disk_hits + disk_misses
//! == cache_misses` when a store is attached, and `disk_misses` is the
//! number of actual compiles.

use crate::codegen::{generate_program, generate_program_with, CodegenError, CodegenOpts};
use crate::fpa::{FpaConfig, MultiObjectiveFpa, ParetoPoint, SearchStats};
use crate::passes::{run_passes, run_passes_per_function_on, PassSpec, Pipeline};
use crate::store::{self, DiskStore, STORE_FORMAT_VERSION};
use minipool::Pool;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use teamplay_energy::{analyze_program_energy_cached, IsaEnergyModel};
use teamplay_isa::{encode::encode_sequence, CycleModel, Function, Program};
use teamplay_minic::ir::IrModule;
use teamplay_wcet::{analyze_program_cached, AnalysisCache};

/// One compiler configuration — the genome the multi-objective search
/// explores: a registry-backed IR pass [`Pipeline`] plus the two codegen
/// knobs the PG32 backend exposes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// The IR optimisation pipeline (see [`crate::passes::REGISTRY`]).
    pub pipeline: Pipeline,
    /// Shift-add decomposition of small multipliers, register-resident
    /// in codegen (energy ↓, cycles ↑).
    pub mul_shift_add: bool,
    /// Register-pinning level (0, 2 or 4 callee-saved registers).
    pub pinned_regs: usize,
}

impl CompilerConfig {
    /// Everything off: the unoptimised reference point (O0).
    pub fn all_off() -> CompilerConfig {
        CompilerConfig {
            pipeline: Pipeline::o0(),
            mul_shift_add: false,
            pinned_regs: 0,
        }
    }

    /// The "traditional toolchain" baseline of the paper's evaluation:
    /// a generic single-objective setting (the O1 cleanup trio, no
    /// ETS-aware choices).
    pub fn traditional() -> CompilerConfig {
        CompilerConfig {
            pipeline: Pipeline::o1(),
            mul_shift_add: false,
            pinned_regs: 0,
        }
    }

    /// A balanced multi-criteria default (O2).
    pub fn balanced() -> CompilerConfig {
        CompilerConfig {
            pipeline: Pipeline::o2(),
            mul_shift_add: false,
            pinned_regs: 2,
        }
    }

    /// Time-first: every speed lever pulled (O3 + full pinning).
    pub fn performance() -> CompilerConfig {
        CompilerConfig {
            pipeline: Pipeline::o3(),
            mul_shift_add: false,
            pinned_regs: 4,
        }
    }

    /// Energy-first: accepts extra cycles for lower picojoules.
    pub fn energy_saver() -> CompilerConfig {
        CompilerConfig {
            pipeline: "inline(60),strength_reduce,const_fold,copy_prop,dce"
                .parse()
                .expect("preset pipeline is valid"),
            mul_shift_add: true,
            pinned_regs: 4,
        }
    }

    /// The pass menu the genome selects and *orders* from. The array
    /// order is only the tie-break for equal ordering keys; the decoded
    /// pipeline order is the argsort of the keys (random-key encoding),
    /// so every permutation of every subset is reachable.
    pub const SEARCH_PASSES: [&'static str; 12] = [
        "inline",
        "licm",
        "cse",
        "unroll",
        "strength_reduce",
        "mul_shift_add",
        "const_fold",
        "copy_prop",
        "dce",
        "block_layout",
        "gvn",
        "load_fwd",
    ];

    /// Number of genome dimensions used by [`CompilerConfig::from_genome`]:
    /// one selection/ordering key per menu pass, then the `inline`
    /// threshold, the `unroll` trip ceiling, the duplicated-cleanup bit,
    /// and the two codegen knobs.
    pub const GENOME_DIMS: usize = Self::SEARCH_PASSES.len() + 5;

    /// Decode a genome in `[0,1]^17` into a configuration (the FPA's
    /// phenotype mapping) — a *phase-ordering* encoding, not an on/off
    /// subset of one canonical order:
    ///
    /// * genes `0..12` — one per [`CompilerConfig::SEARCH_PASSES`] entry:
    ///   the pass is selected iff its gene exceeds 0.5, and the selected
    ///   passes run in ascending gene order (argsort → permutation, the
    ///   classic random-key trick; ties break on menu position);
    /// * gene `12` — `inline` callee-size threshold (20–80 IR ops);
    /// * gene `13` — `unroll` trip-count ceiling (2–16);
    /// * gene `14` — duplicated cleanup round: appends a second
    ///   `const_fold,copy_prop,dce` tail when set;
    /// * gene `15` — codegen shift-add multiplier decomposition;
    /// * gene `16` — register-pinning level (0 / 2 / 4, by thirds).
    ///
    /// Decoding is pure and deterministic: equal genomes always decode
    /// to equal configurations, which the [`EvalCache`] keys on, and the
    /// pool-width bit-identity of [`pareto_search_on`] carries over
    /// unchanged.
    pub fn from_genome(genome: &[f64]) -> CompilerConfig {
        let g = |i: usize| genome.get(i).copied().unwrap_or(0.0);
        let menu = Self::SEARCH_PASSES.len();
        let mut picks: Vec<(f64, usize)> = (0..menu)
            .filter(|&i| g(i) > 0.5)
            .map(|i| (g(i), i))
            .collect();
        picks.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut pipeline = Pipeline::default();
        for (_, i) in picks {
            match Self::SEARCH_PASSES[i] {
                "inline" => {
                    let threshold = 20 + (g(menu) * 60.0) as usize;
                    pipeline.push(PassSpec::with_param("inline", threshold));
                }
                "unroll" => {
                    let trips = 2 + (g(menu + 1) * 14.0) as usize;
                    pipeline.push(PassSpec::with_param("unroll", trips));
                }
                name => pipeline.push(PassSpec::new(name)),
            }
        }
        if g(menu + 2) > 0.5 {
            for name in ["const_fold", "copy_prop", "dce"] {
                pipeline.push(PassSpec::new(name));
            }
        }
        CompilerConfig {
            pipeline,
            mul_shift_add: g(menu + 3) > 0.5,
            pinned_regs: Self::pinned_level(g(menu + 4)),
        }
    }

    /// Encode this configuration as a genome [`CompilerConfig::from_genome`]
    /// decodes back to it — the inverse phenotype mapping, used to *seed*
    /// the FPA population with a known-good configuration (e.g. an
    /// application's `recommended_pipeline()`), so the search starts from
    /// the tuned point instead of the corners.
    ///
    /// Returns `None` when the configuration is outside the genome's
    /// range: a pass not on [`CompilerConfig::SEARCH_PASSES`], a repeated
    /// pass other than the `const_fold,copy_prop,dce` cleanup tail, an
    /// `inline` threshold outside 20–80 or an `unroll` ceiling outside
    /// 2–16. Every `Some` genome is verified by decoding, so round-trips
    /// are exact by construction.
    pub fn to_genome(&self) -> Option<Vec<f64>> {
        let menu = Self::SEARCH_PASSES.len();
        let encode = |passes: &[PassSpec], cleanup_tail: bool| -> Option<Vec<f64>> {
            let mut genome = vec![0.0; Self::GENOME_DIMS];
            for (j, spec) in passes.iter().enumerate() {
                let i = Self::SEARCH_PASSES.iter().position(|n| *n == spec.name)?;
                if genome[i] > 0.0 {
                    return None; // repeated pass — not representable
                }
                // Selection keys above 0.5, ascending in pipeline order
                // (the argsort decode reproduces exactly this order).
                genome[i] = 0.5 + 0.5 * (j + 1) as f64 / (passes.len() + 1) as f64;
                // Parameter genes: centre the gene on its truncation
                // window so `(g * scale) as usize` lands on the value.
                match (spec.name.as_str(), spec.param) {
                    ("inline", Some(threshold)) => {
                        genome[menu] = ((threshold as f64 - 20.0 + 0.5) / 60.0).clamp(0.0, 1.0);
                    }
                    ("unroll", Some(trips)) => {
                        genome[menu + 1] = ((trips as f64 - 2.0 + 0.5) / 14.0).clamp(0.0, 1.0);
                    }
                    _ => {}
                }
            }
            if cleanup_tail {
                genome[menu + 2] = 1.0;
            }
            genome[menu + 3] = if self.mul_shift_add { 1.0 } else { 0.0 };
            genome[menu + 4] = match self.pinned_regs {
                0 => 0.0,
                2 => 0.5,
                _ => 1.0,
            };
            (Self::from_genome(&genome) == *self).then_some(genome)
        };
        let passes = &self.pipeline.passes;
        // Direct encoding first; a pipeline ending in the cleanup trio
        // can alternatively spend the duplicated-cleanup gene on it,
        // which is the only way to represent a repeated cleanup round.
        encode(passes, false).or_else(|| {
            let tail: Vec<String> = ["const_fold", "copy_prop", "dce"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let stem = passes.len().checked_sub(3)?;
            let tail_matches = passes[stem..]
                .iter()
                .zip(&tail)
                .all(|(p, name)| p.param.is_none() && &p.name == name);
            tail_matches
                .then(|| encode(&passes[..stem], true))
                .flatten()
        })
    }

    /// The fixed-order decoder of the pre-phase-ordering search (PR 2):
    /// 8 genes, each pass bit contributing its pipeline element in one
    /// canonical order. Kept as the baseline the benches and tests
    /// compare the permutation space against.
    pub fn from_genome_fixed_order(genome: &[f64]) -> CompilerConfig {
        let bit = |i: usize| genome.get(i).copied().unwrap_or(0.0) > 0.5;
        let g7 = genome.get(7).copied().unwrap_or(0.0);
        let mut pipeline = Pipeline::default();
        if bit(0) {
            let threshold = 20 + (genome.get(1).copied().unwrap_or(0.0) * 60.0) as usize;
            pipeline.push(PassSpec::with_param("inline", threshold));
        }
        if bit(5) {
            pipeline.push(PassSpec::new("strength_reduce"));
        }
        if bit(2) {
            pipeline.push(PassSpec::new("const_fold"));
        }
        if bit(3) {
            pipeline.push(PassSpec::new("copy_prop"));
        }
        if bit(4) {
            pipeline.push(PassSpec::new("dce"));
        }
        CompilerConfig {
            pipeline,
            mul_shift_add: bit(6),
            pinned_regs: Self::pinned_level(g7),
        }
    }

    /// Number of genome dimensions used by
    /// [`CompilerConfig::from_genome_fixed_order`].
    pub const FIXED_ORDER_GENOME_DIMS: usize = 8;

    /// Map a `[0,1]` gene to the 0/2/4 register-pinning levels.
    fn pinned_level(g: f64) -> usize {
        if g < 1.0 / 3.0 {
            0
        } else if g < 2.0 / 3.0 {
            2
        } else {
            4
        }
    }
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig::balanced()
    }
}

/// Compile an IR module under a configuration.
///
/// # Errors
/// Propagates [`CodegenError`].
pub fn compile_module(ir: &IrModule, config: &CompilerConfig) -> Result<Program, CodegenError> {
    let mut module = ir.clone();
    run_passes(&mut module, config);
    generate_program(
        &module,
        CodegenOpts {
            pinned_regs: config.pinned_regs,
            mul_shift_add: config.mul_shift_add,
        },
    )
}

/// Compile a module with per-function configurations: every function is
/// optimised and code-generated under its own [`CompilerConfig`] (tasks
/// keep their selected Pareto variants; everything else uses `default`).
///
/// Sequential; [`compile_module_per_function_on`] fans the per-function
/// pass pipelines across a pool with byte-identical output.
///
/// # Errors
/// Propagates [`CodegenError`].
pub fn compile_module_per_function(
    ir: &IrModule,
    configs: &HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) -> Result<Program, CodegenError> {
    compile_module_per_function_on(&Pool::new(1), ir, configs, default)
}

/// [`compile_module_per_function`] on an explicit pool: unique function
/// bodies (by content hash, per configuration) run their pass pipelines
/// in parallel, each exactly once. Output is byte-identical at any pool
/// width — see [`run_passes_per_function_on`].
///
/// # Errors
/// Propagates [`CodegenError`].
pub fn compile_module_per_function_on(
    pool: &Pool,
    ir: &IrModule,
    configs: &HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) -> Result<Program, CodegenError> {
    let mut module = ir.clone();
    run_passes_per_function_on(pool, &mut module, configs, default);
    let codegen_opts: HashMap<String, CodegenOpts> = configs
        .iter()
        .map(|(name, c)| {
            (
                name.clone(),
                CodegenOpts {
                    pinned_regs: c.pinned_regs,
                    mul_shift_add: c.mul_shift_add,
                },
            )
        })
        .collect();
    generate_program_with(
        &module,
        &codegen_opts,
        CodegenOpts {
            pinned_regs: default.pinned_regs,
            mul_shift_add: default.mul_shift_add,
        },
    )
}

/// Encoded size of a function in 16-bit halfwords (terminators count one
/// halfword each, as a branch would).
pub fn code_size_halfwords(f: &Function) -> usize {
    let mut words = 0usize;
    for b in &f.blocks {
        words += encode_sequence(&b.insns).len();
        words += 1;
    }
    words
}

/// The three ETS-relevant metrics of one compiled task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariantMetrics {
    /// Static WCET bound (cycles).
    pub wcet_cycles: u64,
    /// Static worst-case energy bound (picojoules).
    pub wcec_pj: f64,
    /// Encoded size (16-bit halfwords).
    pub code_halfwords: usize,
}

/// Whole-module metrics for a configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModuleMetrics {
    // Per-function metrics, sorted by name — every constructor
    // (`new` and the manual `Deserialize`) funnels through the sort, so
    // `of` can binary search.
    functions: Vec<(String, VariantMetrics)>,
}

impl ModuleMetrics {
    /// Build metrics from per-function entries (sorted here; callers may
    /// supply any order).
    pub fn new(mut functions: Vec<(String, VariantMetrics)>) -> ModuleMetrics {
        functions.sort_by(|(a, _), (b, _)| a.cmp(b));
        ModuleMetrics { functions }
    }

    /// Metrics for one function (binary search over the name-sorted
    /// entries — callers probe this once per genome per task).
    pub fn of(&self, name: &str) -> Option<&VariantMetrics> {
        self.functions
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.functions[i].1)
    }

    /// All per-function metrics, sorted by name.
    pub fn functions(&self) -> &[(String, VariantMetrics)] {
        &self.functions
    }
}

impl serde::Deserialize for ModuleMetrics {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::DeError::custom("ModuleMetrics: expected a map"))?;
        let functions = Vec::from_value(serde::field(map, "functions")?)?;
        // Re-sorting on ingest keeps the binary-search invariant even for
        // hand-written or reordered JSON.
        Ok(ModuleMetrics::new(functions))
    }
}

/// The per-function analysis memos one [`EvalCache`] owns: WCET and
/// WCEC results keyed by function content hash, shared by every
/// configuration evaluated against the same module and platform. Across
/// the thousands of variants a search compiles, most configurations
/// leave most functions byte-identical — those functions are analysed
/// once, ever.
#[derive(Debug, Default)]
pub struct AnalysisMemo {
    /// Cycle-bound memo (one per [`CycleModel`]).
    pub wcet: AnalysisCache,
    /// Energy-bound memo (one per model pair).
    pub energy: AnalysisCache,
}

impl AnalysisMemo {
    /// Fresh, empty memos.
    pub fn new() -> AnalysisMemo {
        AnalysisMemo::default()
    }
}

/// Compile and statically analyse a module under a configuration.
///
/// # Errors
/// Codegen errors are returned as `Err`; analysis errors (unbounded
/// loops, recursion) are folded into the error string.
pub fn evaluate_module(
    ir: &IrModule,
    config: &CompilerConfig,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
) -> Result<(Program, ModuleMetrics), String> {
    evaluate_module_memo(ir, config, cycle_model, energy_model, &AnalysisMemo::new())
}

/// [`evaluate_module`] with per-function analysis memoization: the
/// WCET/WCEC of every function whose compiled form (content hash +
/// callee bounds) was already analysed under any earlier configuration
/// is replayed from `memo`. Memoized results are exact, so this is
/// observationally identical to [`evaluate_module`] — the [`EvalCache`]
/// routes every evaluation through its own memo.
///
/// # Errors
/// See [`evaluate_module`].
pub fn evaluate_module_memo(
    ir: &IrModule,
    config: &CompilerConfig,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    memo: &AnalysisMemo,
) -> Result<(Program, ModuleMetrics), String> {
    let program = compile_module(ir, config).map_err(|e| e.to_string())?;
    let wcet =
        analyze_program_cached(&program, cycle_model, &memo.wcet).map_err(|e| e.to_string())?;
    let energy = analyze_program_energy_cached(&program, energy_model, cycle_model, &memo.energy)
        .map_err(|e| e.to_string())?;
    let mut functions = Vec::new();
    for (name, f) in &program.functions {
        functions.push((
            name.clone(),
            VariantMetrics {
                wcet_cycles: wcet.wcet_cycles(name).expect("analysed"),
                wcec_pj: energy.wcec_pj(name).expect("analysed"),
                code_halfwords: code_size_halfwords(f),
            },
        ));
    }
    Ok((program, ModuleMetrics::new(functions)))
}

/// A memoized, thread-safe view of [`evaluate_module`] for one module and
/// platform: results are keyed by the decoded [`CompilerConfig`], so the
/// many genomes that decode to the same configuration — and the archive
/// reconstruction after a search — compile and analyse exactly once.
///
/// Concurrent lookups of the same configuration block on a per-entry
/// [`OnceLock`], so each distinct configuration is evaluated by exactly
/// one thread: `misses()` equals the number of distinct configurations
/// probed, whatever the pool width. Failed evaluations are cached as
/// `None` (infeasible), so repeated failures are free too.
///
/// With [`EvalCache::with_store`] the cache additionally spills to (and
/// warm-starts from) a persistent [`DiskStore`]: an in-memory miss first
/// probes the store under a content-addressed key before compiling, and
/// every computed result — feasible or not — is written back. The
/// module docs describe the full three-tier hierarchy.
pub struct EvalCache<'a> {
    ir: &'a IrModule,
    cycle_model: &'a CycleModel,
    energy_model: &'a IsaEnergyModel,
    entries: Mutex<HashMap<CompilerConfig, Arc<OnceLock<Option<CachedEval>>>>>,
    /// Per-function WCET/WCEC memos shared by every configuration this
    /// cache evaluates (a second memoization layer *below* the
    /// config-keyed one: distinct configs mostly recompile identical
    /// functions).
    memo: AnalysisMemo,
    /// Optional persistent bottom tier.
    disk: Option<&'a DiskStore>,
    /// FNV chain over (format version, IR, cost models); each probe
    /// extends it with the configuration to form the store key. Zero
    /// when no store is attached.
    key_prefix: u128,
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_hits: AtomicUsize,
    disk_misses: AtomicUsize,
}

/// One memoized evaluation: the compiled program (shared, never
/// deep-cloned) and its module metrics.
pub type CachedEval = (Arc<Program>, ModuleMetrics);

impl<'a> EvalCache<'a> {
    /// An empty cache over one module and platform pair.
    pub fn new(
        ir: &'a IrModule,
        cycle_model: &'a CycleModel,
        energy_model: &'a IsaEnergyModel,
    ) -> EvalCache<'a> {
        EvalCache {
            ir,
            cycle_model,
            energy_model,
            entries: Mutex::new(HashMap::new()),
            memo: AnalysisMemo::new(),
            disk: None,
            key_prefix: 0,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            disk_misses: AtomicUsize::new(0),
        }
    }

    /// An [`EvalCache`] backed by a persistent [`DiskStore`]: in-memory
    /// misses probe the store before compiling, and computed results
    /// (feasible or infeasible) are written back. The store key commits
    /// to the IR, both cost models, the configuration, and
    /// [`STORE_FORMAT_VERSION`], so a store shared across modules or
    /// model revisions can never serve a stale entry.
    pub fn with_store(
        ir: &'a IrModule,
        cycle_model: &'a CycleModel,
        energy_model: &'a IsaEnergyModel,
        disk: &'a DiskStore,
    ) -> EvalCache<'a> {
        let mut cache = EvalCache::new(ir, cycle_model, energy_model);
        cache.key_prefix = store::hash_json(
            store::fnv_offset(),
            &(STORE_FORMAT_VERSION, ir, cycle_model, energy_model),
        );
        cache.disk = Some(disk);
        cache
    }

    /// [`evaluate_module`] through the cache. `None` means the
    /// configuration is infeasible (codegen or analysis failed).
    pub fn evaluate(&self, config: &CompilerConfig) -> Option<CachedEval> {
        let cell = {
            let mut entries = self.entries.lock().expect("eval cache lock");
            entries
                .entry(config.clone())
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        let mut computed = false;
        let mut from_disk = false;
        let value = cell.get_or_init(|| {
            computed = true;
            let compute = || {
                evaluate_module_memo(
                    self.ir,
                    config,
                    self.cycle_model,
                    self.energy_model,
                    &self.memo,
                )
                .ok()
                .map(|(program, metrics)| (Arc::new(program), metrics))
            };
            match self.disk {
                Some(disk) => {
                    let key = store::hash_json(self.key_prefix, config);
                    if let Some(found) = disk.load(key) {
                        from_disk = true;
                        found
                    } else {
                        let fresh = compute();
                        disk.store(key, &fresh);
                        fresh
                    }
                }
                None => compute(),
            }
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if self.disk.is_some() {
                if from_disk {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.disk_misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }

    /// Lookups answered without compiling (including waits on another
    /// thread's in-flight evaluation of the same configuration).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that compiled + analysed (= distinct configurations
    /// probed). With a disk store attached, "compiled" includes replays
    /// from disk: `misses() == disk_hits() + disk_misses()`.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// In-memory misses answered from the disk store without compiling
    /// (always 0 without [`EvalCache::with_store`]).
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// In-memory misses that compiled + analysed and were written back
    /// to the disk store (always 0 without [`EvalCache::with_store`]).
    pub fn disk_misses(&self) -> usize {
        self.disk_misses.load(Ordering::Relaxed)
    }

    /// The per-function analysis memos this cache's evaluations share
    /// (hit/miss counters tell how many function analyses were replays).
    pub fn analysis_memo(&self) -> &AnalysisMemo {
        &self.memo
    }
}

/// The security coordinates of one secure-search variant: which
/// countermeasure rung it was compiled under and the leakage the rig
/// measured for it (the third Pareto axis — always finite, capped by
/// [`WELCH_T_CAP`](teamplay_security::WELCH_T_CAP)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariantSecurity {
    /// Countermeasure ladder rung (0 = plain IR, 1 = ladderised).
    pub rung: u32,
    /// Measured leakage score: the worse channel's |Welch t|.
    pub leakage: f64,
}

/// A compiled task variant on the Pareto front.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskVariant {
    /// The configuration that produced it.
    pub config: CompilerConfig,
    /// Its static metrics for the task function.
    pub metrics: VariantMetrics,
    /// The full compiled program (all functions under this config),
    /// shared with the evaluation cache — cloning a variant or a front
    /// bumps a refcount instead of deep-copying compiled modules.
    pub program: Arc<Program>,
    /// Rung and measured leakage when the variant came from the secure
    /// search ([`crate::secure::pareto_search_secure_on`]); `None` for
    /// the time/energy/size-only searches.
    pub security: Option<VariantSecurity>,
}

/// A task's Pareto front plus the search instrumentation that produced
/// it.
#[derive(Debug, Clone)]
pub struct ParetoFront {
    /// Non-dominated variants, sorted by WCET.
    pub variants: Vec<TaskVariant>,
    /// Evaluation counts and cache behaviour of the search.
    pub stats: SearchStats,
}

/// Run the FPA over compiler configurations and return the Pareto front
/// of variants for `task` (objectives: WCET, WCEC, code size).
///
/// Deterministic for a fixed seed. Returns variants sorted by WCET.
/// Evaluates genomes in parallel on the process-wide [`minipool::global`]
/// pool, memoizing by decoded configuration — see [`pareto_search_on`]
/// for the full outcome (stats included) and pool control.
pub fn pareto_front_for(
    ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
) -> Vec<TaskVariant> {
    pareto_search(ir, task, cycle_model, energy_model, fpa_config, seed).variants
}

/// [`pareto_front_for`] with search stats, on the global pool.
pub fn pareto_search(
    ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
) -> ParetoFront {
    pareto_search_on(
        minipool::global(),
        ir,
        task,
        cycle_model,
        energy_model,
        fpa_config,
        seed,
    )
}

/// The full variant search on an explicit pool: FPA-driven, memoized by
/// decoded [`CompilerConfig`] (an [`EvalCache`]), with the final archive
/// reconstructed from the cache rather than recompiled. Bit-identical
/// output for any pool width given the same seed (the FPA's
/// batched-generation contract plus a deterministic, memoized eval);
/// `stats.cache_misses` equals the number of distinct configurations
/// compiled.
pub fn pareto_search_on(
    pool: &Pool,
    ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
) -> ParetoFront {
    let cache = EvalCache::new(ir, cycle_model, energy_model);
    let mut front = pareto_search_with_cache(pool, &cache, task, fpa_config, seed);
    copy_cache_counters(&mut front.stats, &cache);
    front
}

/// [`pareto_search_on`] with a persistent [`DiskStore`] as the bottom
/// cache tier: evaluations warm-start from `store` and spill back to
/// it, so a rerun of the same search (same IR, models, and seed — even
/// in a fresh process) recompiles nothing and returns a byte-identical
/// front. `stats.disk_hits`/`disk_misses` report the store traffic.
#[allow(clippy::too_many_arguments)] // pareto_search_on's signature + the store
pub fn pareto_search_with_store(
    pool: &Pool,
    ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
    disk: &DiskStore,
) -> ParetoFront {
    let cache = EvalCache::with_store(ir, cycle_model, energy_model, disk);
    let mut front = pareto_search_with_cache(pool, &cache, task, fpa_config, seed);
    copy_cache_counters(&mut front.stats, &cache);
    front
}

/// Copy a cache's hit/miss counters (all three tiers) into the stats a
/// search returns.
pub(crate) fn copy_cache_counters(stats: &mut SearchStats, cache: &EvalCache<'_>) {
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats.disk_hits = cache.disk_hits();
    stats.disk_misses = cache.disk_misses();
}

/// [`pareto_search_on`] against a caller-owned [`EvalCache`], so the
/// per-task fronts of one module share compiles of identical
/// configurations (different tasks probe largely the same configuration
/// space over the same IR — the cache answers all but the first probe of
/// each).
///
/// The returned `stats` carry the evaluation/generation counts of *this*
/// search; the cache counters stay with the cache's owner (they span
/// every search sharing it), so `stats.cache_hits`/`cache_misses` are
/// left at zero here. Results remain bit-identical for any pool width
/// and any set of concurrently sharing searches: cached evaluation is
/// deterministic in the configuration alone.
pub fn pareto_search_with_cache(
    pool: &Pool,
    cache: &EvalCache<'_>,
    task: &str,
    fpa_config: FpaConfig,
    seed: u64,
) -> ParetoFront {
    pareto_search_with_cache_seeded(pool, cache, task, fpa_config, seed, &[])
}

/// [`pareto_search_with_cache`] with *seed genomes* mixed into the FPA's
/// initial population — typically the application's tuned pipeline
/// encoded by [`CompilerConfig::to_genome`], so the search's generation-0
/// front already weakly dominates the tuned point instead of starting
/// from the genome-space corners. With `seeds` empty this is exactly
/// [`pareto_search_with_cache`] (same RNG stream, same evaluation
/// budget); seeding preserves the pool-width bit-identity contract.
pub fn pareto_search_with_cache_seeded(
    pool: &Pool,
    cache: &EvalCache<'_>,
    task: &str,
    fpa_config: FpaConfig,
    seed: u64,
    seeds: &[Vec<f64>],
) -> ParetoFront {
    let fpa = MultiObjectiveFpa::new(fpa_config);
    let outcome = fpa.run_on_seeded(pool, CompilerConfig::GENOME_DIMS, seed, seeds, |genome| {
        let config = CompilerConfig::from_genome(genome);
        let (_, metrics) = cache.evaluate(&config)?;
        let m = metrics.of(task)?;
        Some(vec![
            m.wcet_cycles as f64,
            m.wcec_pj,
            m.code_halfwords as f64,
        ])
    });

    let mut variants: Vec<TaskVariant> = Vec::new();
    for ParetoPoint { genome, objectives } in outcome.archive {
        let config = CompilerConfig::from_genome(&genome);
        // Deduplicate by decoded configuration.
        if variants.iter().any(|v| v.config == config) {
            continue;
        }
        // Every archived point was evaluated during the search, so this
        // is a guaranteed cache hit — no recompilation.
        let Some((program, metrics)) = cache.evaluate(&config) else {
            continue;
        };
        let m = *metrics.of(task).expect("task analysed");
        // The objective vector carries the cycle bound *exactly* (u64 →
        // f64 is lossless far beyond any realistic bound), so a 1-cycle
        // IPET improvement can never hide behind an epsilon.
        debug_assert_eq!(m.wcet_cycles, objectives[0] as u64);
        debug_assert_eq!(m.wcet_cycles as f64, objectives[0]);
        variants.push(TaskVariant {
            config,
            metrics: m,
            program,
            security: None,
        });
    }
    variants.sort_by_key(|v| v.metrics.wcet_cycles);

    ParetoFront {
        variants,
        stats: outcome.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_sim::{Machine, RecordingDevice};

    const TASK: &str = "
        int coeff[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
        int scale(int v) { return v * 10; }
        int filter(int x) {
            int acc = 0;
            for (int i = 0; i < 16; i = i + 1) {
                acc = acc + coeff[i] * (x + i);
            }
            return scale(acc);
        }";

    #[test]
    fn evaluate_module_reports_all_functions() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let (_, metrics) = evaluate_module(
            &ir,
            &CompilerConfig::balanced(),
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
        )
        .expect("evaluate");
        assert!(metrics.of("filter").is_some());
        assert!(metrics.of("scale").is_some());
        assert!(metrics.of("missing").is_none());
    }

    #[test]
    fn presets_order_as_expected() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let eval = |c: &CompilerConfig| {
            evaluate_module(&ir, c, &cm, &em)
                .expect("evaluate")
                .1
                .of("filter")
                .copied()
                .expect("filter")
        };
        let off = eval(&CompilerConfig::all_off());
        let traditional = eval(&CompilerConfig::traditional());
        let perf = eval(&CompilerConfig::performance());
        let energy = eval(&CompilerConfig::energy_saver());
        assert!(perf.wcet_cycles < traditional.wcet_cycles);
        assert!(traditional.wcet_cycles <= off.wcet_cycles);
        assert!(energy.wcec_pj < traditional.wcec_pj);
        // The performance preset is the fastest; the energy preset trades
        // cycles away (shift-add chains) and must never be faster.
        assert!(perf.wcet_cycles <= energy.wcet_cycles);
    }

    #[test]
    fn every_preset_compiles_to_working_code() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let mut reference: Option<i32> = None;
        for config in [
            CompilerConfig::all_off(),
            CompilerConfig::traditional(),
            CompilerConfig::balanced(),
            CompilerConfig::performance(),
            CompilerConfig::energy_saver(),
        ] {
            let program = compile_module(&ir, &config).expect("compile");
            let mut machine = Machine::new(program).expect("load");
            let r = machine
                .call("filter", &[5], &mut RecordingDevice::new())
                .expect("run");
            match reference {
                None => reference = Some(r.return_value),
                Some(v) => assert_eq!(v, r.return_value, "config {config:?} diverged"),
            }
        }
    }

    #[test]
    fn genome_decoding_covers_the_space() {
        let lo = CompilerConfig::from_genome(&[0.0; CompilerConfig::GENOME_DIMS]);
        assert!(lo.pipeline.passes.is_empty() && lo.pinned_regs == 0 && !lo.mul_shift_add);
        let hi = CompilerConfig::from_genome(&[1.0; CompilerConfig::GENOME_DIMS]);
        assert!(hi.pipeline.contains("inline") && hi.pinned_regs == 4 && hi.mul_shift_add);
        assert_eq!(
            hi.pipeline.param_of("inline"),
            Some(80),
            "threshold scales with its gene"
        );
        assert_eq!(
            hi.pipeline.param_of("unroll"),
            Some(16),
            "trip ceiling scales with its gene"
        );
        for name in CompilerConfig::SEARCH_PASSES {
            assert!(
                hi.pipeline.contains(name),
                "{name} missing from the full genome"
            );
        }
        // All keys tied at 1.0: menu order, plus the duplicated cleanup tail.
        assert_eq!(
            hi.pipeline.passes.len(),
            CompilerConfig::SEARCH_PASSES.len() + 3,
            "full genome selects every pass and appends the cleanup round"
        );
        let mid = CompilerConfig::from_genome(&[0.5; CompilerConfig::GENOME_DIMS]);
        assert_eq!(mid.pinned_regs, 2);
        assert!(mid.pipeline.passes.is_empty(), "0.5 keys select nothing");
        // Every decoded pipeline resolves against the registry.
        crate::passes::PassManager::new(hi.pipeline).expect("genome pipelines are registry-backed");
    }

    #[test]
    fn genome_order_keys_permute_the_pipeline() {
        // Menu indices: inline 0, licm 1, cse 2, unroll 3,
        // strength_reduce 4, mul_shift_add 5, const_fold 6, copy_prop 7,
        // dce 8, block_layout 9, gvn 10, load_fwd 11.
        let mut genome = vec![0.0; CompilerConfig::GENOME_DIMS];
        genome[8] = 0.6; // dce — lowest key, runs first
        genome[9] = 0.7; // block_layout
        genome[6] = 0.9; // const_fold — highest key, runs last
        let c = CompilerConfig::from_genome(&genome);
        assert_eq!(c.pipeline.to_string(), "dce,block_layout,const_fold");

        // Swapping two keys swaps the decoded order — same subset,
        // different phase order, distinct cache key.
        genome.swap(8, 6);
        let swapped = CompilerConfig::from_genome(&genome);
        assert_eq!(swapped.pipeline.to_string(), "const_fold,block_layout,dce");
        assert_ne!(c, swapped, "permutations memoize independently");

        // The duplicated cleanup round is an explicit tail.
        genome[14] = 1.0;
        let dup = CompilerConfig::from_genome(&genome);
        assert_eq!(
            dup.pipeline.to_string(),
            "const_fold,block_layout,dce,const_fold,copy_prop,dce"
        );
    }

    #[test]
    fn pareto_front_contains_distinct_tradeoffs() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let variants = pareto_front_for(
            &ir,
            "filter",
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
            FpaConfig::tiny(),
            1234,
        );
        assert!(!variants.is_empty());
        // Sorted by WCET and mutually non-dominated in (wcet, wcec, size).
        for pair in variants.windows(2) {
            assert!(pair[0].metrics.wcet_cycles <= pair[1].metrics.wcet_cycles);
        }
        for a in &variants {
            for b in &variants {
                if a.config == b.config {
                    continue;
                }
                let adom = a.metrics.wcet_cycles <= b.metrics.wcet_cycles
                    && a.metrics.wcec_pj <= b.metrics.wcec_pj
                    && a.metrics.code_halfwords <= b.metrics.code_halfwords
                    && (a.metrics.wcet_cycles < b.metrics.wcet_cycles
                        || a.metrics.wcec_pj < b.metrics.wcec_pj
                        || a.metrics.code_halfwords < b.metrics.code_halfwords);
                assert!(
                    !adom,
                    "archive member dominated: {:?} vs {:?}",
                    a.metrics, b.metrics
                );
            }
        }
        // All variants still compute the same function.
        let mut reference: Option<i32> = None;
        for v in &variants {
            let mut machine = Machine::new(v.program.as_ref().clone()).expect("load");
            let r = machine
                .call("filter", &[3], &mut RecordingDevice::new())
                .expect("run");
            match reference {
                None => reference = Some(r.return_value),
                Some(x) => assert_eq!(x, r.return_value),
            }
        }
    }

    #[test]
    fn parallel_search_is_byte_identical_to_single_thread() {
        // The tentpole contract: forcing a 1-thread pool and wide pools
        // over the same seed yields byte-identical fronts (compared via
        // their serialized form, programs included).
        let ir = compile_to_ir(TASK).expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let sequential = pareto_search_on(
            &Pool::new(1),
            &ir,
            "filter",
            &cm,
            &em,
            FpaConfig::standard(),
            77,
        );
        let seq_bytes = serde_json::to_string(&sequential.variants).expect("serializes");
        for threads in [2, 4] {
            let parallel = pareto_search_on(
                &Pool::new(threads),
                &ir,
                "filter",
                &cm,
                &em,
                FpaConfig::standard(),
                77,
            );
            let par_bytes = serde_json::to_string(&parallel.variants).expect("serializes");
            assert_eq!(seq_bytes, par_bytes, "{threads}-thread front diverged");
            assert_eq!(
                sequential.stats, parallel.stats,
                "{threads}-thread stats diverged"
            );
        }
    }

    #[test]
    fn search_memoizes_and_reuses_the_archive_compiles() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let front = pareto_search(
            &ir,
            "filter",
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
            FpaConfig::standard(),
            1234,
        );
        let stats = front.stats;
        let cfg = FpaConfig::standard();
        assert_eq!(stats.evaluations, cfg.population * (1 + cfg.iterations));
        assert_eq!(stats.generations, cfg.iterations);
        // Distinct genomes still collide on decoded configurations —
        // less often than under the old fixed-order encoding (ordering
        // keys distinguish permutations), but every collision and the
        // whole archive reconstruction stay compile-free.
        assert!(stats.cache_misses < stats.evaluations, "{stats:?}");
        assert!(stats.cache_hits > front.variants.len(), "{stats:?}");
        // Every cache probe is either a hit or a miss, and the archive
        // reconstruction probes are all hits (≥ one per variant).
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            stats.evaluations + front.variants.len()
        );
        assert!(stats.cache_hits >= front.variants.len(), "{stats:?}");
    }

    #[test]
    fn permutation_front_dominates_a_fixed_order_point() {
        // The phase-ordering claim, measured: same module, same task,
        // same FPA budget and seed — the permutation genome's front must
        // contain a variant that strictly dominates a point of the
        // fixed-order (PR-2 era) front in (WCET, WCEC, size).
        let ir = compile_to_ir(TASK).expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let seed = 77;

        let cache = EvalCache::new(&ir, &cm, &em);
        let fpa = MultiObjectiveFpa::new(FpaConfig::standard());
        let fixed = fpa.run_on(
            &Pool::new(1),
            CompilerConfig::FIXED_ORDER_GENOME_DIMS,
            seed,
            |genome| {
                let config = CompilerConfig::from_genome_fixed_order(genome);
                let (_, metrics) = cache.evaluate(&config)?;
                let m = metrics.of("filter")?;
                Some(vec![
                    m.wcet_cycles as f64,
                    m.wcec_pj,
                    m.code_halfwords as f64,
                ])
            },
        );
        assert!(!fixed.archive.is_empty());

        let permuted = pareto_search(&ir, "filter", &cm, &em, FpaConfig::standard(), seed).variants;
        let dominates = |new: &VariantMetrics, old: &[f64]| {
            let n = [
                new.wcet_cycles as f64,
                new.wcec_pj,
                new.code_halfwords as f64,
            ];
            n.iter().zip(old).all(|(a, b)| a <= b) && n.iter().zip(old).any(|(a, b)| a < b)
        };
        assert!(
            permuted.iter().any(|v| {
                fixed.archive.iter().any(|p| dominates(&v.metrics, &p.objectives))
            }),
            "no permutation-front variant dominates any fixed-order point:\n  new: {:?}\n  old: {:?}",
            permuted.iter().map(|v| v.metrics).collect::<Vec<_>>(),
            fixed.archive.iter().map(|p| p.objectives.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn to_genome_round_trips_representable_configs() {
        // Presets and tuned-pipeline-shaped configurations encode to
        // genomes that decode back bit-exactly (to_genome verifies the
        // round-trip, so Some == exact).
        for config in [
            CompilerConfig::all_off(),
            CompilerConfig::traditional(),
            CompilerConfig::balanced(),
            CompilerConfig::performance(),
            CompilerConfig { // a camera-pill-style tuned pipeline
                pipeline: "inline(24),licm,cse,const_fold,copy_prop,dce".parse().expect("valid"),
                ..CompilerConfig::balanced()
            },
            CompilerConfig { // unroll parameter + trailing block_layout
                pipeline: "inline(40),licm,cse,unroll(8),strength_reduce,const_fold,copy_prop,dce,block_layout"
                    .parse()
                    .expect("valid"),
                ..CompilerConfig::balanced()
            },
            CompilerConfig { // repeated cleanup round → the dup-tail gene
                pipeline: "inline(30),dce,const_fold,copy_prop,dce".parse().expect("valid"),
                mul_shift_add: true,
                pinned_regs: 4,
            },
        ] {
            let genome = config.to_genome().unwrap_or_else(|| panic!("{config:?} representable"));
            assert_eq!(genome.len(), CompilerConfig::GENOME_DIMS);
            assert_eq!(CompilerConfig::from_genome(&genome), config);
        }
        // Out-of-range parameters and off-menu repetitions are refused,
        // not silently approximated.
        let too_deep = CompilerConfig {
            pipeline: "unroll(64),const_fold".parse().expect("valid"),
            ..CompilerConfig::balanced()
        };
        assert_eq!(
            too_deep.to_genome(),
            None,
            "unroll(64) is outside the genome range"
        );
        let doubled = CompilerConfig {
            pipeline: "licm,licm".parse().expect("valid"),
            ..CompilerConfig::balanced()
        };
        assert_eq!(
            doubled.to_genome(),
            None,
            "non-tail repetition is not representable"
        );
    }

    #[test]
    fn seeded_search_weakly_dominates_the_tuned_point_at_generation_zero() {
        // The ROADMAP follow-up, measured: seeding the FPA with a tuned
        // pipeline's genome puts (at least) that point on the archive
        // before a single generation runs, so the generation-0 front
        // weakly dominates the tuned configuration.
        let ir = compile_to_ir(TASK).expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let tuned = CompilerConfig {
            pipeline: "inline(24),licm,cse,const_fold,copy_prop,dce"
                .parse()
                .expect("valid"),
            ..CompilerConfig::balanced()
        };
        let genome = tuned.to_genome().expect("tuned pipeline is representable");
        let cache = EvalCache::new(&ir, &cm, &em);
        let tuned_metrics = *cache
            .evaluate(&tuned)
            .expect("tuned compiles")
            .1
            .of("filter")
            .expect("task");

        let gen0 = FpaConfig {
            iterations: 0,
            ..FpaConfig::tiny()
        };
        let front = pareto_search_with_cache_seeded(
            &Pool::new(1),
            &cache,
            "filter",
            gen0,
            2024,
            std::slice::from_ref(&genome),
        );
        let weakly_dominates = |v: &VariantMetrics| {
            v.wcet_cycles <= tuned_metrics.wcet_cycles
                && v.wcec_pj <= tuned_metrics.wcec_pj
                && v.code_halfwords <= tuned_metrics.code_halfwords
        };
        assert!(
            front.variants.iter().any(|v| weakly_dominates(&v.metrics)),
            "generation-0 front {:?} does not cover the tuned point {tuned_metrics:?}",
            front.variants.iter().map(|v| v.metrics).collect::<Vec<_>>()
        );
        // The seeded search stays pool-width bit-identical.
        let wide = pareto_search_with_cache_seeded(
            &Pool::new(4),
            &cache,
            "filter",
            gen0,
            2024,
            std::slice::from_ref(&genome),
        );
        let bytes = |f: &ParetoFront| serde_json::to_string(&f.variants).expect("serializes");
        assert_eq!(bytes(&front), bytes(&wide));
    }

    #[test]
    fn eval_cache_failures_are_memoized_as_infeasible() {
        // Unbounded loop: WCET analysis fails, so evaluation must yield
        // None — from the cache on the second probe.
        let ir = compile_to_ir(
            "int spin(int n) { int s = 0; while (n > 0) { n = n - 1; s = s + 1; } return s; }",
        )
        .expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let cache = EvalCache::new(&ir, &cm, &em);
        assert!(cache.evaluate(&CompilerConfig::balanced()).is_none());
        assert!(cache.evaluate(&CompilerConfig::balanced()).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn analysis_memo_replays_functions_untouched_by_a_config_change() {
        // Two configurations whose pipelines differ only in a pass that
        // rewrites one function: the untouched function compiles
        // byte-identically under both, so its WCET/WCEC analyses are
        // memo replays (hits on the per-function content-hash caches),
        // not re-analyses.
        let src = "
            int leaf(int v) { return v + v + 3; }
            int hot(int x) {
                int s = 0;
                for (int i = 0; i < 6; i = i + 1) { s = s + x * i; }
                return s + leaf(x);
            }";
        let ir = compile_to_ir(src).expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let cache = EvalCache::new(&ir, &cm, &em);
        let base = CompilerConfig::all_off();
        cache.evaluate(&base).expect("base evaluates");
        let memo = cache.analysis_memo();
        let (h0, m0) = (memo.wcet.hits(), memo.wcet.misses());
        assert_eq!((h0, m0), (0, 2), "leaf and hot analysed once each");

        // `unroll(8)` rewrites `hot` (provable 6-trip loop) and leaves
        // `leaf` untouched.
        let unrolled = CompilerConfig {
            pipeline: "unroll(8)".parse().expect("valid"),
            ..CompilerConfig::all_off()
        };
        let (_, metrics) = cache.evaluate(&unrolled).expect("unrolled evaluates");
        assert!(memo.wcet.hits() > h0, "leaf's analysis must be a replay");
        assert_eq!(memo.wcet.misses(), m0 + 1, "only hot is re-analysed");
        assert!(memo.energy.hits() > 0, "the energy memo shares the keying");
        // Memoized evaluation is observationally identical to a fresh
        // one.
        let (_, fresh) = evaluate_module(&ir, &unrolled, &cm, &em).expect("fresh");
        assert_eq!(&fresh, &metrics);
    }

    #[test]
    fn module_metrics_sort_and_binary_search() {
        let m = |w| VariantMetrics {
            wcet_cycles: w,
            wcec_pj: 1.0,
            code_halfwords: 4,
        };
        let metrics = ModuleMetrics::new(vec![
            ("zeta".into(), m(3)),
            ("alpha".into(), m(1)),
            ("mid".into(), m(2)),
        ]);
        assert!(metrics.functions().windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(metrics.of("alpha").map(|v| v.wcet_cycles), Some(1));
        assert_eq!(metrics.of("mid").map(|v| v.wcet_cycles), Some(2));
        assert_eq!(metrics.of("zeta").map(|v| v.wcet_cycles), Some(3));
        assert!(metrics.of("aardvark").is_none());
        assert!(metrics.of("zz").is_none());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig { cases: 16, ..proptest::ProptestConfig::default() })]

        /// Cached and uncached evaluation agree for random pipelines:
        /// whatever genome the search proposes, `EvalCache` returns
        /// exactly what a fresh `evaluate_module` computes.
        #[test]
        fn cached_and_uncached_evaluation_agree(genome in proptest::collection::vec(0.0f64..1.0, CompilerConfig::GENOME_DIMS)) {
            let ir = compile_to_ir(TASK).expect("front-end");
            let cm = CycleModel::pg32();
            let em = IsaEnergyModel::pg32_datasheet();
            let config = CompilerConfig::from_genome(&genome);
            let cache = EvalCache::new(&ir, &cm, &em);
            let direct = evaluate_module(&ir, &config, &cm, &em).ok();
            let first = cache.evaluate(&config);
            let second = cache.evaluate(&config);
            match (direct, first, second) {
                (Some((dp, dm)), Some((p1, m1)), Some((p2, m2))) => {
                    proptest::prop_assert!(dp == *p1 && *p1 == *p2, "programs diverged for {config:?}");
                    proptest::prop_assert_eq!(&dm, &m1);
                    proptest::prop_assert_eq!(&m1, &m2);
                }
                (None, None, None) => {}
                other => proptest::prop_assert!(false, "cached/uncached disagree: {:?}", other.0.is_some()),
            }
            proptest::prop_assert_eq!((cache.hits(), cache.misses()), (1, 1));
        }
    }

    #[test]
    fn code_size_metric_counts_halfwords() {
        let ir = compile_to_ir("int f() { return 1; }").expect("front-end");
        let program = compile_module(&ir, &CompilerConfig::all_off()).expect("compile");
        let f = program.function("f").expect("f");
        assert!(code_size_halfwords(f) > 0);
    }
}
