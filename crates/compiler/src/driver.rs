//! Compiler driver: configurations, evaluation, Pareto variant search.
//!
//! A [`CompilerConfig`] is one point in the optimisation space (Fig. 1's
//! "multi-criteria optimising compiler" explores many). The driver
//! compiles a configuration, invokes the WCET and energy analyser
//! plug-ins, and [`pareto_front_for`] runs the FPA to produce the
//! multi-version task variants the coordination layer schedules.

use crate::codegen::{generate_program, generate_program_with, CodegenError, CodegenOpts};
use crate::fpa::{FpaConfig, MultiObjectiveFpa, ParetoPoint};
use crate::passes::{run_passes, run_passes_per_function, PassSpec, Pipeline};
use std::collections::HashMap;
use serde::{Deserialize, Serialize};
use teamplay_energy::{analyze_program_energy, IsaEnergyModel};
use teamplay_isa::{encode::encode_sequence, CycleModel, Function, Program};
use teamplay_minic::ir::IrModule;
use teamplay_wcet::analyze_program;

/// One compiler configuration — the genome the multi-objective search
/// explores: a registry-backed IR pass [`Pipeline`] plus the two codegen
/// knobs the PG32 backend exposes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// The IR optimisation pipeline (see [`crate::passes::REGISTRY`]).
    pub pipeline: Pipeline,
    /// Shift-add decomposition of small multipliers, register-resident
    /// in codegen (energy ↓, cycles ↑).
    pub mul_shift_add: bool,
    /// Register-pinning level (0, 2 or 4 callee-saved registers).
    pub pinned_regs: usize,
}

impl CompilerConfig {
    /// Everything off: the unoptimised reference point (O0).
    pub fn all_off() -> CompilerConfig {
        CompilerConfig { pipeline: Pipeline::o0(), mul_shift_add: false, pinned_regs: 0 }
    }

    /// The "traditional toolchain" baseline of the paper's evaluation:
    /// a generic single-objective setting (the O1 cleanup trio, no
    /// ETS-aware choices).
    pub fn traditional() -> CompilerConfig {
        CompilerConfig { pipeline: Pipeline::o1(), mul_shift_add: false, pinned_regs: 0 }
    }

    /// A balanced multi-criteria default (O2).
    pub fn balanced() -> CompilerConfig {
        CompilerConfig { pipeline: Pipeline::o2(), mul_shift_add: false, pinned_regs: 2 }
    }

    /// Time-first: every speed lever pulled (O3 + full pinning).
    pub fn performance() -> CompilerConfig {
        CompilerConfig { pipeline: Pipeline::o3(), mul_shift_add: false, pinned_regs: 4 }
    }

    /// Energy-first: accepts extra cycles for lower picojoules.
    pub fn energy_saver() -> CompilerConfig {
        CompilerConfig {
            pipeline: "inline(60),strength_reduce,const_fold,copy_prop,dce"
                .parse()
                .expect("preset pipeline is valid"),
            mul_shift_add: true,
            pinned_regs: 4,
        }
    }

    /// Decode a genome in `[0,1]^8` into a configuration (the FPA's
    /// phenotype mapping): each pass bit contributes its registry-backed
    /// pipeline element, in canonical order.
    pub fn from_genome(genome: &[f64]) -> CompilerConfig {
        let bit = |i: usize| genome.get(i).copied().unwrap_or(0.0) > 0.5;
        let g7 = genome.get(7).copied().unwrap_or(0.0);
        let mut pipeline = Pipeline::default();
        if bit(0) {
            let threshold = 20 + (genome.get(1).copied().unwrap_or(0.0) * 60.0) as usize;
            pipeline.push(PassSpec::with_param("inline", threshold));
        }
        if bit(5) {
            pipeline.push(PassSpec::new("strength_reduce"));
        }
        if bit(2) {
            pipeline.push(PassSpec::new("const_fold"));
        }
        if bit(3) {
            pipeline.push(PassSpec::new("copy_prop"));
        }
        if bit(4) {
            pipeline.push(PassSpec::new("dce"));
        }
        CompilerConfig {
            pipeline,
            mul_shift_add: bit(6),
            pinned_regs: if g7 < 1.0 / 3.0 {
                0
            } else if g7 < 2.0 / 3.0 {
                2
            } else {
                4
            },
        }
    }

    /// Number of genome dimensions used by [`CompilerConfig::from_genome`].
    pub const GENOME_DIMS: usize = 8;
}

impl Default for CompilerConfig {
    fn default() -> Self {
        CompilerConfig::balanced()
    }
}

/// Compile an IR module under a configuration.
///
/// # Errors
/// Propagates [`CodegenError`].
pub fn compile_module(ir: &IrModule, config: &CompilerConfig) -> Result<Program, CodegenError> {
    let mut module = ir.clone();
    run_passes(&mut module, config);
    generate_program(
        &module,
        CodegenOpts { pinned_regs: config.pinned_regs, mul_shift_add: config.mul_shift_add },
    )
}

/// Compile a module with per-function configurations: every function is
/// optimised and code-generated under its own [`CompilerConfig`] (tasks
/// keep their selected Pareto variants; everything else uses `default`).
///
/// # Errors
/// Propagates [`CodegenError`].
pub fn compile_module_per_function(
    ir: &IrModule,
    configs: &HashMap<String, CompilerConfig>,
    default: &CompilerConfig,
) -> Result<Program, CodegenError> {
    let mut module = ir.clone();
    run_passes_per_function(&mut module, configs, default);
    let codegen_opts: HashMap<String, CodegenOpts> = configs
        .iter()
        .map(|(name, c)| {
            (
                name.clone(),
                CodegenOpts { pinned_regs: c.pinned_regs, mul_shift_add: c.mul_shift_add },
            )
        })
        .collect();
    generate_program_with(
        &module,
        &codegen_opts,
        CodegenOpts { pinned_regs: default.pinned_regs, mul_shift_add: default.mul_shift_add },
    )
}

/// Encoded size of a function in 16-bit halfwords (terminators count one
/// halfword each, as a branch would).
pub fn code_size_halfwords(f: &Function) -> usize {
    let mut words = 0usize;
    for b in &f.blocks {
        words += encode_sequence(&b.insns).len();
        words += 1;
    }
    words
}

/// The three ETS-relevant metrics of one compiled task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariantMetrics {
    /// Static WCET bound (cycles).
    pub wcet_cycles: u64,
    /// Static worst-case energy bound (picojoules).
    pub wcec_pj: f64,
    /// Encoded size (16-bit halfwords).
    pub code_halfwords: usize,
}

/// Whole-module metrics for a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleMetrics {
    /// Per-function metrics in name order.
    pub functions: Vec<(String, VariantMetrics)>,
}

impl ModuleMetrics {
    /// Metrics for one function.
    pub fn of(&self, name: &str) -> Option<&VariantMetrics> {
        self.functions.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }
}

/// Compile and statically analyse a module under a configuration.
///
/// # Errors
/// Codegen errors are returned as `Err`; analysis errors (unbounded
/// loops, recursion) are folded into the error string.
pub fn evaluate_module(
    ir: &IrModule,
    config: &CompilerConfig,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
) -> Result<(Program, ModuleMetrics), String> {
    let program = compile_module(ir, config).map_err(|e| e.to_string())?;
    let wcet = analyze_program(&program, cycle_model).map_err(|e| e.to_string())?;
    let energy =
        analyze_program_energy(&program, energy_model, cycle_model).map_err(|e| e.to_string())?;
    let mut functions = Vec::new();
    for (name, f) in &program.functions {
        functions.push((
            name.clone(),
            VariantMetrics {
                wcet_cycles: wcet.wcet_cycles(name).expect("analysed"),
                wcec_pj: energy.wcec_pj(name).expect("analysed"),
                code_halfwords: code_size_halfwords(f),
            },
        ));
    }
    Ok((program, ModuleMetrics { functions }))
}

/// A compiled task variant on the Pareto front.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskVariant {
    /// The configuration that produced it.
    pub config: CompilerConfig,
    /// Its static metrics for the task function.
    pub metrics: VariantMetrics,
    /// The full compiled program (all functions under this config).
    pub program: Program,
}

/// Run the FPA over compiler configurations and return the Pareto front
/// of variants for `task` (objectives: WCET, WCEC, code size).
///
/// Deterministic for a fixed seed. Returns variants sorted by WCET.
pub fn pareto_front_for(
    ir: &IrModule,
    task: &str,
    cycle_model: &CycleModel,
    energy_model: &IsaEnergyModel,
    fpa_config: FpaConfig,
    seed: u64,
) -> Vec<TaskVariant> {
    let fpa = MultiObjectiveFpa::new(fpa_config);
    let outcome = fpa.run(CompilerConfig::GENOME_DIMS, seed, |genome| {
        let config = CompilerConfig::from_genome(genome);
        let (_, metrics) = evaluate_module(ir, &config, cycle_model, energy_model).ok()?;
        let m = metrics.of(task)?;
        Some(vec![m.wcet_cycles as f64, m.wcec_pj, m.code_halfwords as f64])
    });

    let mut variants: Vec<TaskVariant> = Vec::new();
    for ParetoPoint { genome, objectives } in outcome.archive {
        let config = CompilerConfig::from_genome(&genome);
        // Deduplicate by decoded configuration.
        if variants.iter().any(|v| v.config == config) {
            continue;
        }
        let Ok((program, metrics)) = evaluate_module(ir, &config, cycle_model, energy_model)
        else {
            continue;
        };
        let m = *metrics.of(task).expect("task analysed");
        debug_assert!((m.wcet_cycles as f64 - objectives[0]).abs() < 1.0);
        variants.push(TaskVariant { config, metrics: m, program });
    }
    variants.sort_by_key(|v| v.metrics.wcet_cycles);
    variants
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_minic::compile_to_ir;
    use teamplay_sim::{Machine, RecordingDevice};

    const TASK: &str = "
        int coeff[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
        int scale(int v) { return v * 10; }
        int filter(int x) {
            int acc = 0;
            for (int i = 0; i < 16; i = i + 1) {
                acc = acc + coeff[i] * (x + i);
            }
            return scale(acc);
        }";

    #[test]
    fn evaluate_module_reports_all_functions() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let (_, metrics) = evaluate_module(
            &ir,
            &CompilerConfig::balanced(),
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
        )
        .expect("evaluate");
        assert!(metrics.of("filter").is_some());
        assert!(metrics.of("scale").is_some());
        assert!(metrics.of("missing").is_none());
    }

    #[test]
    fn presets_order_as_expected() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        let eval = |c: &CompilerConfig| {
            evaluate_module(&ir, c, &cm, &em).expect("evaluate").1.of("filter").copied().expect("filter")
        };
        let off = eval(&CompilerConfig::all_off());
        let traditional = eval(&CompilerConfig::traditional());
        let perf = eval(&CompilerConfig::performance());
        let energy = eval(&CompilerConfig::energy_saver());
        assert!(perf.wcet_cycles < traditional.wcet_cycles);
        assert!(traditional.wcet_cycles <= off.wcet_cycles);
        assert!(energy.wcec_pj < traditional.wcec_pj);
        // The performance preset is the fastest; the energy preset trades
        // cycles away (shift-add chains) and must never be faster.
        assert!(perf.wcet_cycles <= energy.wcet_cycles);
    }

    #[test]
    fn every_preset_compiles_to_working_code() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let mut reference: Option<i32> = None;
        for config in [
            CompilerConfig::all_off(),
            CompilerConfig::traditional(),
            CompilerConfig::balanced(),
            CompilerConfig::performance(),
            CompilerConfig::energy_saver(),
        ] {
            let program = compile_module(&ir, &config).expect("compile");
            let mut machine = Machine::new(program).expect("load");
            let r = machine.call("filter", &[5], &mut RecordingDevice::new()).expect("run");
            match reference {
                None => reference = Some(r.return_value),
                Some(v) => assert_eq!(v, r.return_value, "config {config:?} diverged"),
            }
        }
    }

    #[test]
    fn genome_decoding_covers_the_space() {
        let lo = CompilerConfig::from_genome(&[0.0; 8]);
        assert!(lo.pipeline.passes.is_empty() && lo.pinned_regs == 0);
        let hi = CompilerConfig::from_genome(&[1.0; 8]);
        assert!(hi.pipeline.contains("inline") && hi.pinned_regs == 4 && hi.mul_shift_add);
        assert_eq!(hi.pipeline.param_of("inline"), Some(80), "threshold scales with g1");
        for name in ["strength_reduce", "const_fold", "copy_prop", "dce"] {
            assert!(hi.pipeline.contains(name), "{name} missing from the full genome");
        }
        let mid = CompilerConfig::from_genome(&[0.5; 8]);
        assert_eq!(mid.pinned_regs, 2);
        // Every decoded pipeline resolves against the registry.
        crate::passes::PassManager::new(hi.pipeline).expect("genome pipelines are registry-backed");
    }

    #[test]
    fn pareto_front_contains_distinct_tradeoffs() {
        let ir = compile_to_ir(TASK).expect("front-end");
        let variants = pareto_front_for(
            &ir,
            "filter",
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
            FpaConfig::tiny(),
            1234,
        );
        assert!(!variants.is_empty());
        // Sorted by WCET and mutually non-dominated in (wcet, wcec, size).
        for pair in variants.windows(2) {
            assert!(pair[0].metrics.wcet_cycles <= pair[1].metrics.wcet_cycles);
        }
        for a in &variants {
            for b in &variants {
                if a.config == b.config {
                    continue;
                }
                let adom = a.metrics.wcet_cycles <= b.metrics.wcet_cycles
                    && a.metrics.wcec_pj <= b.metrics.wcec_pj
                    && a.metrics.code_halfwords <= b.metrics.code_halfwords
                    && (a.metrics.wcet_cycles < b.metrics.wcet_cycles
                        || a.metrics.wcec_pj < b.metrics.wcec_pj
                        || a.metrics.code_halfwords < b.metrics.code_halfwords);
                assert!(!adom, "archive member dominated: {:?} vs {:?}", a.metrics, b.metrics);
            }
        }
        // All variants still compute the same function.
        let mut reference: Option<i32> = None;
        for v in &variants {
            let mut machine = Machine::new(v.program.clone()).expect("load");
            let r = machine.call("filter", &[3], &mut RecordingDevice::new()).expect("run");
            match reference {
                None => reference = Some(r.return_value),
                Some(x) => assert_eq!(x, r.return_value),
            }
        }
    }

    #[test]
    fn code_size_metric_counts_halfwords() {
        let ir = compile_to_ir("int f() { return 1; }").expect("front-end");
        let program = compile_module(&ir, &CompilerConfig::all_off()).expect("compile");
        let f = program.function("f").expect("f");
        assert!(code_size_halfwords(f) > 0);
    }
}
