//! The camera-pill use case (paper Section IV-A).
//!
//! A capsule endoscope's frame pipeline on a Cortex-M0-class predictable
//! core: `capture` reads a 16×16 sensor frame from a port, `compress`
//! delta-encodes it 4:1, `encrypt` runs XTEA over the compressed payload
//! (the frames are medical data — paper: "subject to strict privacy
//! regulations"), and `transmit` radios the ciphertext out. All four
//! tasks are annotated with CSL contracts; the whole pipeline is genuine
//! Mini-C compiled by the multi-criteria compiler and executed on the
//! cycle simulator.

use teamplay_sim::RecordingDevice;

/// Sensor input port.
pub const SENSOR_PORT: u8 = 0;
/// Radio output port.
pub const RADIO_PORT: u8 = 1;
/// Frame side length (pixels).
pub const FRAME_DIM: usize = 16;
/// Words per frame.
pub const FRAME_WORDS: usize = FRAME_DIM * FRAME_DIM;
/// Words in the compressed payload (4 deltas per word).
pub const PACKED_WORDS: usize = FRAME_WORDS / 4;
/// PG32 clock of the pill (MHz).
pub const CLOCK_MHZ: f64 = 48.0;

/// The annotated Mini-C source of the pipeline.
pub const SOURCE: &str = r#"
int img[256];
int packed[64];
int cipher[64];
int xtea_key[4];
int frame_checksum = 0;

/*@ task capture period(40ms) deadline(40ms) wcet_budget(16ms) energy_budget(1300uJ) @*/
void capture() {
    for (int i = 0; i < 256; i = i + 1) {
        img[i] = __in(0) & 255;
    }
    return;
}

int pack4(int b0, int b1, int b2, int b3) {
    return (b0 & 255) | ((b1 & 255) << 8) | ((b2 & 255) << 16) | ((b3 & 255) << 24);
}

/*@ task compress after(capture) wcet_budget(16ms) energy_budget(1300uJ) @*/
void compress() {
    int prev = 0;
    int deltas[256];
    for (int i = 0; i < 256; i = i + 1) {
        deltas[i] = (img[i] - prev) & 255;
        prev = img[i];
    }
    for (int j = 0; j < 64; j = j + 1) {
        packed[j] = pack4(deltas[4 * j], deltas[4 * j + 1], deltas[4 * j + 2], deltas[4 * j + 3]);
    }
    return;
}

void xtea_block(int block[], int idx) {
    int v0 = block[idx];
    int v1 = block[idx + 1];
    int sum = 0;
    int delta = 0x9E3779B9;
    /*@ loop bound(32) @*/
    for (int round = 0; round < 32; round = round + 1) {
        v0 = v0 + (((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + xtea_key[sum & 3])));
        sum = sum + delta;
        v1 = v1 + (((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + xtea_key[(sum >> 11) & 3])));
    }
    block[idx] = v0;
    block[idx + 1] = v1;
    return;
}

/*@ task encrypt after(compress) security(ct) security_floor(1) secret(key) reliability(1) wcet_budget(20ms) energy_budget(2600uJ) @*/
void encrypt(int key) {
    int k = key;
    if (key < 0) { k = key ^ 0x5A5A5A5A; } else { k = key; }
    xtea_key[0] = k;
    xtea_key[1] = k ^ 0x9E3779B9;
    xtea_key[2] = k + 0x9E3779B9;
    xtea_key[3] = ~k;
    for (int i = 0; i < 64; i = i + 1) {
        cipher[i] = packed[i];
    }
    for (int b = 0; b < 32; b = b + 1) {
        xtea_block(cipher, 2 * b);
    }
    return;
}

/*@ task transmit after(encrypt) deadline(40ms) degraded_deadline(48ms) wcet_budget(10ms) energy_budget(1400uJ) @*/
void transmit() {
    int check = 0;
    for (int i = 0; i < 64; i = i + 1) {
        __out(1, cipher[i]);
        check = check ^ cipher[i];
    }
    frame_checksum = check;
    __out(1, check);
    return;
}
"#;

/// Task entry functions in pipeline order, with the argument each takes.
pub const TASKS: [(&str, &str); 4] = [
    ("capture", "capture"),
    ("compress", "compress"),
    ("encrypt", "encrypt"),
    ("transmit", "transmit"),
];

/// The tuned pass pipeline for this application (registered in the
/// [`crate::catalog`] under `"camera_pill"`).
///
/// Rationale: `inline(24)` absorbs `pack4` into `compress` (the only
/// small hot callee) without ballooning `encrypt`'s 32-round XTEA body;
/// `licm` hoists the per-frame constants of the delta/packing loops;
/// `cse` shares the repeated `img[i]` loads of the delta encoder and the
/// shift-mask subterms of XTEA; `gvn` then catches what block-local
/// sharing cannot — the XTEA round subterms recomputed across the
/// branchy round body dominate their reuses, worth ~5 % WCET/WCEC on
/// `compress` over `cse` alone; the cleanup trio folds what inlining
/// exposed. No `unroll`: every hot loop runs 64–256 trips — far past
/// any sensible size budget on a pill-sized flash.
pub fn recommended_pipeline() -> &'static str {
    "inline(24),licm,cse,gvn,const_fold,copy_prop,dce"
}

/// A synthetic 16×16 endoscopy frame: smooth tissue gradient with a few
/// bright features, deterministic in `seed`.
pub fn synthetic_frame(seed: u32) -> Vec<i32> {
    let mut frame = Vec::with_capacity(FRAME_WORDS);
    for y in 0..FRAME_DIM {
        for x in 0..FRAME_DIM {
            let gradient = (8 * x + 5 * y) as i32 % 97;
            let feature = if (x * 7 + y * 13 + seed as usize).is_multiple_of(41) {
                90
            } else {
                0
            };
            frame.push(((gradient + feature + seed as i32) % 256).abs());
        }
    }
    frame
}

/// A device with one frame queued on the sensor port.
pub fn frame_device(seed: u32) -> RecordingDevice {
    let mut dev = RecordingDevice::new();
    dev.queue(SENSOR_PORT, synthetic_frame(seed));
    dev
}

/// Reference XTEA encipher (Rust) for validating the Mini-C
/// implementation bit-for-bit.
pub fn xtea_encipher_reference(v: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let (mut v0, mut v1) = (v[0], v[1]);
    let mut sum: u32 = 0;
    let delta: u32 = 0x9E37_79B9;
    for _ in 0..32 {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(delta);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    [v0, v1]
}

/// The key-expansion used by the pipeline (one secret word → 4-word
/// key): negative keys are whitened first — the secret-guarded diamond
/// the countermeasure ladder must flatten for the contract to hold.
pub fn expand_key(key: i32) -> [u32; 4] {
    let k = if key < 0 { key ^ 0x5A5A_5A5A } else { key } as u32;
    [k, k ^ 0x9E37_79B9, k.wrapping_add(0x9E37_79B9), !k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_compiler::{compile_module, CompilerConfig};
    use teamplay_minic::compile_to_ir;
    use teamplay_sim::Machine;

    fn build(config: &CompilerConfig) -> Machine {
        let ir = compile_to_ir(SOURCE).expect("pipeline parses");
        let program = compile_module(&ir, config).expect("pipeline compiles");
        Machine::new(program).expect("pipeline loads")
    }

    fn run_pipeline(machine: &mut Machine, seed: u32, key: i32) -> (Vec<i32>, i32) {
        machine.reset_data();
        let mut dev = frame_device(seed);
        machine.call("capture", &[], &mut dev).expect("capture");
        machine.call("compress", &[], &mut dev).expect("compress");
        machine.call("encrypt", &[key], &mut dev).expect("encrypt");
        machine.call("transmit", &[], &mut dev).expect("transmit");
        let sent: Vec<i32> = dev.outputs.iter().map(|(_, v)| *v).collect();
        let checksum = machine.read_global("frame_checksum", 0).expect("checksum");
        (sent, checksum)
    }

    #[test]
    fn multi_version_frame_pipeline_is_schedulable_at_48mhz() {
        use teamplay_compiler::evaluate_module;
        use teamplay_coord::{schedule_energy_aware, CoordTask, ExecOption, TaskSet};
        // The HEFT scheduler's view of the pill: each task offers its
        // tuned and its traditional variant; the 40 ms frame leaves
        // slack, so the schedule must validate and settle on the
        // energy-minimal option of every task (no upgrade fires).
        let ir = compile_to_ir(SOURCE).expect("parses");
        let cm = teamplay_isa::CycleModel::pg32();
        let em = teamplay_energy::IsaEnergyModel::pg32_datasheet();
        let tuned = CompilerConfig {
            pipeline: recommended_pipeline().parse().expect("valid"),
            ..CompilerConfig::balanced()
        };
        let variants = [
            (
                "tuned",
                evaluate_module(&ir, &tuned, &cm, &em)
                    .expect("tuned analyses")
                    .1,
            ),
            (
                "o1",
                evaluate_module(&ir, &CompilerConfig::traditional(), &cm, &em)
                    .expect("o1 analyses")
                    .1,
            ),
        ];
        let mut tasks = Vec::new();
        let mut prev: Option<&str> = None;
        let mut greenest_total = 0.0f64;
        for (task, func) in TASKS {
            let options: Vec<ExecOption> = variants
                .iter()
                .map(|(label, metrics)| {
                    let m = metrics.of(func).expect("task analysed");
                    ExecOption {
                        label: (*label).into(),
                        core: "m0".into(),
                        time_us: m.wcet_cycles as f64 / CLOCK_MHZ,
                        energy_uj: m.wcec_pj / 1e6,
                        security_level: 0,
                    }
                })
                .collect();
            greenest_total += options
                .iter()
                .map(|o| o.energy_uj)
                .fold(f64::INFINITY, f64::min);
            let mut t = CoordTask::new(task, options);
            if let Some(p) = prev {
                t.after.push(p.into());
            }
            prev = Some(task);
            tasks.push(t);
        }
        let set = TaskSet::new(tasks, vec!["m0".into()], 40_000.0).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable inside the 40ms frame");
        s.validate(&set).expect("valid");
        assert!(
            (s.total_energy_uj - greenest_total).abs() <= 1e-6,
            "slack should keep every task green: {} vs floor {greenest_total}",
            s.total_energy_uj
        );
    }

    #[test]
    fn pipeline_runs_end_to_end_and_transmits() {
        let mut m = build(&CompilerConfig::balanced());
        let (sent, checksum) = run_pipeline(&mut m, 3, 0x1234_5678);
        assert_eq!(sent.len(), PACKED_WORDS + 1, "64 cipher words + checksum");
        assert_eq!(*sent.last().expect("checksum word"), checksum);
        let xor = sent[..PACKED_WORDS].iter().fold(0i32, |a, b| a ^ b);
        assert_eq!(xor, checksum, "checksum covers the payload");
    }

    #[test]
    fn minic_xtea_matches_reference_implementation() {
        let mut m = build(&CompilerConfig::traditional());
        let key = 0x0BAD_F00Di32;
        let (sent, _) = run_pipeline(&mut m, 7, key);
        // Reconstruct: compress the frame in Rust, encrypt with the
        // reference XTEA, compare cipher words.
        let frame = synthetic_frame(7);
        let mut deltas = Vec::with_capacity(FRAME_WORDS);
        let mut prev = 0i32;
        for &p in &frame {
            let v = (p & 255).wrapping_sub(prev) & 255;
            deltas.push(v);
            prev = p & 255;
        }
        let mut packed: Vec<u32> = (0..PACKED_WORDS)
            .map(|j| {
                (deltas[4 * j] as u32 & 255)
                    | ((deltas[4 * j + 1] as u32 & 255) << 8)
                    | ((deltas[4 * j + 2] as u32 & 255) << 16)
                    | ((deltas[4 * j + 3] as u32 & 255) << 24)
            })
            .collect();
        let k = expand_key(key);
        for b in 0..PACKED_WORDS / 2 {
            let out = xtea_encipher_reference([packed[2 * b], packed[2 * b + 1]], k);
            packed[2 * b] = out[0];
            packed[2 * b + 1] = out[1];
        }
        let expected: Vec<i32> = packed.iter().map(|w| *w as i32).collect();
        assert_eq!(
            &sent[..PACKED_WORDS],
            &expected[..],
            "Mini-C XTEA must match reference"
        );
    }

    #[test]
    fn capture_masks_to_byte_range() {
        let mut m = build(&CompilerConfig::traditional());
        m.reset_data();
        let mut dev = RecordingDevice::new();
        dev.queue(SENSOR_PORT, vec![300, -1, 128]);
        m.call("capture", &[], &mut dev).expect("capture");
        assert_eq!(m.read_global("img", 0), Some(300 & 255));
        assert_eq!(m.read_global("img", 1), Some(255));
        assert_eq!(m.read_global("img", 2), Some(128));
    }

    #[test]
    fn optimised_build_beats_traditional_on_cycles_and_energy() {
        let mut trad = build(&CompilerConfig::traditional());
        let mut opt = build(&CompilerConfig::performance());
        let total = |m: &mut Machine| {
            m.reset_data();
            let mut dev = frame_device(1);
            let mut cycles = 0u64;
            let mut energy = 0.0f64;
            for (task, _) in TASKS {
                let args: &[i32] = if task == "encrypt" { &[77] } else { &[] };
                let r = m.call(task, args, &mut dev).expect("task runs");
                cycles += r.cycles;
                energy += r.energy_pj;
            }
            (cycles, energy)
        };
        let (tc, te) = total(&mut trad);
        let (oc, oe) = total(&mut opt);
        assert!(oc < tc, "optimised must be faster: {oc} vs {tc}");
        assert!(oe < te, "optimised must be greener: {oe} vs {te}");
        // Results must agree regardless of configuration.
        let (sent_t, _) = run_pipeline(&mut trad, 5, 9);
        let (sent_o, _) = run_pipeline(&mut opt, 5, 9);
        assert_eq!(sent_t, sent_o);
    }

    #[test]
    fn whole_pipeline_is_wcet_analysable() {
        use teamplay_isa::CycleModel;
        let ir = compile_to_ir(SOURCE).expect("parses");
        let program = compile_module(&ir, &CompilerConfig::balanced()).expect("compiles");
        let report = teamplay_wcet::analyze_program(&program, &CycleModel::pg32()).expect("wcet");
        for (task, _) in TASKS {
            let wcet = report.wcet_cycles(task).expect("bounded");
            assert!(wcet > 0);
            // Everything fits the 40 ms frame at 48 MHz with margin.
            assert!(
                report.wcet_us(task, CLOCK_MHZ).expect("bounded") < 40_000.0,
                "{task} too slow"
            );
        }
    }

    #[test]
    fn csl_model_extracts_the_four_tasks() {
        let program = teamplay_minic::parse_and_check(SOURCE).expect("front-end");
        let model = teamplay_csl::extract_model(&program).expect("extract");
        assert_eq!(model.tasks.len(), 4);
        let order = model.topological_order();
        assert_eq!(order.first(), Some(&"capture"));
        assert_eq!(order.last(), Some(&"transmit"));
        let encrypt = model.task("encrypt").expect("encrypt");
        assert_eq!(encrypt.secrets, vec!["key".to_string()]);
        // The fault-tolerance clauses reach the model: encrypt reserves
        // one re-execution, transmit declares a degraded-mode deadline.
        assert_eq!(encrypt.reexecutions, 1);
        assert_eq!(
            model
                .task("transmit")
                .expect("transmit")
                .degraded_deadline
                .expect("declared")
                .as_ms(),
            48.0
        );
    }
}
