//! The uncrewed-aerial-vehicle use case (paper Section IV-C).
//!
//! A fixed-wing search-and-rescue (SAR) drone carries a TK1-class
//! computing payload running a vision pipeline (capture → preprocess →
//! detect → track → downlink). The airframe draws ≈ 28 W in cruise;
//! the payload draws 2–11 W depending on how the pipeline is mapped and
//! clocked. Because flight time is battery energy divided by total
//! power, every payload watt saved is minutes of coverage gained — the
//! paper reports an 18 % payload-energy reduction buying ≈ 4 minutes.
//!
//! This module provides the pipeline's work model, the mission-level
//! power/endurance arithmetic, and helpers that connect the profiler's
//! measurements to the coordination layer.

use serde::{Deserialize, Serialize};
use teamplay_coord::{CoordTask, TaskSet};
use teamplay_profiler::{exec_options_from_profile, ProfileReport};
use teamplay_sim::{Battery, WorkItem};

/// Cruise power of the airframe (motors + avionics), watts.
pub const MECHANICAL_POWER_W: f64 = 28.0;
/// Frame period of the detection pipeline (µs) — 3.3 Hz survey rate.
pub const FRAME_PERIOD_US: f64 = 300_000.0;

/// The SAR payload pipeline: name, work, dependencies.
///
/// Work is calibrated in mega-cycles on a 1 GHz reference core. The
/// GPU-friendly detection chain (preprocess → detect → track) runs
/// alongside the CPU-side services every SAR payload carries — video
/// encoding for the ground station, stabilisation and geotagging — which
/// is what puts the software draw in the paper's 2–11 W envelope.
pub fn sar_pipeline() -> Vec<(String, WorkItem, Vec<String>)> {
    vec![
        (
            "capture".into(),
            WorkItem {
                ref_mcycles: 36.0,
                gpu_speedup: 0.5,
                utilisation: 0.6,
            },
            vec![],
        ),
        (
            "preprocess".into(),
            WorkItem {
                ref_mcycles: 135.0,
                gpu_speedup: 5.0,
                utilisation: 0.9,
            },
            vec!["capture".into()],
        ),
        (
            "detect".into(),
            WorkItem {
                ref_mcycles: 660.0,
                gpu_speedup: 11.0,
                utilisation: 1.0,
            },
            vec!["preprocess".into()],
        ),
        (
            "track".into(),
            WorkItem {
                ref_mcycles: 90.0,
                gpu_speedup: 2.0,
                utilisation: 0.8,
            },
            vec!["detect".into()],
        ),
        (
            "stabilise".into(),
            WorkItem {
                ref_mcycles: 120.0,
                gpu_speedup: 0.4,
                utilisation: 0.8,
            },
            vec!["capture".into()],
        ),
        (
            "video_encode".into(),
            WorkItem {
                ref_mcycles: 320.0,
                gpu_speedup: 0.8,
                utilisation: 0.9,
            },
            vec!["capture".into()],
        ),
        (
            "geotag".into(),
            WorkItem {
                ref_mcycles: 60.0,
                gpu_speedup: 0.3,
                utilisation: 0.7,
            },
            vec!["stabilise".into()],
        ),
        (
            "downlink".into(),
            WorkItem {
                ref_mcycles: 24.0,
                gpu_speedup: 0.3,
                utilisation: 0.5,
            },
            vec!["track".into(), "video_encode".into(), "geotag".into()],
        ),
    ]
}

/// Camera-tile input port of the M0 co-processor kernel.
pub const TILE_PORT: u8 = 0;
/// Detection-report output port of the M0 co-processor kernel.
pub const REPORT_PORT: u8 = 1;

/// The annotated Mini-C kernel of the payload's M0 co-processor: the
/// low-power "wake the TK1" pre-detector that scans an 8×8 luminance
/// tile for strong horizontal gradients while the big cores sleep.
/// This is the UAV's compiled-code leg, the fourth kernel the pass
/// differential suite and the per-app pipeline study run on.
pub const DETECT_KERNEL_SOURCE: &str = r#"
int tile[64];
int grad[64];
int detections = 0;

int magnitude(int v) {
    if (v < 0) { return 0 - v; }
    return v;
}

/*@ task predetect period(300ms) deadline(300ms) wcet_budget(50ms) energy_budget(6mJ) @*/
void predetect(int threshold) {
    for (int i = 0; i < 64; i = i + 1) {
        tile[i] = __in(0) & 1023;
    }
    int hits = 0;
    for (int y = 0; y < 8; y = y + 1) {
        for (int x = 1; x < 7; x = x + 1) {
            int g = magnitude(tile[y * 8 + x + 1] - tile[y * 8 + x - 1]);
            grad[y * 8 + x] = g;
            if (g > threshold) { hits = hits + 1; }
        }
    }
    detections = hits;
    __out(1, hits);
    return;
}
"#;

/// The tuned pass pipeline for the M0 pre-detector (registered in the
/// [`crate::catalog`] under `"uav"`).
///
/// Rationale: `inline(24)` folds `magnitude` into the scan loop; `licm`
/// then hoists the three `y * 8` row terms out of the column loop and
/// `cse` collapses them (plus the shared `+ x` address arithmetic) to
/// one; `unroll(64)` flattens the straight-line tile-load loop — the
/// endurance budget happily pays co-processor flash for 64 fewer
/// compare+branches per frame; cleanup and `block_layout` finish the
/// straightened body.
pub fn recommended_pipeline() -> &'static str {
    "inline(24),licm,cse,unroll(64),const_fold,copy_prop,dce,block_layout"
}

/// Build the coordination task set from a profiling report.
///
/// `margin` is the p95 safety factor (soft real-time); the deadline is
/// one frame period.
///
/// # Errors
/// Propagates task-set validation errors as text.
pub fn sar_task_set(
    report: &ProfileReport,
    cores: Vec<String>,
    margin: f64,
) -> Result<TaskSet, String> {
    let mut tasks = Vec::new();
    for (name, _, deps) in sar_pipeline() {
        let options = exec_options_from_profile(report, &name, margin);
        let mut task = CoordTask::new(name, options);
        task.after = deps;
        tasks.push(task);
    }
    TaskSet::new(tasks, cores, FRAME_PERIOD_US).map_err(|e| e.to_string())
}

/// Mission-level outcome for one software mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionEstimate {
    /// Average payload (software) power, watts.
    pub software_power_w: f64,
    /// Total platform power, watts.
    pub total_power_w: f64,
    /// Flight endurance, minutes.
    pub endurance_min: f64,
}

/// Convert a schedule's per-frame energy into mission endurance.
///
/// `frame_energy_uj` is the pipeline's energy per frame; the pipeline
/// repeats every [`FRAME_PERIOD_US`]; idle power between frames is
/// `idle_w`.
pub fn mission_estimate(battery: &Battery, frame_energy_uj: f64, idle_w: f64) -> MissionEstimate {
    let frame_period_s = FRAME_PERIOD_US / 1e6;
    let software_power_w = frame_energy_uj / 1e6 / frame_period_s + idle_w;
    let total = MECHANICAL_POWER_W + software_power_w;
    MissionEstimate {
        software_power_w,
        total_power_w: total,
        endurance_min: battery.endurance_min(total),
    }
}

/// Survey coverage in square kilometres for a given endurance, at the
/// SAR mission profile (cruise 18 m/s, 120 m swath width).
pub fn coverage_km2(endurance_min: f64) -> f64 {
    let cruise_ms = 18.0;
    let swath_m = 120.0;
    endurance_min * 60.0 * cruise_ms * swath_m / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_coord::schedule_energy_aware;
    use teamplay_profiler::profile_tasks;
    use teamplay_sim::ComplexPlatform;

    fn profile() -> (ComplexPlatform, ProfileReport) {
        let platform = ComplexPlatform::tk1();
        let tasks: Vec<(String, WorkItem)> =
            sar_pipeline().into_iter().map(|(n, w, _)| (n, w)).collect();
        let report = profile_tasks(&platform, &tasks, 24, 42);
        (platform, report)
    }

    #[test]
    fn pipeline_is_schedulable_on_tk1() {
        let (platform, report) = profile();
        let cores = platform.cores.iter().map(|c| c.name.clone()).collect();
        let set = sar_task_set(&report, cores, 1.2).expect("task set");
        let schedule = schedule_energy_aware(&set).expect("schedulable at 5 Hz");
        schedule.validate(&set).expect("valid");
        assert!(schedule.makespan_us <= FRAME_PERIOD_US);
    }

    #[test]
    fn detector_lands_on_the_gpu() {
        let (platform, report) = profile();
        let cores = platform.cores.iter().map(|c| c.name.clone()).collect();
        let set = sar_task_set(&report, cores, 1.2).expect("task set");
        let schedule = schedule_energy_aware(&set).expect("schedulable");
        let detect = schedule.entry("detect").expect("detect");
        assert_eq!(
            detect.core, "gk20a",
            "an 11x-GPU kernel belongs on the GPU: {schedule:?}"
        );
    }

    #[test]
    fn mission_arithmetic_matches_paper_magnitudes() {
        let battery = Battery::sar_drone();
        // A mapping drawing ~9 W of software power.
        let frame_energy_uj = 9.0 * (FRAME_PERIOD_US / 1e6) * 1e6; // 9 W × one frame
        let est = mission_estimate(&battery, frame_energy_uj, 0.0);
        assert!((est.software_power_w - 9.0).abs() < 1e-9);
        assert!((est.total_power_w - 37.0).abs() < 1e-9);
        assert!((80.0..110.0).contains(&est.endurance_min), "{est:?}");
        // 18 % software-energy saving gains minutes of flight.
        let improved = mission_estimate(&battery, frame_energy_uj * 0.82, 0.0);
        let gained = improved.endurance_min - est.endurance_min;
        assert!((2.0..8.0).contains(&gained), "gained {gained} minutes");
    }

    #[test]
    fn software_power_stays_in_the_papers_2_to_11w_envelope() {
        let (platform, report) = profile();
        let cores: Vec<String> = platform.cores.iter().map(|c| c.name.clone()).collect();
        let set = sar_task_set(&report, cores, 1.2).expect("task set");
        let schedule = schedule_energy_aware(&set).expect("schedulable");
        let battery = Battery::sar_drone();
        let est = mission_estimate(&battery, schedule.total_energy_uj, 0.4);
        assert!(
            (1.0..=11.0).contains(&est.software_power_w),
            "software power {} W out of envelope",
            est.software_power_w
        );
    }

    #[test]
    fn minic_predetector_matches_rust_reference() {
        use teamplay_compiler::{compile_module, CompilerConfig, Pipeline};
        use teamplay_minic::compile_to_ir;
        use teamplay_sim::{Machine, RecordingDevice};

        let ir = compile_to_ir(DETECT_KERNEL_SOURCE).expect("kernel parses");
        let raw: Vec<i32> = (0..64).map(|i| (i * 97 + 13) % 2048).collect();
        let threshold = 40;

        // Rust reference of the pre-detector.
        let tile: Vec<i32> = raw.iter().map(|v| v & 1023).collect();
        let mut expected_hits = 0;
        for y in 0..8usize {
            for x in 1..7usize {
                let g = (tile[y * 8 + x + 1] - tile[y * 8 + x - 1]).abs();
                if g > threshold {
                    expected_hits += 1;
                }
            }
        }

        for pipeline in [
            Pipeline::o0(),
            recommended_pipeline().parse().expect("parses"),
        ] {
            let config = CompilerConfig {
                pipeline,
                mul_shift_add: false,
                pinned_regs: 0,
            };
            let program = compile_module(&ir, &config).expect("compiles");
            let mut machine = Machine::new(program).expect("loads");
            let mut dev = RecordingDevice::new();
            dev.queue(TILE_PORT, raw.clone());
            machine
                .call("predetect", &[threshold], &mut dev)
                .expect("runs");
            assert_eq!(machine.read_global("detections", 0), Some(expected_hits));
            assert_eq!(dev.outputs, vec![(REPORT_PORT, expected_hits)]);
        }
    }

    #[test]
    fn recommended_pipeline_unrolls_the_tile_load() {
        use teamplay_compiler::PassManager;
        use teamplay_minic::cfg::natural_loops;
        use teamplay_minic::compile_to_ir;

        let mut m = compile_to_ir(DETECT_KERNEL_SOURCE).expect("kernel parses");
        let loops_before = natural_loops(m.function("predetect").expect("fn")).len();
        assert_eq!(loops_before, 3, "load + row + column loops");
        let mut pm = PassManager::from_str(recommended_pipeline()).expect("pipeline resolves");
        pm.run(&mut m);
        let loops_after = natural_loops(m.function("predetect").expect("fn")).len();
        assert_eq!(loops_after, 2, "the 64-trip load loop is flattened");
    }

    #[test]
    fn coverage_grows_with_endurance() {
        assert!(coverage_km2(94.0) > coverage_km2(90.0));
        // ~90 min at 18 m/s with a 120 m swath ≈ 11.6 km².
        let c = coverage_km2(90.0);
        assert!((10.0..14.0).contains(&c), "{c}");
    }
}
