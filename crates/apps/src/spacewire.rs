//! The space-communication use case (paper Section IV-B).
//!
//! An image-processing and SpaceWire-downlink application for a
//! LEON3FT/GR712RC-class platform: `acquire` loads a frame, `denoise`
//! runs a 3×3 smoothing kernel, `crc` computes the CRC-16/CCITT of the
//! payload, `auth` tags the payload with a keyed checksum under a
//! constant-time contract (`security(ct) security_floor(1)`, with the
//! link key marked `secret`), and `packetize` emits a
//! SpaceWire-flavoured packet (destination logical address, protocol
//! id, length, payload, CRC, auth tag) on the link port.
//!
//! The energy headline of the paper (52 % saving while meeting all
//! deadlines) comes from combining the multi-criteria compiler with
//! DVFS sweet-spot scheduling on this pipeline; bench `e2_spacewire`
//! reproduces it.

use teamplay_sim::RecordingDevice;

/// Camera input port.
pub const CAMERA_PORT: u8 = 2;
/// SpaceWire link output port.
pub const LINK_PORT: u8 = 3;
/// Frame side length.
pub const FRAME_DIM: usize = 16;
/// Words per frame.
pub const FRAME_WORDS: usize = FRAME_DIM * FRAME_DIM;
/// SpaceWire destination logical address used in the packet header.
pub const DEST_ADDRESS: i32 = 0x42;
/// Protocol identifier in the packet header.
pub const PROTOCOL_ID: i32 = 0xF0;
/// Nominal GR712RC clock (MHz).
pub const CLOCK_MHZ: f64 = 100.0;
/// End-to-end frame deadline (µs) — one 10 Hz acquisition period.
pub const FRAME_DEADLINE_US: f64 = 100_000.0;

/// Annotated Mini-C source of the downlink pipeline.
pub const SOURCE: &str = r#"
int frame[256];
int smooth[256];
int crc_value = 0;
int auth_tag = 0;

/*@ task acquire period(100ms) deadline(100ms) wcet_budget(40ms) energy_budget(4mJ) @*/
void acquire() {
    for (int i = 0; i < 256; i = i + 1) {
        frame[i] = __in(2) & 255;
    }
    return;
}

int clamp_byte(int v) {
    int r = v;
    if (r < 0) { r = 0; }
    if (r > 255) { r = 255; }
    return r;
}

/*@ task denoise after(acquire) wcet_budget(60ms) energy_budget(9mJ) @*/
void denoise() {
    for (int y = 0; y < 16; y = y + 1) {
        for (int x = 0; x < 16; x = x + 1) {
            int idx = y * 16 + x;
            if (y == 0 || y == 15 || x == 0 || x == 15) {
                smooth[idx] = frame[idx];
            } else {
                int acc = frame[idx] * 4;
                acc = acc + frame[idx - 1] + frame[idx + 1];
                acc = acc + frame[idx - 16] + frame[idx + 16];
                smooth[idx] = clamp_byte(acc / 8);
            }
        }
    }
    return;
}

int crc16_step(int crc, int byte) {
    crc = crc ^ (byte << 8);
    /*@ loop bound(8) @*/
    for (int b = 0; b < 8; b = b + 1) {
        if ((crc & 0x8000) != 0) {
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF;
        } else {
            crc = (crc << 1) & 0xFFFF;
        }
    }
    return crc;
}

/*@ task crc after(denoise) wcet_budget(50ms) energy_budget(7mJ) @*/
void crc_frame() {
    int c = 0xFFFF;
    for (int i = 0; i < 256; i = i + 1) {
        c = crc16_step(c, smooth[i] & 255);
    }
    crc_value = c;
    return;
}

/*@ task auth after(crc) security(ct) security_floor(1) secret(token) wcet_budget(40ms) energy_budget(6mJ) @*/
void auth(int token) {
    int tag = (token ^ 0x5EC0FFEE) & 0x7FFFFFFF;
    for (int i = 0; i < 256; i = i + 1) {
        tag = (((tag << 5) ^ (tag >> 27)) + (smooth[i] ^ token)) & 0x7FFFFFFF;
    }
    auth_tag = tag;
    return;
}

/*@ task packetize after(auth) deadline(100ms) wcet_budget(30ms) energy_budget(5mJ) @*/
void packetize() {
    __out(3, 0x42);
    __out(3, 0xF0);
    __out(3, 256);
    for (int i = 0; i < 256; i = i + 1) {
        __out(3, smooth[i]);
    }
    __out(3, crc_value);
    __out(3, auth_tag);
    return;
}
"#;

/// Task entry *functions* in pipeline order (the `crc` task is
/// implemented by `crc_frame`).
pub const TASKS: [&str; 5] = ["acquire", "denoise", "crc_frame", "auth", "packetize"];

/// The link key the demos and tests hand to the `auth` task.
pub const DEMO_TOKEN: i32 = 0x00C0_FFEE;

/// The tuned pass pipeline for this application (registered in the
/// [`crate::catalog`] under `"spacewire"`).
///
/// Rationale: `inline(40)` pulls `clamp_byte` into `denoise` and
/// `crc16_step` into `crc_frame` (the two per-pixel/per-byte callees);
/// `licm` then hoists `y * 16` out of `denoise`'s inner column loop —
/// once per row instead of once per pixel; `unroll(8)` flattens the
/// 8-trip CRC bit loop that inlining exposed, trading a little LEON3
/// flash for the per-bit compare+branch; `strength_reduce` turns the
/// row-stride multiplies into shifts; cleanup and `block_layout` last,
/// so codegen sees the straightened CFG.
pub fn recommended_pipeline() -> &'static str {
    "inline(40),licm,cse,unroll(8),strength_reduce,const_fold,copy_prop,dce,block_layout"
}

/// A synthetic star-field frame, deterministic in `seed`.
pub fn synthetic_frame(seed: u32) -> Vec<i32> {
    let mut frame = Vec::with_capacity(FRAME_WORDS);
    for i in 0..FRAME_WORDS {
        let background = 12 + ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 28) as i32;
        let star = if (i as u32)
            .wrapping_mul(seed.wrapping_add(17))
            .is_multiple_of(53)
        {
            200
        } else {
            0
        };
        frame.push((background + star).min(255));
    }
    frame
}

/// A device with one frame queued on the camera port.
pub fn frame_device(seed: u32) -> RecordingDevice {
    let mut dev = RecordingDevice::new();
    dev.queue(CAMERA_PORT, synthetic_frame(seed));
    dev
}

/// Reference CRC-16/CCITT (init `0xFFFF`, poly `0x1021`), for validating
/// the Mini-C implementation.
pub fn crc16_reference(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Reference keyed payload tag, for validating the Mini-C `auth` task.
/// Mirrors the interpreter's shift semantics: the running tag is masked
/// to 31 bits each round, so `>> 27` never sees a negative value and
/// the arithmetic/logical distinction cannot bite.
pub fn auth_reference(payload: &[i32], token: i32) -> i32 {
    let mut tag = (token ^ 0x5EC0_FFEE) & 0x7FFF_FFFF;
    for &w in payload {
        tag = ((tag << 5) ^ (tag >> 27)).wrapping_add(w ^ token) & 0x7FFF_FFFF;
    }
    tag
}

/// Reference 3×3 smoothing used to validate `denoise` (centre weight 4,
/// plus-neighbours weight 1, divide by 8, borders copied).
pub fn denoise_reference(frame: &[i32]) -> Vec<i32> {
    let mut out = frame.to_vec();
    for y in 1..FRAME_DIM - 1 {
        for x in 1..FRAME_DIM - 1 {
            let idx = y * FRAME_DIM + x;
            let acc = frame[idx] * 4
                + frame[idx - 1]
                + frame[idx + 1]
                + frame[idx - FRAME_DIM]
                + frame[idx + FRAME_DIM];
            out[idx] = (acc / 8).clamp(0, 255);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_compiler::{compile_module, CompilerConfig};
    use teamplay_isa::CycleModel;
    use teamplay_minic::compile_to_ir;
    use teamplay_sim::{GroundTruthEnergy, Machine};

    fn build() -> Machine {
        let ir = compile_to_ir(SOURCE).expect("pipeline parses");
        let program = compile_module(&ir, &CompilerConfig::balanced()).expect("compiles");
        Machine::with_models(program, CycleModel::leon3(), GroundTruthEnergy::leon3())
            .expect("loads")
    }

    fn run_pipeline(machine: &mut Machine, seed: u32) -> Vec<i32> {
        machine.reset_data();
        let mut dev = frame_device(seed);
        for task in TASKS {
            let args: &[i32] = if task == "auth" { &[DEMO_TOKEN] } else { &[] };
            machine.call(task, args, &mut dev).expect("task runs");
        }
        dev.outputs.iter().map(|(_, v)| *v).collect()
    }

    #[test]
    fn packet_structure_is_correct() {
        let mut m = build();
        let packet = run_pipeline(&mut m, 11);
        assert_eq!(
            packet.len(),
            3 + FRAME_WORDS + 2,
            "header, payload, crc, tag"
        );
        assert_eq!(packet[0], DEST_ADDRESS);
        assert_eq!(packet[1], PROTOCOL_ID);
        assert_eq!(packet[2], FRAME_WORDS as i32);
    }

    #[test]
    fn denoise_matches_reference() {
        let mut m = build();
        let packet = run_pipeline(&mut m, 23);
        let expected = denoise_reference(&synthetic_frame(23));
        assert_eq!(&packet[3..3 + FRAME_WORDS], &expected[..]);
    }

    #[test]
    fn crc_matches_reference() {
        let mut m = build();
        let packet = run_pipeline(&mut m, 5);
        let payload: Vec<u8> = packet[3..3 + FRAME_WORDS]
            .iter()
            .map(|w| (*w & 255) as u8)
            .collect();
        let expected = crc16_reference(&payload);
        assert_eq!(packet[3 + FRAME_WORDS], expected as i32);
    }

    #[test]
    fn auth_tag_matches_reference() {
        let mut m = build();
        let packet = run_pipeline(&mut m, 5);
        let expected = auth_reference(&packet[3..3 + FRAME_WORDS], DEMO_TOKEN);
        assert_eq!(*packet.last().expect("auth word"), expected);
    }

    #[test]
    fn pipeline_fits_the_frame_deadline_at_nominal_frequency() {
        let ir = compile_to_ir(SOURCE).expect("parses");
        let program = compile_module(&ir, &CompilerConfig::balanced()).expect("compiles");
        let report = teamplay_wcet::analyze_program(&program, &CycleModel::leon3()).expect("wcet");
        let total_us: f64 = TASKS
            .iter()
            .map(|t| report.wcet_us(t, CLOCK_MHZ).expect("bounded"))
            .sum();
        assert!(
            total_us < FRAME_DEADLINE_US,
            "pipeline WCET {total_us}µs must fit the {FRAME_DEADLINE_US}µs frame"
        );
    }

    #[test]
    fn dvfs_downlink_schedules_below_the_maximum_frequency() {
        use teamplay_compiler::evaluate_module;
        use teamplay_coord::{
            dvfs_options, gr712_levels, schedule_energy_aware, CoordTask, TaskSet,
        };
        // Multi-version scheduling over the GR712 operating points: the
        // 100 ms frame leaves headroom, so the energy-aware schedule must
        // validate and run at least one task below f_max (the DVFS
        // saving of Section IV-B).
        let ir = compile_to_ir(SOURCE).expect("parses");
        let cm = CycleModel::leon3();
        let em = teamplay_energy::IsaEnergyModel::leon3_datasheet();
        let tuned = CompilerConfig {
            pipeline: recommended_pipeline().parse().expect("valid"),
            ..CompilerConfig::balanced()
        };
        let (_, metrics) = evaluate_module(&ir, &tuned, &cm, &em).expect("analyses");
        let mut tasks = Vec::new();
        let mut prev: Option<&str> = None;
        for task in TASKS {
            let m = metrics.of(task).expect("task analysed");
            let options = dvfs_options(
                task,
                "leon3",
                m.wcet_cycles,
                m.wcec_pj / 1e6,
                &gr712_levels(),
            );
            let mut t = CoordTask::new(task, options);
            if let Some(p) = prev {
                t.after.push(p.into());
            }
            prev = Some(task);
            tasks.push(t);
        }
        let set = TaskSet::new(tasks, vec!["leon3".into()], FRAME_DEADLINE_US).expect("set");
        let s = schedule_energy_aware(&set).expect("schedulable inside the frame");
        s.validate(&set).expect("valid");
        assert!(
            s.entries.iter().any(|e| !e.option.contains("100MHz")),
            "headroom should pull at least one task off f_max: {s:?}"
        );
    }

    #[test]
    fn csl_extracts_the_dag() {
        let program = teamplay_minic::parse_and_check(SOURCE).expect("front-end");
        let model = teamplay_csl::extract_model(&program).expect("extract");
        assert_eq!(model.tasks.len(), 5);
        assert_eq!(model.successors("acquire"), vec!["denoise"]);
        assert_eq!(model.successors("crc"), vec!["auth"]);
        assert_eq!(model.successors("auth"), vec!["packetize"]);
        let auth = model.tasks.iter().find(|t| t.name == "auth").expect("auth");
        assert_eq!(auth.security_floor, 1, "auth carries the floor clause");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut m = build();
        let a = run_pipeline(&mut m, 9);
        let b = run_pipeline(&mut m, 9);
        assert_eq!(a, b);
    }
}
