//! # teamplay-apps — the four TeamPlay use cases
//!
//! Section IV of the paper validates the methodology on four
//! industrial-grade applications; this crate reproduces each as a
//! laptop-scale workload with the same structure:
//!
//! * [`camera_pill`] — the capsule-endoscopy imaging pipeline on a
//!   Cortex-M0-class core (capture → compress → encrypt → transmit),
//!   written in annotated Mini-C and compiled by the full predictable
//!   toolchain (paper Section IV-A: 18 % performance / 19 % energy
//!   improvement);
//! * [`spacewire`] — the LEON3/GR712RC image processing and SpaceWire
//!   downlink application with DVFS-based energy minimisation under a
//!   hard deadline (Section IV-B: 52 % energy improvement);
//! * [`uav`] — the fixed-wing search-and-rescue drone's detection
//!   pipeline on a TK1-class payload, with the battery/endurance model
//!   behind the "+4 minutes of flight" result (Section IV-C), plus the
//!   M0 co-processor's Mini-C pre-detector kernel
//!   ([`uav::DETECT_KERNEL_SOURCE`]);
//! * [`parking`] — the free-parking-spot CNN (Section IV-D), as
//!   fixed-point Rust inference for the complex flow and as Mini-C
//!   kernels for the per-layer compiler variant study.
//!
//! # Per-app pipelines
//!
//! Each application ships a tuned pass pipeline through a common
//! `recommended_pipeline()` accessor — a *string*, so the layers above
//! (workflow configuration, coordination, benches) can select it by
//! name without constructing compiler structs. The per-app rationale
//! lives on each accessor:
//!
//! * [`camera_pill::recommended_pipeline`] — inline the packer, hoist
//!   and share the frame-loop subterms (block-locally and globally via
//!   `gvn`), no unrolling on pill-sized flash;
//! * [`spacewire::recommended_pipeline`] — inline the per-pixel/per-byte
//!   callees, hoist row terms, unroll the 8-trip CRC bit loop,
//!   strength-reduce the strides;
//! * [`uav::recommended_pipeline`] — inline the gradient magnitude,
//!   hoist/share row addressing, unroll the tile load for the
//!   endurance budget;
//! * [`parking::recommended_pipeline`] — hoist/share stencil
//!   addressing and shift-add the 2-bit-popcount weights (the
//!   battery-side trade the weights were chosen for).
//!
//! [`catalog`] bundles all four (plus the generic `o0`–`o3` levels)
//! into a [`PipelineCatalog`] for name-based selection.

use teamplay_compiler::PipelineCatalog;

pub mod camera_pill;
pub mod parking;
pub mod spacewire;
pub mod uav;

/// Every application's `(name, recommended pipeline)` pair.
pub fn recommended_pipelines() -> [(&'static str, &'static str); 4] {
    [
        ("camera_pill", camera_pill::recommended_pipeline()),
        ("spacewire", spacewire::recommended_pipeline()),
        ("uav", uav::recommended_pipeline()),
        ("parking", parking::recommended_pipeline()),
    ]
}

/// The pipeline catalogue the workflows and benches select from: the
/// generic optimisation levels (`o0`–`o3`) plus the four tuned per-app
/// pipelines, each under its application name.
pub fn catalog() -> PipelineCatalog {
    let mut cat = PipelineCatalog::builtin();
    for (name, pipeline) in recommended_pipelines() {
        cat.register(name, pipeline)
            .expect("recommended pipelines are valid");
    }
    cat
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_compiler::{generate_program, CodegenOpts, PassManager, Pipeline};
    use teamplay_isa::CycleModel;
    use teamplay_minic::compile_to_ir;
    use teamplay_wcet::analyze_program;

    /// Each app's `(kernel source, task function)` pair for the
    /// recommended-pipeline study.
    fn kernels() -> [(&'static str, &'static str, &'static str); 4] {
        [
            ("camera_pill", camera_pill::SOURCE, "compress"),
            ("spacewire", spacewire::SOURCE, "crc_frame"),
            ("uav", uav::DETECT_KERNEL_SOURCE, "predetect"),
            ("parking", parking::CONV_KERNEL_SOURCE, "conv_layer"),
        ]
    }

    #[test]
    fn catalog_serves_every_app_and_the_levels() {
        let cat = catalog();
        for name in [
            "o0",
            "o1",
            "o2",
            "o3",
            "camera_pill",
            "spacewire",
            "uav",
            "parking",
        ] {
            assert!(cat.get(name).is_some(), "{name} missing from the catalogue");
        }
    }

    #[test]
    fn tuned_pipelines_encode_as_search_seeds_where_representable() {
        use teamplay_compiler::CompilerConfig;
        // The predictable workflow seeds each task's FPA with the
        // configured pipeline's genome; three of the four tuned
        // pipelines sit inside the genome's range and round-trip
        // exactly. The UAV pipeline's `unroll(64)` exceeds the genome's
        // trip ceiling (16), so it is refused rather than approximated.
        for (name, pipeline) in recommended_pipelines() {
            let config = CompilerConfig {
                pipeline: pipeline.parse().expect("valid"),
                ..CompilerConfig::balanced()
            };
            match name {
                "uav" => assert_eq!(config.to_genome(), None, "unroll(64) must be refused"),
                _ => {
                    let genome = config
                        .to_genome()
                        .unwrap_or_else(|| panic!("{name} pipeline should encode"));
                    assert_eq!(CompilerConfig::from_genome(&genome), config, "{name}");
                }
            }
        }
    }

    #[test]
    fn recommended_pipelines_beat_the_generic_cleanup_level() {
        // Every tuned pipeline must preserve analysability on its own
        // kernel and beat the o1 "traditional toolchain" on its hottest
        // task — on WCET, and without paying for it in energy.
        let cat = catalog();
        let cm = CycleModel::pg32();
        let em = teamplay_energy::IsaEnergyModel::pg32_datasheet();
        for (app, src, task) in kernels() {
            let reference = compile_to_ir(src).expect("kernel compiles");
            let bounds_under = |pipeline: Pipeline| {
                let mut m = reference.clone();
                let mut pm = PassManager::new(pipeline).expect("pipeline resolves");
                pm.run(&mut m);
                let p = generate_program(&m, CodegenOpts::default()).expect("codegen");
                let wcet = analyze_program(&p, &cm)
                    .unwrap_or_else(|e| panic!("{app}: flow facts lost: {e}"))
                    .wcet_cycles(task)
                    .expect("task bounded");
                let wcec = teamplay_energy::analyze_program_energy(&p, &em, &cm)
                    .expect("energy analysable")
                    .wcec_pj(task)
                    .expect("task bounded");
                (wcet, wcec)
            };
            let tuned = bounds_under(cat.get(app).expect("registered").clone());
            let generic = bounds_under(Pipeline::o1());
            assert!(
                tuned.0 < generic.0,
                "{app}: tuned {tuned:?} not faster than o1 {generic:?}"
            );
            assert!(
                tuned.1 <= generic.1,
                "{app}: tuned {tuned:?} costlier than o1 {generic:?}"
            );
        }
    }

    #[test]
    fn ipet_strictly_tightens_every_kernel_bound() {
        // The PR-5 acceptance criterion, asserted at app level: on every
        // kernel's hot task, the IPET bound is at most the structural
        // bound — and strictly below it (all four kernels are loop
        // nests, where IPET stops charging the worst full iteration for
        // the final header check). The same flow solver carries the
        // energy model, so WCEC must tighten in lock-step.
        let cat = catalog();
        let cm = CycleModel::pg32();
        let em = teamplay_energy::IsaEnergyModel::pg32_datasheet();
        for (app, src, task) in kernels() {
            let mut m = compile_to_ir(src).expect("kernel compiles");
            let mut pm =
                PassManager::new(cat.get(app).expect("registered").clone()).expect("resolves");
            pm.run(&mut m);
            let p = generate_program(&m, CodegenOpts::default()).expect("codegen");
            let ipet = analyze_program(&p, &cm)
                .expect("analysable")
                .wcet_cycles(task)
                .expect("bounded");
            let structural = teamplay_wcet::analyze_program_structural(&p, &cm)
                .expect("analysable")
                .wcet_cycles(task)
                .expect("bounded");
            assert!(
                ipet < structural,
                "{app}/{task}: IPET {ipet} not strictly tighter than structural {structural}"
            );
            let wcec = teamplay_energy::analyze_program_energy(&p, &em, &cm)
                .expect("analysable")
                .wcec_pj(task)
                .expect("bounded");
            let wcec_structural = teamplay_energy::analyze_program_energy_structural(&p, &em, &cm)
                .expect("analysable")
                .wcec_pj(task)
                .expect("bounded");
            assert!(
                wcec < wcec_structural,
                "{app}/{task}: WCEC {wcec} not strictly tighter than {wcec_structural}"
            );
        }
    }
}
