//! # teamplay-apps — the four TeamPlay use cases
//!
//! Section IV of the paper validates the methodology on four
//! industrial-grade applications; this crate reproduces each as a
//! laptop-scale workload with the same structure:
//!
//! * [`camera_pill`] — the capsule-endoscopy imaging pipeline on a
//!   Cortex-M0-class core (capture → compress → encrypt → transmit),
//!   written in annotated Mini-C and compiled by the full predictable
//!   toolchain (paper Section IV-A: 18 % performance / 19 % energy
//!   improvement);
//! * [`spacewire`] — the LEON3/GR712RC image processing and SpaceWire
//!   downlink application with DVFS-based energy minimisation under a
//!   hard deadline (Section IV-B: 52 % energy improvement);
//! * [`uav`] — the fixed-wing search-and-rescue drone's detection
//!   pipeline on a TK1-class payload, with the battery/endurance model
//!   behind the "+4 minutes of flight" result (Section IV-C);
//! * [`parking`] — the free-parking-spot CNN (Section IV-D), as
//!   fixed-point Rust inference for the complex flow and as Mini-C
//!   kernels for the per-layer compiler variant study.

pub mod camera_pill;
pub mod parking;
pub mod spacewire;
pub mod uav;
