//! The deep-learning deployment use case (paper Section IV-D).
//!
//! A free-parking-spot detector: a camera looks down on a row of parking
//! spots and a small convolutional network reports how many are free.
//! The reproduction provides
//!
//! * fixed-point (Q8.8) **inference kernels** — [`conv2d`], [`relu`],
//!   [`maxpool2`], [`dense`] — the computational substrate of any CNN
//!   deployment,
//! * a concrete [`ParkingNet`] built from those kernels with handcrafted
//!   occupancy-detector weights, evaluated on a synthetic image generator
//!   ([`synthetic_lot`]),
//! * the Mini-C convolution kernel ([`CONV_KERNEL_SOURCE`]) used for the
//!   Cortex-M0 leg of the study, where the multi-criteria compiler offers
//!   per-layer variants with distinct WCET/energy characteristics
//!   (bench `e4_parking` regenerates that variant table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Q8.8 fixed-point one.
pub const FP_ONE: i32 = 256;

/// A simple HxW fixed-point tensor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tensor {
    /// Rows.
    pub h: usize,
    /// Columns.
    pub w: usize,
    /// Row-major Q8.8 data.
    pub data: Vec<i32>,
}

impl Tensor {
    /// A zero tensor.
    pub fn zeros(h: usize, w: usize) -> Tensor {
        Tensor {
            h,
            w,
            data: vec![0; h * w],
        }
    }

    /// Build from raw data.
    ///
    /// # Panics
    /// Panics if `data.len() != h * w`.
    pub fn from_data(h: usize, w: usize, data: Vec<i32>) -> Tensor {
        assert_eq!(data.len(), h * w, "tensor shape mismatch");
        Tensor { h, w, data }
    }

    /// Element accessor.
    pub fn at(&self, y: usize, x: usize) -> i32 {
        self.data[y * self.w + x]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, y: usize, x: usize) -> &mut i32 {
        &mut self.data[y * self.w + x]
    }
}

/// Valid (no-padding) 3×3 convolution in Q8.8: output is
/// `(h-2) × (w-2)`.
///
/// # Panics
/// Panics if the input is smaller than 3×3 or the kernel is not 9 long.
pub fn conv2d(input: &Tensor, kernel: &[i32]) -> Tensor {
    assert!(input.h >= 3 && input.w >= 3, "input too small for 3x3 conv");
    assert_eq!(kernel.len(), 9, "3x3 kernel required");
    let mut out = Tensor::zeros(input.h - 2, input.w - 2);
    for y in 0..out.h {
        for x in 0..out.w {
            let mut acc: i64 = 0;
            for ky in 0..3 {
                for kx in 0..3 {
                    acc += input.at(y + ky, x + kx) as i64 * kernel[ky * 3 + kx] as i64;
                }
            }
            *out.at_mut(y, x) = (acc >> 8) as i32; // Q8.8 renormalise
        }
    }
    out
}

/// Rectified linear unit, in place.
pub fn relu(t: &mut Tensor) {
    for v in &mut t.data {
        if *v < 0 {
            *v = 0;
        }
    }
}

/// 2×2 max pooling (floor semantics on odd dimensions).
pub fn maxpool2(input: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(input.h / 2, input.w / 2);
    for y in 0..out.h {
        for x in 0..out.w {
            let m = input
                .at(2 * y, 2 * x)
                .max(input.at(2 * y, 2 * x + 1))
                .max(input.at(2 * y + 1, 2 * x))
                .max(input.at(2 * y + 1, 2 * x + 1));
            *out.at_mut(y, x) = m;
        }
    }
    out
}

/// Fully connected layer: `out[i] = Σ_j w[i][j]·x[j] + b[i]` in Q8.8.
///
/// # Panics
/// Panics if shapes disagree.
pub fn dense(input: &[i32], weights: &[Vec<i32>], bias: &[i32]) -> Vec<i32> {
    assert_eq!(weights.len(), bias.len(), "one bias per output");
    weights
        .iter()
        .zip(bias)
        .map(|(row, b)| {
            assert_eq!(row.len(), input.len(), "weight row shape");
            let acc: i64 = row
                .iter()
                .zip(input)
                .map(|(w, x)| *w as i64 * *x as i64)
                .sum::<i64>()
                >> 8;
            acc as i32 + b
        })
        .collect()
}

/// Parking-lot geometry: `SPOTS` spots of `SPOT_DIM`×`SPOT_DIM` pixels in
/// a row.
pub const SPOTS: usize = 6;
/// Pixels per spot side.
pub const SPOT_DIM: usize = 8;
/// Image height.
pub const IMG_H: usize = SPOT_DIM;
/// Image width.
pub const IMG_W: usize = SPOTS * SPOT_DIM;

/// Generate a synthetic top-down lot image and its ground truth
/// (occupied flags). Pixels are Q8.8 luminance: dark asphalt background,
/// bright car bodies, Gaussian-ish noise.
pub fn synthetic_lot(seed: u64) -> (Tensor, [bool; SPOTS]) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut occupied = [false; SPOTS];
    for o in &mut occupied {
        *o = rng.gen_bool(0.5);
    }
    let mut img = Tensor::zeros(IMG_H, IMG_W);
    for (spot, occ) in occupied.iter().enumerate() {
        for y in 0..SPOT_DIM {
            for x in 0..SPOT_DIM {
                let noise: i32 = rng.gen_range(-12..=12);
                let base =
                    if *occ && (1..SPOT_DIM - 1).contains(&y) && (1..SPOT_DIM - 1).contains(&x) {
                        180 // car body
                    } else {
                        35 // asphalt
                    };
                *img.at_mut(y, spot * SPOT_DIM + x) = (base + noise) * FP_ONE / 256;
            }
        }
    }
    (img, occupied)
}

/// The free-spot counting network: conv3×3 (blur) → ReLU → maxpool2 →
/// per-spot dense scoring → threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParkingNet {
    blur_kernel: [i32; 9],
    threshold: i32,
}

impl ParkingNet {
    /// The handcrafted detector used by the use case.
    pub fn new() -> ParkingNet {
        // Normalised blur kernel in Q8.8 (sums to ~1.0).
        let k = FP_ONE / 9;
        ParkingNet {
            blur_kernel: [k; 9],
            threshold: 90 * FP_ONE / 256,
        }
    }

    /// `true` per spot that is occupied.
    pub fn infer(&self, img: &Tensor) -> [bool; SPOTS] {
        let mut conv = conv2d(img, &self.blur_kernel);
        relu(&mut conv);
        let pooled = maxpool2(&conv);
        // Dense layer: one output per spot, averaging the pooled columns
        // that belong to it (one-hot-ish weights).
        let flat: Vec<i32> = pooled.data.clone();
        let mut weights = Vec::with_capacity(SPOTS);
        for spot in 0..SPOTS {
            let mut row = vec![0i32; flat.len()];
            let mut members = 0i32;
            for y in 0..pooled.h {
                for x in 0..pooled.w {
                    // Map pooled column back to original image column.
                    let orig_x = x * 2 + 1;
                    if orig_x / SPOT_DIM == spot {
                        row[y * pooled.w + x] = FP_ONE;
                        members += 1;
                    }
                }
            }
            if members > 0 {
                for v in &mut row {
                    *v /= members;
                }
            }
            weights.push(row);
        }
        let scores = dense(&flat, &weights, &[0; SPOTS]);
        let mut out = [false; SPOTS];
        for (spot, s) in scores.iter().enumerate() {
            out[spot] = *s > self.threshold;
        }
        out
    }

    /// Count free spots in an image.
    pub fn free_spots(&self, img: &Tensor) -> usize {
        self.infer(img).iter().filter(|o| !**o).count()
    }
}

impl Default for ParkingNet {
    fn default() -> Self {
        ParkingNet::new()
    }
}

/// Accuracy of the detector over `n` synthetic images (fraction of spots
/// classified correctly).
pub fn classification_accuracy(net: &ParkingNet, n: usize, seed: u64) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        let (img, truth) = synthetic_lot(seed.wrapping_add(i as u64));
        let pred = net.infer(&img);
        for (p, t) in pred.iter().zip(&truth) {
            total += 1;
            if p == t {
                correct += 1;
            }
        }
    }
    correct as f64 / total as f64
}

/// The per-layer Mini-C kernel for the Cortex-M0 leg: an 8×8 single-
/// channel 3×3 convolution + ReLU, the unit of the compiler's per-layer
/// variant study.
pub const CONV_KERNEL_SOURCE: &str = r#"
int conv_in[64];
int conv_out[36];

/*@ task conv_layer wcet_budget(4ms) energy_budget(400uJ) @*/
void conv_layer() {
    for (int y = 0; y < 6; y = y + 1) {
        for (int x = 0; x < 6; x = x + 1) {
            int base = y * 8 + x;
            int acc = conv_in[base] * 12 + conv_in[base + 1] * 20 + conv_in[base + 2] * 12;
            acc = acc + conv_in[base + 8] * 20 + conv_in[base + 9] * 40 + conv_in[base + 10] * 20;
            acc = acc + conv_in[base + 16] * 12 + conv_in[base + 17] * 20 + conv_in[base + 18] * 12;
            acc = acc >> 8;
            if (acc < 0) { acc = 0; }
            conv_out[y * 6 + x] = acc;
        }
    }
    return;
}
"#;

/// The baked-in Q8.8 weights of [`CONV_KERNEL_SOURCE`] (a Gaussian-ish
/// blur whose coefficients have 2-bit popcounts, so the compiler's
/// shift-add decomposition applies).
pub const CONV_KERNEL_WEIGHTS: [i32; 9] = [12, 20, 12, 20, 40, 20, 12, 20, 12];

/// The tuned pass pipeline for the M0 leg's conv kernel (registered in
/// the [`crate::catalog`] under `"parking"`).
///
/// Rationale: the kernel is one tight 6×6 nest over a baked-in 3×3
/// stencil — `licm` hoists the row term (`y * 8`) out of the column
/// loop and `strength_reduce` then turns it into a shift; `cse` shares
/// the stencil's address arithmetic; cleanup folds the exposed
/// constants and `block_layout` straightens the ReLU branch diamond.
/// The battery-side shift-add decomposition of the 2-bit-popcount
/// weights stays on the *codegen* knob
/// (`CompilerConfig::mul_shift_add`), where the chain lives in
/// registers — the IR-level `mul_shift_add` pass would spill every
/// partial sum to the stack and lose on both time and energy. No
/// `inline` (no callees) and no `unroll`: the 6-trip nests fit the
/// ceiling, but 36 stencil copies blow the M0 flash budget for a few
/// cycles.
pub fn recommended_pipeline() -> &'static str {
    "licm,cse,strength_reduce,const_fold,copy_prop,dce,block_layout"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_spot_conv_layers_spread_across_two_cores() {
        use teamplay_compiler::{evaluate_module, CompilerConfig};
        use teamplay_coord::{schedule_energy_aware, CoordTask, ExecOption, TaskSet};
        use teamplay_minic::compile_to_ir;
        // Six independent per-spot conv layers, each runnable on either
        // of two M0 cores at identical cost. The energy-greedy start
        // piles everything on one core; only the earliest-finish witness
        // spreads the spots 3+3, so a deadline between the serial and
        // the balanced makespan proves the HEFT witness (not the greedy
        // loop) decides schedulability.
        let ir = compile_to_ir(CONV_KERNEL_SOURCE).expect("parses");
        let tuned = CompilerConfig {
            pipeline: recommended_pipeline().parse().expect("valid"),
            ..CompilerConfig::balanced()
        };
        let (_, metrics) = evaluate_module(
            &ir,
            &tuned,
            &teamplay_isa::CycleModel::pg32(),
            &teamplay_energy::IsaEnergyModel::pg32_datasheet(),
        )
        .expect("analyses");
        let m = metrics.of("conv_layer").expect("kernel analysed");
        let t_us = m.wcet_cycles as f64 / 48.0;
        let e_uj = m.wcec_pj / 1e6;
        let tasks: Vec<CoordTask> = (0..SPOTS)
            .map(|i| {
                CoordTask::new(
                    format!("spot{i}"),
                    ["m0a", "m0b"]
                        .iter()
                        .map(|core| ExecOption {
                            label: (*core).into(),
                            core: (*core).into(),
                            time_us: t_us,
                            energy_uj: e_uj,
                            security_level: 0,
                        })
                        .collect(),
                )
            })
            .collect();
        let deadline = t_us * (SPOTS as f64 / 2.0 + 0.5);
        let set = TaskSet::new(tasks, vec!["m0a".into(), "m0b".into()], deadline).expect("set");
        let s = schedule_energy_aware(&set).expect("balanced mapping fits the deadline");
        s.validate(&set).expect("valid");
        for core in ["m0a", "m0b"] {
            assert!(
                s.entries.iter().any(|e| e.core == core),
                "core {core} unused: {s:?}"
            );
        }
        assert!(
            (s.makespan_us - t_us * 3.0).abs() <= 1e-6,
            "six equal spots over two cores should finish in three rounds: {s:?}"
        );
    }

    #[test]
    fn conv2d_identity_kernel() {
        let img = Tensor::from_data(4, 4, (0..16).map(|v| v * FP_ONE).collect());
        let mut kernel = [0i32; 9];
        kernel[4] = FP_ONE; // identity
        let out = conv2d(&img, &kernel);
        assert_eq!(out.h, 2);
        assert_eq!(out.w, 2);
        assert_eq!(out.at(0, 0), img.at(1, 1));
        assert_eq!(out.at(1, 1), img.at(2, 2));
    }

    #[test]
    fn conv2d_blur_averages() {
        let img = Tensor::from_data(3, 3, vec![9 * FP_ONE; 9]);
        let out = conv2d(&img, &[FP_ONE / 9; 9]);
        // 9 pixels of 9.0 with weight ⌊1/9⌋ each, renormalised by >>8.
        let expected = ((9i64 * (9 * FP_ONE) as i64 * (FP_ONE / 9) as i64) >> 8) as i32;
        assert_eq!(out.at(0, 0), expected);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor::from_data(1, 4, vec![-5, 0, 3, -1]);
        relu(&mut t);
        assert_eq!(t.data, vec![0, 0, 3, 0]);
    }

    #[test]
    fn maxpool_takes_maxima() {
        let t = Tensor::from_data(2, 4, vec![1, 5, 2, 0, 3, 4, 9, 1]);
        let p = maxpool2(&t);
        assert_eq!(p.data, vec![5, 9]);
    }

    #[test]
    fn dense_computes_weighted_sums() {
        let out = dense(
            &[FP_ONE, 2 * FP_ONE],
            &[vec![FP_ONE, 0], vec![FP_ONE / 2, FP_ONE]],
            &[0, 10],
        );
        assert_eq!(out[0], FP_ONE);
        assert_eq!(out[1], FP_ONE / 2 + 2 * FP_ONE + 10);
    }

    #[test]
    fn detector_is_accurate_on_synthetic_lots() {
        let net = ParkingNet::new();
        let acc = classification_accuracy(&net, 100, 2024);
        assert!(acc >= 0.95, "accuracy {acc} too low");
    }

    #[test]
    fn free_spot_count_matches_truth_on_clean_examples() {
        let net = ParkingNet::new();
        let mut agreement = 0usize;
        for seed in 0..50u64 {
            let (img, truth) = synthetic_lot(seed);
            let truth_free = truth.iter().filter(|o| !**o).count();
            if net.free_spots(&img) == truth_free {
                agreement += 1;
            }
        }
        assert!(agreement >= 45, "only {agreement}/50 exact counts");
    }

    #[test]
    fn minic_conv_kernel_matches_rust_kernels() {
        use teamplay_compiler::{compile_module, CompilerConfig};
        use teamplay_minic::compile_to_ir;
        use teamplay_sim::{Machine, NullDevice};

        // Initialise the kernel's input/weight globals with random data
        // before compiling, then compare against the Rust kernels.
        let mut rng = StdRng::seed_from_u64(5);
        let input: Vec<i32> = (0..64).map(|_| rng.gen_range(0..4 * FP_ONE)).collect();
        let kernel: Vec<i32> = CONV_KERNEL_WEIGHTS.to_vec();
        let mut ir = compile_to_ir(CONV_KERNEL_SOURCE).expect("kernel parses");
        for (name, words) in &mut ir.globals {
            if name == "conv_in" {
                *words = input.clone();
            }
        }
        let program = compile_module(&ir, &CompilerConfig::balanced()).expect("compiles");
        let mut machine = Machine::new(program).expect("loads");
        machine
            .call("conv_layer", &[], &mut NullDevice::new())
            .expect("runs");

        let img = Tensor::from_data(8, 8, input);
        let mut expected = conv2d(&img, &kernel);
        relu(&mut expected);
        for (i, e) in expected.data.iter().enumerate() {
            assert_eq!(machine.read_global("conv_out", i), Some(*e), "pixel {i}");
        }
    }

    #[test]
    fn conv_kernel_offers_distinct_compiler_variants() {
        use teamplay_compiler::{pareto_front_for, FpaConfig};
        use teamplay_energy::IsaEnergyModel;
        use teamplay_isa::CycleModel;
        use teamplay_minic::compile_to_ir;

        let ir = compile_to_ir(CONV_KERNEL_SOURCE).expect("parses");
        // The phase-ordering genome needs the standard budget here: under
        // the tiny one a single licm+layout variant dominates the whole
        // front (better on all three objectives at once).
        let variants = pareto_front_for(
            &ir,
            "conv_layer",
            &CycleModel::pg32(),
            &IsaEnergyModel::pg32_datasheet(),
            FpaConfig::standard(),
            7,
        );
        assert!(variants.len() >= 2, "expected multiple trade-off variants");
        let wcets: Vec<u64> = variants.iter().map(|v| v.metrics.wcet_cycles).collect();
        assert!(wcets.windows(2).all(|w| w[0] <= w[1]));
        assert!(
            wcets.first() != wcets.last(),
            "variants must differ in WCET"
        );
    }
}
