//! # teamplay-contracts — the non-functional-properties contract system
//!
//! TeamPlay "formally proves, using dependent types, that both energy and
//! time budgets as well as the security risk of each identified POI
//! respects the ETS properties extracted by the compiler", emitting "a
//! certificate that could serve as a proof for certification authorities"
//! (paper Section II-A; refs \[15\], \[16\]).
//!
//! The reproduction keeps the architecture while replacing Idris-style
//! dependent types with their operational core: **checked derivations**.
//!
//! * [`prove`] builds a [`Certificate`] — an explicit derivation tree
//!   whose leaves compare analysed ETS values against CSL budgets and
//!   whose root conjoins every obligation of the task set;
//! * [`verify_certificate`] is an *independent, total checker*: it
//!   re-validates every rule application and re-binds every leaf to the
//!   supplied evidence, so a tampered or stale certificate is rejected.
//!   Prover and checker share only the data types, mirroring the
//!   proof-object/type-checker split of a dependently-typed proof.
//!
//! Failures are reported as structured [`ContractViolation`]s with the
//! human-readable feedback the paper's "transparency challenge"
//! (Section III-A) calls for.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use teamplay_csl::{CslModel, SecurityReq};

/// Analysed evidence for one task, gathered from the toolchain's
/// analysers (WCET, energy, security, scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskEvidence {
    /// Static WCET of the selected variant (µs).
    pub wcet_us: f64,
    /// Static worst-case energy of the selected variant (pJ).
    pub wcec_pj: f64,
    /// Residual secret-dependent branches after hardening (`None` when no
    /// security requirement applies).
    pub residual_branches: Option<usize>,
    /// Measured leakage verdict (`Some(true)` = leaks).
    pub leaks: Option<bool>,
    /// Scheduled completion time within the frame (µs).
    pub finish_us: Option<f64>,
    /// Graceful-degradation rung the coordinator settled on: 0 = the
    /// full nominal contract (re-executions reserved), 1 = re-execution
    /// reservations dropped, 2 = degraded-mode deadlines substituted.
    /// Recorded so a certificate carries *which* contract was proven.
    pub degradation_rung: u8,
}

/// A provable (and checkable) claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Claim {
    /// `analysed_us ≤ budget_us` for the task's WCET.
    WcetWithin {
        /// Task name.
        task: String,
        /// Analysed WCET (µs).
        analysed_us: f64,
        /// Contracted budget (µs).
        budget_us: f64,
    },
    /// `analysed_pj ≤ budget_pj` for the task's energy.
    EnergyWithin {
        /// Task name.
        task: String,
        /// Analysed worst-case energy (pJ).
        analysed_pj: f64,
        /// Contracted budget (pJ).
        budget_pj: f64,
    },
    /// The task carries no secret-dependent control flow and its
    /// measured channels are indistinguishable.
    SideChannelFree {
        /// Task name.
        task: String,
        /// Residual tainted branches (must be 0).
        residual_branches: usize,
        /// Leakage verdict from measurement (must be `false`).
        leaks: bool,
    },
    /// The scheduled completion time meets the deadline.
    DeadlineMet {
        /// Task name.
        task: String,
        /// Completion time (µs).
        finish_us: f64,
        /// Deadline (µs).
        deadline_us: f64,
    },
    /// Every obligation of the system holds.
    System {
        /// System name.
        name: String,
        /// Number of discharged obligations.
        obligations: usize,
    },
}

impl Claim {
    fn task(&self) -> Option<&str> {
        match self {
            Claim::WcetWithin { task, .. }
            | Claim::EnergyWithin { task, .. }
            | Claim::SideChannelFree { task, .. }
            | Claim::DeadlineMet { task, .. } => Some(task),
            Claim::System { .. } => None,
        }
    }
}

/// The inference rule justifying a judgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// Leaf: numeric comparison `analysed ≤ budget`.
    LeqCheck,
    /// Leaf: security evidence (no residual branches, no measured leak).
    SecurityCheck,
    /// Node: conjunction of premises.
    Conjunction,
}

/// One node of the derivation tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Judgement {
    /// What is claimed.
    pub claim: Claim,
    /// Why it holds.
    pub rule: Rule,
    /// Sub-derivations (empty for leaves).
    pub premises: Vec<Judgement>,
}

/// A complete, serialisable certificate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// The certified system's name.
    pub system: String,
    /// The root derivation.
    pub root: Judgement,
}

impl Certificate {
    /// Serialise to pretty JSON (the artefact handed to a certification
    /// authority).
    ///
    /// # Panics
    /// Never panics: the certificate types are always serialisable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("certificate types serialise")
    }

    /// Parse a certificate back from JSON.
    ///
    /// # Errors
    /// Returns the serde error text for malformed input.
    pub fn from_json(text: &str) -> Result<Certificate, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// Total number of leaf obligations in the certificate.
    pub fn obligation_count(&self) -> usize {
        fn leaves(j: &Judgement) -> usize {
            if j.premises.is_empty() {
                1
            } else {
                j.premises.iter().map(leaves).sum()
            }
        }
        leaves(&self.root)
    }
}

/// A contract that does not hold, with the feedback the developer sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContractViolation {
    /// The offending task.
    pub task: String,
    /// The violated property.
    pub property: String,
    /// Analysed value (in the property's unit).
    pub analysed: f64,
    /// Contracted budget.
    pub budget: f64,
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task `{}`: {} is {:.3}, exceeding the contracted {:.3}",
            self.task, self.property, self.analysed, self.budget
        )
    }
}

/// Proof failure: the violations found (all of them, not just the first —
/// actionable feedback per paper Section III-A).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProveError {
    /// Every violated obligation.
    pub violations: Vec<ContractViolation>,
    /// Tasks missing evidence entirely.
    pub missing_evidence: Vec<String>,
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "contract proof failed:")?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        for t in &self.missing_evidence {
            writeln!(f, "  - task `{t}`: no analysis evidence supplied")?;
        }
        Ok(())
    }
}

impl std::error::Error for ProveError {}

/// Build the certificate for a CSL task model against analysed evidence.
///
/// Every budget clause in the model generates one obligation; obligations
/// without a corresponding budget are skipped (no contract, nothing to
/// prove).
///
/// # Errors
/// [`ProveError`] listing *all* violations and missing evidence.
pub fn prove(
    system: &str,
    model: &CslModel,
    evidence: &HashMap<String, TaskEvidence>,
) -> Result<Certificate, ProveError> {
    let mut premises = Vec::new();
    let mut violations = Vec::new();
    let mut missing = Vec::new();

    for task in &model.tasks {
        let Some(ev) = evidence.get(&task.name) else {
            missing.push(task.name.clone());
            continue;
        };
        if let Some(budget) = task.wcet_budget {
            if ev.wcet_us <= budget.as_us() {
                premises.push(Judgement {
                    claim: Claim::WcetWithin {
                        task: task.name.clone(),
                        analysed_us: ev.wcet_us,
                        budget_us: budget.as_us(),
                    },
                    rule: Rule::LeqCheck,
                    premises: Vec::new(),
                });
            } else {
                violations.push(ContractViolation {
                    task: task.name.clone(),
                    property: "WCET (µs)".into(),
                    analysed: ev.wcet_us,
                    budget: budget.as_us(),
                });
            }
        }
        if let Some(budget) = task.energy_budget {
            if ev.wcec_pj <= budget.as_pj() {
                premises.push(Judgement {
                    claim: Claim::EnergyWithin {
                        task: task.name.clone(),
                        analysed_pj: ev.wcec_pj,
                        budget_pj: budget.as_pj(),
                    },
                    rule: Rule::LeqCheck,
                    premises: Vec::new(),
                });
            } else {
                violations.push(ContractViolation {
                    task: task.name.clone(),
                    property: "worst-case energy (pJ)".into(),
                    analysed: ev.wcec_pj,
                    budget: budget.as_pj(),
                });
            }
        }
        if task.security == Some(SecurityReq::ConstantTime) {
            let residual = ev.residual_branches.unwrap_or(usize::MAX);
            let leaks = ev.leaks.unwrap_or(true);
            if residual == 0 && !leaks {
                premises.push(Judgement {
                    claim: Claim::SideChannelFree {
                        task: task.name.clone(),
                        residual_branches: 0,
                        leaks: false,
                    },
                    rule: Rule::SecurityCheck,
                    premises: Vec::new(),
                });
            } else {
                violations.push(ContractViolation {
                    task: task.name.clone(),
                    property: "side-channel freedom (residual branches)".into(),
                    analysed: residual as f64,
                    budget: 0.0,
                });
            }
        }
        if let (Some(deadline), Some(finish)) = (task.deadline, ev.finish_us) {
            if finish <= deadline.as_us() {
                premises.push(Judgement {
                    claim: Claim::DeadlineMet {
                        task: task.name.clone(),
                        finish_us: finish,
                        deadline_us: deadline.as_us(),
                    },
                    rule: Rule::LeqCheck,
                    premises: Vec::new(),
                });
            } else {
                violations.push(ContractViolation {
                    task: task.name.clone(),
                    property: "completion time (µs)".into(),
                    analysed: finish,
                    budget: deadline.as_us(),
                });
            }
        }
    }

    if !violations.is_empty() || !missing.is_empty() {
        return Err(ProveError {
            violations,
            missing_evidence: missing,
        });
    }
    let obligations = premises.len();
    Ok(Certificate {
        system: system.to_string(),
        root: Judgement {
            claim: Claim::System {
                name: system.to_string(),
                obligations,
            },
            rule: Rule::Conjunction,
            premises,
        },
    })
}

/// Certificate verification failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VerifyError {
    /// A rule application is invalid (the derivation does not check).
    InvalidRule {
        /// Human-readable description of the broken step.
        detail: String,
    },
    /// A leaf's figures differ from the supplied evidence (stale or
    /// tampered certificate).
    EvidenceMismatch {
        /// The affected task.
        task: String,
    },
    /// The conjunction arity/counter does not match.
    MalformedRoot,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::InvalidRule { detail } => write!(f, "invalid derivation step: {detail}"),
            VerifyError::EvidenceMismatch { task } => {
                write!(
                    f,
                    "certificate figures for `{task}` do not match the evidence"
                )
            }
            VerifyError::MalformedRoot => write!(f, "malformed certificate root"),
        }
    }
}

impl std::error::Error for VerifyError {}

const EPS: f64 = 1e-9;

/// Independently re-check a certificate against fresh evidence.
///
/// This function shares no logic with [`prove`]: it re-validates every
/// rule application and re-binds leaf figures to `evidence`.
///
/// # Errors
/// See [`VerifyError`].
pub fn verify_certificate(
    cert: &Certificate,
    evidence: &HashMap<String, TaskEvidence>,
) -> Result<(), VerifyError> {
    let root = &cert.root;
    let Claim::System { obligations, .. } = &root.claim else {
        return Err(VerifyError::MalformedRoot);
    };
    if root.rule != Rule::Conjunction || *obligations != root.premises.len() {
        return Err(VerifyError::MalformedRoot);
    }
    for leaf in &root.premises {
        if !leaf.premises.is_empty() {
            return Err(VerifyError::InvalidRule {
                detail: "nested derivations are not produced by this system".into(),
            });
        }
        let task = leaf.claim.task().ok_or(VerifyError::MalformedRoot)?;
        let ev = evidence
            .get(task)
            .ok_or_else(|| VerifyError::EvidenceMismatch {
                task: task.to_string(),
            })?;
        match (&leaf.claim, leaf.rule) {
            (
                Claim::WcetWithin {
                    analysed_us,
                    budget_us,
                    ..
                },
                Rule::LeqCheck,
            ) => {
                if (analysed_us - ev.wcet_us).abs() > EPS {
                    return Err(VerifyError::EvidenceMismatch {
                        task: task.to_string(),
                    });
                }
                if analysed_us > budget_us {
                    return Err(VerifyError::InvalidRule {
                        detail: format!("{task}: WCET {analysed_us} > budget {budget_us}"),
                    });
                }
            }
            (
                Claim::EnergyWithin {
                    analysed_pj,
                    budget_pj,
                    ..
                },
                Rule::LeqCheck,
            ) => {
                if (analysed_pj - ev.wcec_pj).abs() > EPS {
                    return Err(VerifyError::EvidenceMismatch {
                        task: task.to_string(),
                    });
                }
                if analysed_pj > budget_pj {
                    return Err(VerifyError::InvalidRule {
                        detail: format!("{task}: energy {analysed_pj} > budget {budget_pj}"),
                    });
                }
            }
            (
                Claim::SideChannelFree {
                    residual_branches,
                    leaks,
                    ..
                },
                Rule::SecurityCheck,
            ) => {
                if *residual_branches != 0 || *leaks {
                    return Err(VerifyError::InvalidRule {
                        detail: format!("{task}: security claim with residual risk"),
                    });
                }
                if ev.residual_branches != Some(0) || ev.leaks != Some(false) {
                    return Err(VerifyError::EvidenceMismatch {
                        task: task.to_string(),
                    });
                }
            }
            (
                Claim::DeadlineMet {
                    finish_us,
                    deadline_us,
                    ..
                },
                Rule::LeqCheck,
            ) => {
                match ev.finish_us {
                    Some(f) if (finish_us - f).abs() <= EPS => {}
                    _ => {
                        return Err(VerifyError::EvidenceMismatch {
                            task: task.to_string(),
                        })
                    }
                }
                if finish_us > deadline_us {
                    return Err(VerifyError::InvalidRule {
                        detail: format!("{task}: finish {finish_us} > deadline {deadline_us}"),
                    });
                }
            }
            (claim, rule) => {
                return Err(VerifyError::InvalidRule {
                    detail: format!("claim {claim:?} cannot be justified by rule {rule:?}"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use teamplay_csl::extract_model;
    use teamplay_minic::parse_and_check;

    const SRC: &str = "
        /*@ task capture period(40ms) deadline(40ms) wcet_budget(5ms) energy_budget(3mJ) @*/
        void capture() { return; }
        /*@ task encrypt after(capture) security(ct) secret(key) wcet_budget(2ms) energy_budget(1500uJ) @*/
        void encrypt(int key) { return; }
    ";

    fn model() -> CslModel {
        extract_model(&parse_and_check(SRC).expect("front-end")).expect("extract")
    }

    fn good_evidence() -> HashMap<String, TaskEvidence> {
        let mut ev = HashMap::new();
        ev.insert(
            "capture".into(),
            TaskEvidence {
                wcet_us: 4200.0,
                wcec_pj: 2.5e9,
                residual_branches: None,
                leaks: None,
                finish_us: Some(30_000.0),
                degradation_rung: 0,
            },
        );
        ev.insert(
            "encrypt".into(),
            TaskEvidence {
                wcet_us: 1500.0,
                wcec_pj: 1.2e9,
                residual_branches: Some(0),
                leaks: Some(false),
                finish_us: Some(35_000.0),
                degradation_rung: 0,
            },
        );
        ev
    }

    #[test]
    fn proves_and_verifies_a_satisfied_contract() {
        let ev = good_evidence();
        let cert = prove("camera-pill", &model(), &ev).expect("prove");
        assert_eq!(cert.obligation_count(), 6); // 2×(wcet+energy) + deadline + security
        verify_certificate(&cert, &ev).expect("verify");
    }

    #[test]
    fn violations_are_all_reported() {
        let mut ev = good_evidence();
        ev.get_mut("capture").expect("capture").wcet_us = 9000.0; // > 5ms
        ev.get_mut("encrypt").expect("encrypt").wcec_pj = 9e9; // > 1500uJ
        let err = prove("camera-pill", &model(), &ev).unwrap_err();
        assert_eq!(err.violations.len(), 2, "{err}");
        let text = err.to_string();
        assert!(text.contains("capture") && text.contains("encrypt"));
    }

    #[test]
    fn missing_evidence_is_reported() {
        let mut ev = good_evidence();
        ev.remove("encrypt");
        let err = prove("camera-pill", &model(), &ev).unwrap_err();
        assert_eq!(err.missing_evidence, vec!["encrypt".to_string()]);
    }

    #[test]
    fn security_requires_hardening_and_clean_measurement() {
        let mut ev = good_evidence();
        ev.get_mut("encrypt").expect("encrypt").residual_branches = Some(2);
        assert!(prove("s", &model(), &ev).is_err());
        let mut ev = good_evidence();
        ev.get_mut("encrypt").expect("encrypt").leaks = Some(true);
        assert!(prove("s", &model(), &ev).is_err());
    }

    #[test]
    fn certificate_round_trips_through_json() {
        let ev = good_evidence();
        let cert = prove("camera-pill", &model(), &ev).expect("prove");
        let json = cert.to_json();
        let back = Certificate::from_json(&json).expect("parse");
        assert_eq!(back, cert);
        verify_certificate(&back, &ev).expect("verify parsed");
    }

    #[test]
    fn tampered_figures_are_rejected() {
        let ev = good_evidence();
        let mut cert = prove("camera-pill", &model(), &ev).expect("prove");
        // Tamper: claim a smaller WCET than the evidence shows.
        for leaf in &mut cert.root.premises {
            if let Claim::WcetWithin { analysed_us, .. } = &mut leaf.claim {
                *analysed_us -= 1000.0;
                break;
            }
        }
        assert!(matches!(
            verify_certificate(&cert, &ev),
            Err(VerifyError::EvidenceMismatch { .. })
        ));
    }

    #[test]
    fn tampered_budget_comparison_is_rejected() {
        let mut ev = good_evidence();
        let cert = {
            // Prove with inflated evidence that still passes…
            let c = prove("camera-pill", &model(), &ev).expect("prove");
            // …then worsen the *evidence* (stale certificate scenario).
            ev.get_mut("capture").expect("capture").wcet_us = 4999.0;
            c
        };
        assert!(matches!(
            verify_certificate(&cert, &ev),
            Err(VerifyError::EvidenceMismatch { .. })
        ));
    }

    #[test]
    fn forged_rule_is_rejected() {
        let ev = good_evidence();
        let mut cert = prove("camera-pill", &model(), &ev).expect("prove");
        // A security claim justified by a numeric rule is nonsense.
        for leaf in &mut cert.root.premises {
            if matches!(leaf.claim, Claim::SideChannelFree { .. }) {
                leaf.rule = Rule::LeqCheck;
            }
        }
        assert!(matches!(
            verify_certificate(&cert, &ev),
            Err(VerifyError::InvalidRule { .. })
        ));
    }

    #[test]
    fn forged_obligation_count_is_rejected() {
        let ev = good_evidence();
        let mut cert = prove("camera-pill", &model(), &ev).expect("prove");
        cert.root.premises.pop();
        assert_eq!(
            verify_certificate(&cert, &ev),
            Err(VerifyError::MalformedRoot)
        );
    }

    #[test]
    fn tasks_without_budgets_generate_no_obligations() {
        let src = "/*@ task free @*/ void f() { return; }";
        let m = extract_model(&parse_and_check(src).expect("front-end")).expect("extract");
        let mut ev = HashMap::new();
        ev.insert("free".into(), TaskEvidence::default());
        let cert = prove("s", &m, &ev).expect("prove");
        assert_eq!(
            cert.obligation_count(),
            1,
            "root with no premises counts as one leaf"
        );
        assert!(cert.root.premises.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use teamplay_csl::clause::{EnergyValue, TimeValue};
    use teamplay_csl::TaskSpec;

    fn spec(name: &str, wcet_budget: f64, energy_budget: f64) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            function: name.into(),
            period: None,
            deadline: None,
            wcet_budget: Some(TimeValue(wcet_budget)),
            energy_budget: Some(EnergyValue(energy_budget)),
            security: None,
            security_floor: 0,
            secrets: vec![],
            after: vec![],
            reexecutions: 0,
            degraded_deadline: None,
        }
    }

    proptest! {
        /// Soundness/completeness of the prover against the independent
        /// checker: a certificate is produced iff every analysed value is
        /// within budget, and whatever the prover emits, the checker
        /// accepts against the same evidence.
        #[test]
        fn prove_verify_coherence(
            specs in proptest::collection::vec(
                (1f64..1e6, 1f64..1e12, 0.1f64..2.0, 0.1f64..2.0),
                1..6,
            )
        ) {
            let mut model = CslModel::default();
            let mut evidence = HashMap::new();
            let mut all_within = true;
            for (i, (wb, eb, tf, ef)) in specs.iter().enumerate() {
                let name = format!("t{i}");
                model.tasks.push(spec(&name, *wb, *eb));
                // Analysed value = budget × factor; factor > 1 violates.
                let wcet = wb * tf;
                let wcec = eb * ef;
                if wcet > *wb || wcec > *eb {
                    all_within = false;
                }
                evidence.insert(
                    name,
                    TaskEvidence { wcet_us: wcet, wcec_pj: wcec, ..TaskEvidence::default() },
                );
            }
            match prove("prop-system", &model, &evidence) {
                Ok(cert) => {
                    prop_assert!(all_within, "prover accepted a violated contract");
                    prop_assert!(verify_certificate(&cert, &evidence).is_ok());
                    // The checker also rejects the certificate against any
                    // *worsened* evidence.
                    let mut worse = evidence.clone();
                    if let Some(ev) = worse.values_mut().next() {
                        ev.wcet_us *= 2.0;
                        ev.wcet_us += 1.0;
                    }
                    if !cert.root.premises.is_empty() {
                        prop_assert!(verify_certificate(&cert, &worse).is_err());
                    }
                }
                Err(e) => {
                    prop_assert!(!all_within, "prover rejected a satisfied contract: {e}");
                    prop_assert!(!e.violations.is_empty());
                }
            }
        }
    }
}
