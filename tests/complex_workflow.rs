//! Integration: the Fig. 2 complex-architecture workflow and its
//! interaction with the battery/mission model.

use teamplay::complex::{ComplexTask, ComplexWorkflow};
use teamplay_apps::uav;
use teamplay_sim::{Battery, ComplexPlatform, WorkItem};

fn sar_tasks() -> Vec<ComplexTask> {
    uav::sar_pipeline()
        .into_iter()
        .map(|(name, work, after)| ComplexTask { name, work, after })
        .collect()
}

#[test]
fn profiles_schedule_and_mission_compose() {
    let workflow = ComplexWorkflow::new(ComplexPlatform::tk1());
    let outcome = workflow
        .run(&sar_tasks(), uav::FRAME_PERIOD_US)
        .expect("workflow");

    // The profile covers every (task, core, op) combination.
    let platform = ComplexPlatform::tk1();
    let combos: usize = platform.cores.iter().map(|c| c.ops.len()).sum();
    assert_eq!(outcome.profile.profiles.len(), combos * sar_tasks().len());

    // The mission estimate stays within the paper's power envelope.
    let est = uav::mission_estimate(&Battery::sar_drone(), outcome.frame_energy_uj, 0.5);
    assert!((1.0..=11.0).contains(&est.software_power_w), "{est:?}");
    assert!(est.endurance_min > 60.0, "{est:?}");
}

#[test]
fn energy_monotone_in_deadline_slack() {
    let workflow = ComplexWorkflow::new(ComplexPlatform::tk1());
    let deadlines = [235_000.0, 300_000.0, 500_000.0, 900_000.0];
    let mut energies = Vec::new();
    for d in deadlines {
        let outcome = workflow.run(&sar_tasks(), d).expect("schedulable");
        assert!(outcome.schedule.makespan_us <= d);
        energies.push(outcome.frame_energy_uj);
    }
    for pair in energies.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-6,
            "more slack must not cost more energy: {energies:?}"
        );
    }
}

#[test]
fn gpu_hostile_pipeline_stays_on_cpu() {
    let tasks = vec![
        ComplexTask {
            name: "serial".into(),
            work: WorkItem {
                ref_mcycles: 40.0,
                gpu_speedup: 0.2,
                utilisation: 0.8,
            },
            after: vec![],
        },
        ComplexTask {
            name: "branchy".into(),
            work: WorkItem {
                ref_mcycles: 25.0,
                gpu_speedup: 0.3,
                utilisation: 0.7,
            },
            after: vec!["serial".into()],
        },
    ];
    let workflow = ComplexWorkflow::new(ComplexPlatform::tk1());
    let outcome = workflow.run(&tasks, 400_000.0).expect("workflow");
    for e in &outcome.schedule.entries {
        assert!(
            e.core.starts_with("a15"),
            "GPU-hostile task `{}` landed on {}",
            e.task,
            e.core
        );
    }
}

#[test]
fn glue_reflects_the_actual_mapping() {
    let workflow = ComplexWorkflow::new(ComplexPlatform::tk1());
    let outcome = workflow
        .run(&sar_tasks(), uav::FRAME_PERIOD_US)
        .expect("workflow");
    for e in &outcome.schedule.entries {
        assert!(
            outcome
                .parallel_glue
                .contains(&format!("thread_{}", e.core)),
            "glue missing thread for {}",
            e.core
        );
        assert!(outcome
            .parallel_glue
            .contains(&format!("task_{}();", e.task)));
    }
}
