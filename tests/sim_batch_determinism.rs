//! Pool-width determinism oracle for the batched trace fleet.
//!
//! `simulate_batch` promises results in **input order, bit-identical at
//! any pool width**: a batch is a pure function of `(function, inputs)`
//! and the pool is only an execution detail. This suite pins that
//! contract by running the same seeded batch on pools of 1, 2 and 4
//! workers and requiring the *serialized* result vectors — every field
//! of every [`RunResult`](teamplay_sim::RunResult), with energy going
//! through its exact `f64` bit pattern — to be byte-for-byte equal.
//!
//! A second case checks the single-worker pool against a plain
//! sequential loop over one engine, so the chunked fleet is anchored to
//! the reference semantics and not merely self-consistent.

use minipool::Pool;
use teamplay_compiler::{generate_program, CodegenOpts, PassManager};
use teamplay_minic::compile_to_ir;
use teamplay_sim::{seeded_inputs, simulate_batch, DecodedProgram, NullDevice};

/// The four app kernels under their tuned pipelines, as
/// `(app, task, arg_count, program)`.
fn kernels() -> Vec<(String, String, usize, teamplay_isa::Program)> {
    let cat = teamplay_apps::catalog();
    [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
            0usize,
        ),
        (
            "spacewire",
            teamplay_apps::spacewire::SOURCE,
            "crc_frame",
            0,
        ),
        (
            "uav",
            teamplay_apps::uav::DETECT_KERNEL_SOURCE,
            "predetect",
            1,
        ),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
            0,
        ),
    ]
    .into_iter()
    .map(|(app, src, task, arg_count)| {
        let mut module = compile_to_ir(src).expect("kernel compiles");
        let mut pm =
            PassManager::new(cat.get(app).expect("registered").clone()).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default()).expect("codegen succeeds");
        (app.to_string(), task.to_string(), arg_count, program)
    })
    .collect()
}

#[test]
fn batch_results_are_byte_identical_across_pool_widths() {
    for (app, task, arg_count, program) in kernels() {
        let decoded = DecodedProgram::new(&program).expect("decodes");
        // 67 runs: not a multiple of the fleet's chunk size, so the last
        // chunk is ragged and chunk-boundary bookkeeping is exercised.
        let inputs = seeded_inputs(0xD07, 67, arg_count, -64, 64);
        // Every seeded run must complete (a trap would be a bug in its
        // own right), so the serialized form is the full `RunResult`
        // vector — exact `f64` energy bits included.
        let run = |width: usize| {
            let results = simulate_batch(&Pool::new(width), &decoded, &task, &inputs);
            let results: Vec<_> = results
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| panic!("{app}/{task}: batch run trapped: {e:?}")))
                .collect();
            serde_json::to_string(&results).expect("serializes")
        };
        let baseline = run(1);
        for width in [2usize, 4] {
            assert_eq!(
                baseline,
                run(width),
                "{app}/{task}: batch results differ between pool width 1 and {width}"
            );
        }
    }
}

#[test]
fn single_worker_batch_matches_a_sequential_engine_loop() {
    for (app, task, arg_count, program) in kernels() {
        let decoded = DecodedProgram::new(&program).expect("decodes");
        let inputs = seeded_inputs(0x5EED, 33, arg_count, -64, 64);
        let batch = simulate_batch(&Pool::new(1), &decoded, &task, &inputs);
        assert_eq!(batch.len(), inputs.len(), "{app}/{task}: result arity");
        for (args, got) in inputs.iter().zip(&batch) {
            // A fresh engine per run mirrors the fleet's fresh-image
            // contract (every result a pure function of the input).
            let mut engine = decoded.engine();
            let want = engine
                .call(&task, args, &mut NullDevice::new())
                .unwrap_or_else(|e| panic!("{app}/{task}: sequential run trapped: {e:?}"));
            let got = got
                .as_ref()
                .unwrap_or_else(|e| panic!("{app}/{task}: batch run trapped: {e:?}"));
            assert_eq!(
                &want, got,
                "{app}/{task}: sequential run diverges for {args:?}"
            );
            assert_eq!(
                want.energy_pj.to_bits(),
                got.energy_pj.to_bits(),
                "{app}/{task}: energy bit patterns diverge for {args:?}"
            );
        }
    }
}
