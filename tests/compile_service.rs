//! Compile-service oracle suite (PR 8 acceptance): the persistent
//! content-addressed store, the parallel per-function pass runners, and
//! the batched `compile_many` front-end.
//!
//! Three contracts are pinned here:
//!
//! * **Cross-process warm-start determinism** — a search rerun against a
//!   fresh cache instance over the same on-disk store answers every
//!   distinct configuration from disk (zero compiles) and returns a
//!   byte-identical serialized front. Fresh [`DiskStore`] +
//!   [`EvalCache`] instances are exactly what a new process would build,
//!   so this is the cross-process contract minus the fork.
//! * **Pool-width determinism** — the deduplicating parallel pass
//!   runners ([`PassManager::run_on`], `compile_module_per_function_on`)
//!   and [`compile_many`] produce byte-identical results at widths
//!   1/2/4, across all four app kernels and the proptest kernel
//!   generator, and byte-identical to their sequential counterparts.
//! * **Failure persistence** — infeasible configurations are stored
//!   too: a warm process is told "known bad" from disk without ever
//!   invoking codegen.

use proptest::prelude::*;
use std::collections::HashMap;
use teamplay_compiler::{
    compile_many, compile_module_per_function, compile_module_per_function_on, pareto_search_on,
    pareto_search_with_store, CompileJob, CompilerConfig, DiskStore, EvalCache, FpaConfig,
    ParetoFront, PassManager, Pipeline,
};
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "teamplay-compile-service-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn pg32_models() -> (CycleModel, teamplay_energy::IsaEnergyModel) {
    (
        CycleModel::pg32(),
        teamplay_energy::IsaEnergyModel::pg32_datasheet(),
    )
}

/// Serialize the observable outcome of a search: the variants. (Stats
/// are compared field-by-field where relevant — the disk counters
/// *differ* between cold and warm runs by design.)
fn front_bytes(front: &ParetoFront) -> String {
    serde_json::to_string(&front.variants).expect("front serializes")
}

/// The four application kernels (same list the tightness oracle uses).
fn app_kernels() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
        ),
        ("spacewire", teamplay_apps::spacewire::SOURCE, "crc_frame"),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE, "predetect"),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
        ),
    ]
}

#[test]
fn warm_start_serves_every_config_from_disk_and_is_byte_identical() {
    let (cm, em) = pg32_models();
    let dir = temp_dir("warm-start");
    let ir = compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("front-end");
    let pool = minipool::Pool::new(2);

    let cold_store = DiskStore::open(&dir).expect("store opens");
    let cold = pareto_search_with_store(
        &pool,
        &ir,
        "compress",
        &cm,
        &em,
        FpaConfig::tiny(),
        0xBEEF,
        &cold_store,
    );
    // A fresh store starts empty: every distinct configuration missed
    // disk and was written back.
    assert_eq!(cold.stats.disk_hits, 0, "fresh store cannot hit");
    assert_eq!(cold.stats.disk_misses, cold.stats.cache_misses);
    assert_eq!(cold_store.entries(), cold.stats.cache_misses);

    // A fresh DiskStore + EvalCache pair over the same directory is
    // what a new process would construct.
    let warm_store = DiskStore::open(&dir).expect("store reopens");
    let warm = pareto_search_with_store(
        &pool,
        &ir,
        "compress",
        &cm,
        &em,
        FpaConfig::tiny(),
        0xBEEF,
        &warm_store,
    );
    assert_eq!(warm.stats.disk_misses, 0, "warm start must not compile");
    assert_eq!(
        warm.stats.disk_hits, warm.stats.cache_misses,
        "100% disk hits"
    );
    assert_eq!(
        front_bytes(&cold),
        front_bytes(&warm),
        "warm front must be byte-identical"
    );
    // Everything but the disk traffic replays exactly.
    assert_eq!(
        (
            warm.stats.evaluations,
            warm.stats.generations,
            warm.stats.cache_hits,
            warm.stats.cache_misses
        ),
        (
            cold.stats.evaluations,
            cold.stats.generations,
            cold.stats.cache_hits,
            cold.stats.cache_misses
        ),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_failures_are_served_from_disk_without_codegen() {
    // `spin`'s loop has no derivable bound, so every configuration is
    // infeasible — the WCET analysis rejects it after codegen.
    let (cm, em) = pg32_models();
    let dir = temp_dir("failures");
    let ir = compile_to_ir(
        "int spin(int n) { int s = 0; while (n > 0) { n = n - 1; s = s + 1; } return s; }",
    )
    .expect("front-end");
    let config = CompilerConfig::balanced();

    let store = DiskStore::open(&dir).expect("store opens");
    let cold = EvalCache::with_store(&ir, &cm, &em, &store);
    assert!(
        cold.evaluate(&config).is_none(),
        "unbounded loop is infeasible"
    );
    assert_eq!((cold.disk_hits(), cold.disk_misses()), (0, 1));
    assert_eq!(store.entries(), 1, "the failure must be persisted");

    // A fresh cache (new process) is answered "known bad" from disk:
    // `disk_misses() == 0` certifies the compile-and-fail path — codegen
    // included — never ran.
    let warm = EvalCache::with_store(&ir, &cm, &em, &store);
    assert!(warm.evaluate(&config).is_none());
    assert_eq!((warm.disk_hits(), warm.disk_misses()), (1, 0));
    // And a repeat probe in the same process stays in memory.
    assert!(warm.evaluate(&config).is_none());
    assert_eq!((warm.hits(), warm.misses()), (1, 1));
    assert_eq!((warm.disk_hits(), warm.disk_misses()), (1, 0));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-function configuration map exercising several distinct pipelines
/// in one module: functions alternate between an aggressive and a
/// minimal configuration.
fn alternating_configs(ir: &teamplay_minic::ir::IrModule) -> HashMap<String, CompilerConfig> {
    let aggressive = CompilerConfig {
        pipeline: Pipeline::o3(),
        mul_shift_add: true,
        pinned_regs: 4,
    };
    let minimal = CompilerConfig {
        pipeline: Pipeline::o1(),
        mul_shift_add: false,
        pinned_regs: 0,
    };
    ir.functions
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let c = if i % 2 == 0 { &aggressive } else { &minimal };
            (f.name.clone(), c.clone())
        })
        .collect()
}

#[test]
fn per_function_passes_are_byte_identical_at_widths_1_2_4() {
    for (app, src, _task) in app_kernels() {
        let ir = compile_to_ir(src).expect("front-end");
        let configs = alternating_configs(&ir);
        let default = CompilerConfig::balanced();
        let sequential = {
            let program =
                compile_module_per_function(&ir, &configs, &default).expect("sequential build");
            serde_json::to_string(&program).expect("program serializes")
        };
        for width in [1usize, 2, 4] {
            let pool = minipool::Pool::new(width);
            let program = compile_module_per_function_on(&pool, &ir, &configs, &default)
                .expect("pooled build");
            let bytes = serde_json::to_string(&program).expect("program serializes");
            assert_eq!(
                bytes, sequential,
                "{app}: width-{width} per-function build diverges from sequential"
            );
        }
    }
}

#[test]
fn pass_manager_run_on_matches_run_at_any_width_across_app_kernels() {
    for (app, src, _task) in app_kernels() {
        for pipeline in [Pipeline::o1(), Pipeline::o2(), Pipeline::o3()] {
            let reference = {
                let mut module = compile_to_ir(src).expect("front-end");
                let mut pm = PassManager::new(pipeline.clone()).expect("pipeline resolves");
                pm.run(&mut module);
                serde_json::to_string(&module).expect("module serializes")
            };
            for width in [1usize, 2, 4] {
                let mut module = compile_to_ir(src).expect("front-end");
                let mut pm = PassManager::new(pipeline.clone()).expect("pipeline resolves");
                pm.run_on(&minipool::Pool::new(width), &mut module);
                let bytes = serde_json::to_string(&module).expect("module serializes");
                assert_eq!(
                    bytes, reference,
                    "{app}: width-{width} run_on diverges from sequential run"
                );
            }
        }
    }
}

#[test]
fn duplicate_function_bodies_are_deduplicated_with_identical_results() {
    // Three byte-identical bodies under different names (plus one
    // distinct function): the pooled runner must optimise one
    // representative and copy it, with output equal to the sequential
    // runner that optimises each copy separately.
    let body = "int s = 0;
        for (int i = 0; i < 12; i = i + 1) { s = s + x * 3 - i; }
        return s;";
    let src = format!(
        "int fa(int x) {{ {body} }}
         int fb(int x) {{ {body} }}
         int fc(int x) {{ {body} }}
         int other(int x) {{ return x * x + 7; }}"
    );
    let ir = compile_to_ir(&src).expect("front-end");
    let reference = {
        let mut module = ir.clone();
        let mut pm = PassManager::o2();
        pm.run(&mut module);
        serde_json::to_string(&module).expect("module serializes")
    };
    for width in [1usize, 2, 4] {
        let mut module = ir.clone();
        let mut pm = PassManager::o2();
        pm.run_on(&minipool::Pool::new(width), &mut module);
        assert_eq!(
            serde_json::to_string(&module).expect("module serializes"),
            reference,
            "width-{width} dedup run diverges"
        );
        // Dedup accounting: 2 unique bodies ran the pipeline, not 4.
        // Each pass records one invocation per fixpoint round per unique
        // body, so totals must be well below the sequential count.
        let sequential_invocations: usize = {
            let mut m = ir.clone();
            let mut spm = PassManager::o2();
            spm.run(&mut m);
            spm.stats().iter().map(|s| s.invocations).sum()
        };
        let deduped_invocations: usize = pm.stats().iter().map(|s| s.invocations).sum();
        assert!(
            deduped_invocations < sequential_invocations,
            "dedup must shrink pass invocations ({deduped_invocations} vs {sequential_invocations})"
        );
    }
}

#[test]
fn compile_many_dedups_jobs_and_is_byte_identical_at_widths_1_2_4() {
    let (cm, em) = pg32_models();
    let job = |id: &str, src: &str, task: &str, seed: u64| CompileJob {
        id: id.to_string(),
        ir: compile_to_ir(src).expect("front-end"),
        tasks: vec![task.to_string()],
        fpa: FpaConfig::tiny(),
        seed,
    };
    // Two identical camera jobs (distinct ids) + one spacewire job:
    // 3 submitted, 2 unique.
    let jobs = vec![
        job("cam-a", teamplay_apps::camera_pill::SOURCE, "compress", 7),
        job("sw", teamplay_apps::spacewire::SOURCE, "crc_frame", 7),
        job("cam-b", teamplay_apps::camera_pill::SOURCE, "compress", 7),
    ];

    let mut baseline: Option<Vec<String>> = None;
    for width in [1usize, 2, 4] {
        let pool = minipool::Pool::new(width);
        let (results, stats) = compile_many(&pool, &jobs, &cm, &em, None);
        assert_eq!(stats.jobs, 3);
        assert_eq!(stats.unique_jobs, 2);
        assert!((stats.dedup_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            results.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["cam-a", "sw", "cam-b"],
            "results must come back in submission order"
        );
        let rendered: Vec<String> = results
            .iter()
            .map(|r| front_bytes(&r.fronts[0].1))
            .collect();
        assert_eq!(rendered[0], rendered[2], "duplicate jobs share one result");
        match &baseline {
            None => baseline = Some(rendered),
            Some(b) => assert_eq!(&rendered, b, "width-{width} batch diverges"),
        }
    }

    // The batched front must equal the one-job-at-a-time front.
    let single = pareto_search_on(
        &minipool::Pool::new(1),
        &jobs[1].ir,
        "crc_frame",
        &cm,
        &em,
        FpaConfig::tiny(),
        7,
    );
    assert_eq!(
        baseline.expect("ran")[1],
        front_bytes(&single),
        "compile_many front diverges from pareto_search_on"
    );
}

#[test]
fn compile_many_warm_starts_from_a_shared_store() {
    let (cm, em) = pg32_models();
    let dir = temp_dir("batch-store");
    let jobs: Vec<CompileJob> = app_kernels()
        .into_iter()
        .map(|(app, src, task)| CompileJob {
            id: app.to_string(),
            ir: compile_to_ir(src).expect("front-end"),
            tasks: vec![task.to_string()],
            fpa: FpaConfig::tiny(),
            seed: 0xC0FFEE,
        })
        .collect();
    let pool = minipool::Pool::new(4);

    let store = DiskStore::open(&dir).expect("store opens");
    let (cold_results, cold) = compile_many(&pool, &jobs, &cm, &em, Some(&store));
    // Four distinct modules: no cross-job key overlap, so the cold
    // counters are exact even with jobs racing on the shared store.
    assert_eq!(cold.search.disk_hits, 0);
    assert_eq!(cold.search.disk_misses, cold.search.cache_misses);

    let warm_store = DiskStore::open(&dir).expect("store reopens");
    let (warm_results, warm) = compile_many(&pool, &jobs, &cm, &em, Some(&warm_store));
    assert_eq!(warm.search.disk_misses, 0, "warm batch must not compile");
    assert_eq!(warm.search.disk_hits, warm.search.cache_misses);
    for (c, w) in cold_results.iter().zip(&warm_results) {
        assert_eq!(
            front_bytes(&c.fronts[0].1),
            front_bytes(&w.fronts[0].1),
            "warm batch front diverges for job {}",
            c.id
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// Random loop-nest kernels (the tightness oracle's generator, plus
    /// a byte-identical twin function to exercise dedup): the pooled
    /// pass runners stay byte-identical to the sequential ones at
    /// widths 1/2/4.
    #[test]
    fn random_kernels_are_width_invariant(
        n1 in 1u32..12,
        n2 in 1u32..9,
        inner in 0u32..5,
        step in 1u32..3,
        pivot in -4i32..12,
        c1 in -9i32..9,
        c2 in 1i32..7,
        heavy_on_else in proptest::any::<bool>(),
    ) {
        let heavy = "acc = acc + (a * c + j) / d + a * a;";
        let light = "acc = acc - 1;";
        let (then_arm, else_arm) =
            if heavy_on_else { (light, heavy) } else { (heavy, light) };
        let body = format!(
            "int acc = {c1};
             for (int j = 0; j < {n1}; j = j + {step}) {{
                 int c = 3; int d = {c2};
                 if (a > {pivot}) {{ {then_arm} }} else {{ {else_arm} }}
                 for (int k = 0; k < {inner}; k = k + 1) {{
                     acc = acc + b * k;
                 }}
             }}
             int t = b;
             for (int j = 0; j < {n2}; j = j + 1) {{
                 t = t + j * a - acc;
             }}
             return acc + t;"
        );
        let src = format!(
            "int kernel(int a, int b) {{ {body} }}
             int twin(int a, int b) {{ {body} }}"
        );
        let ir = compile_to_ir(&src).expect("front-end");

        // Whole-module runner under o2 and o3.
        for pipeline in [Pipeline::o2(), Pipeline::o3()] {
            let reference = {
                let mut m = ir.clone();
                let mut pm = PassManager::new(pipeline.clone()).expect("resolves");
                pm.run(&mut m);
                serde_json::to_string(&m).expect("serializes")
            };
            for width in [1usize, 2, 4] {
                let mut m = ir.clone();
                let mut pm = PassManager::new(pipeline.clone()).expect("resolves");
                pm.run_on(&minipool::Pool::new(width), &mut m);
                prop_assert_eq!(
                    &serde_json::to_string(&m).expect("serializes"),
                    &reference,
                    "width {} diverges", width
                );
            }
        }

        // Per-function runner with distinct per-function configs.
        let configs = alternating_configs(&ir);
        let default = CompilerConfig::balanced();
        let sequential = serde_json::to_string(
            &compile_module_per_function(&ir, &configs, &default).expect("builds"),
        )
        .expect("serializes");
        for width in [2usize, 4] {
            let program = compile_module_per_function_on(
                &minipool::Pool::new(width),
                &ir,
                &configs,
                &default,
            )
            .expect("builds");
            prop_assert_eq!(
                &serde_json::to_string(&program).expect("serializes"),
                &sequential,
                "per-function width {} diverges", width
            );
        }
    }
}
