//! The WCET/WCEC tightness oracle (PR 5 acceptance suite, extended to
//! the pre-decoded engine in PR 6).
//!
//! For randomly generated Mini-C kernels, compiled under **every**
//! registry pipeline (each single-pass pipeline, the `o1`–`o3` presets
//! and the tuned per-app pipelines), the three bounds must order:
//!
//! ```text
//! simulator-observed cycles  ≤  IPET bound  ≤  structural bound
//! ```
//!
//! The left inequality is soundness (the analyser may never promise less
//! than the machine spends), the right is the tightness contract of the
//! IPET engine (it can only sharpen the structural condensation, never
//! exceed it). The same sandwich is asserted for energy against the
//! simulator's hidden ground truth being *estimated* by the analytical
//! model — energy soundness is already property-tested elsewhere, so
//! here only `WCEC(ipet) ≤ WCEC(structural)` is checked.
//!
//! Since PR 6 the simulator leg runs on **both** engines: the reference
//! [`Machine`] interpreter and the pre-decoded direct-threaded
//! [`DecodedProgram`] engine. Every run is asserted bit-identical
//! between the two (full [`RunResult`], energy compared by bit pattern),
//! so the observed-cycles side of the sandwich is simultaneously a
//! differential oracle for the fast engine — across every pipeline,
//! every preset, the proptest kernels and the four app kernels.
//!
//! A deterministic regression case pins the *strict* part: an if/else
//! with unbalanced arms inside a bounded loop, where the structural
//! engine must charge the worst full iteration once more than IPET.

use teamplay_compiler::{generate_program, CodegenOpts, PassManager, Pipeline, REGISTRY};
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;
use teamplay_sim::{DecodedProgram, Machine, NullDevice, RecordingDevice};
use teamplay_wcet::{analyze_program, analyze_program_structural};

/// Every single-pass registry pipeline plus the level presets and the
/// tuned application pipelines — the same menu the differential suite
/// uses.
fn pipelines_under_test() -> Vec<(String, Pipeline)> {
    let mut out: Vec<(String, Pipeline)> = REGISTRY
        .iter()
        .map(|d| {
            let p: Pipeline = d.name.parse().expect("registry names parse");
            (format!("pass:{}", d.name), p)
        })
        .collect();
    out.push(("preset:o1".into(), Pipeline::o1()));
    out.push(("preset:o2".into(), Pipeline::o2()));
    out.push(("preset:o3".into(), Pipeline::o3()));
    for (app, pipeline) in teamplay_apps::recommended_pipelines() {
        out.push((
            format!("app:{app}"),
            pipeline.parse().expect("tuned pipelines parse"),
        ));
    }
    out
}

/// Check `sim ≤ ipet ≤ structural` for one kernel source under one
/// pipeline, over the given argument vectors. Returns the bounds for
/// the caller's labelling.
fn assert_sandwich(label: &str, src: &str, func: &str, args_sets: &[Vec<i32>]) -> (u64, u64) {
    let cm = CycleModel::pg32();
    let em = teamplay_energy::IsaEnergyModel::pg32_datasheet();
    let reference = compile_to_ir(src).unwrap_or_else(|e| panic!("{label}: front-end: {e}"));
    for (plabel, pipeline) in pipelines_under_test() {
        let mut module = reference.clone();
        let mut pm = PassManager::new(pipeline).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default())
            .unwrap_or_else(|e| panic!("{label}/{plabel}: codegen: {e}"));
        let ipet = analyze_program(&program, &cm)
            .unwrap_or_else(|e| panic!("{label}/{plabel}: IPET analysis: {e}"))
            .wcet_cycles(func)
            .expect("bounded");
        let structural = analyze_program_structural(&program, &cm)
            .unwrap_or_else(|e| panic!("{label}/{plabel}: structural analysis: {e}"))
            .wcet_cycles(func)
            .expect("bounded");
        assert!(
            ipet <= structural,
            "{label}/{plabel}: IPET {ipet} exceeds structural {structural}"
        );
        let wcec = teamplay_energy::analyze_program_energy(&program, &em, &cm)
            .unwrap_or_else(|e| panic!("{label}/{plabel}: WCEC analysis: {e}"))
            .wcec_pj(func)
            .expect("bounded");
        let wcec_structural =
            teamplay_energy::analyze_program_energy_structural(&program, &em, &cm)
                .unwrap_or_else(|e| panic!("{label}/{plabel}: structural WCEC: {e}"))
                .wcec_pj(func)
                .expect("bounded");
        assert!(
            wcec <= wcec_structural + 1e-6,
            "{label}/{plabel}: WCEC {wcec} exceeds structural {wcec_structural}"
        );
        let decoded = DecodedProgram::new(&program)
            .unwrap_or_else(|e| panic!("{label}/{plabel}: decode: {e:?}"));
        for args in args_sets {
            let mut machine = Machine::new(program.clone()).expect("loads");
            let r = machine
                .call(func, args, &mut RecordingDevice::new())
                .unwrap_or_else(|e| panic!("{label}/{plabel}: run {args:?}: {e:?}"));
            let mut engine = decoded.engine();
            let d = engine
                .call(func, args, &mut RecordingDevice::new())
                .unwrap_or_else(|e| panic!("{label}/{plabel}: decoded run {args:?}: {e:?}"));
            assert_eq!(
                r, d,
                "{label}/{plabel}: engines diverge for {args:?} (reference vs pre-decoded)"
            );
            assert_eq!(
                r.energy_pj.to_bits(),
                d.energy_pj.to_bits(),
                "{label}/{plabel}: energy bit patterns diverge for {args:?}"
            );
            assert!(
                r.cycles <= ipet,
                "{label}/{plabel}: observed {} cycles over IPET bound {ipet} for {args:?}",
                r.cycles
            );
        }
    }
    // Bounds under the empty pipeline, for the deterministic case below.
    let program = generate_program(&reference, CodegenOpts::default()).expect("codegen");
    let ipet = analyze_program(&program, &cm)
        .expect("ipet")
        .wcet_cycles(func)
        .expect("bounded");
    let structural = analyze_program_structural(&program, &cm)
        .expect("structural")
        .wcet_cycles(func)
        .expect("bounded");
    (ipet, structural)
}

#[test]
fn unbalanced_if_else_in_a_bounded_loop_is_strictly_tighter() {
    // The canonical IPET-vs-structural gap: a 10-trip loop whose body
    // branches into a heavy multiply/divide arm or a trivial one. The
    // structural engine charges (bound + 1) worst iterations (the final
    // header check pays a whole heavy arm); IPET charges the body
    // `bound` times and routes the final check through the cheap exit
    // edge.
    let src = "int f(int x) {
        int s = 0;
        for (int i = 0; i < 10; i = i + 1) {
            if (x > i) {
                s = s + (x * 3 + i) / (i + 1) + x * x;
            } else {
                s = s - 1;
            }
        }
        return s;
    }";
    let args: Vec<Vec<i32>> = vec![vec![0], vec![5], vec![11], vec![-3]];
    let (ipet, structural) = assert_sandwich("unbalanced", src, "f", &args);
    assert!(
        ipet < structural,
        "IPET {ipet} must be strictly below structural {structural} on the unbalanced loop"
    );
}

#[test]
fn app_kernels_bit_identical_across_engines_and_inside_the_sandwich() {
    // The four benchmark kernels under their tuned pipelines — the same
    // configurations `sim_throughput` times. Each kernel is run four
    // times back to back *without* data resets, so the differential
    // check also covers evolving global state (the regime the
    // throughput bench measures), not just the fresh-image run.
    let cm = CycleModel::pg32();
    let cat = teamplay_apps::catalog();
    for (app, src, task, args) in [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
            vec![],
        ),
        (
            "spacewire",
            teamplay_apps::spacewire::SOURCE,
            "crc_frame",
            vec![],
        ),
        (
            "uav",
            teamplay_apps::uav::DETECT_KERNEL_SOURCE,
            "predetect",
            vec![40],
        ),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
            vec![],
        ),
    ] {
        let mut module = compile_to_ir(src).expect("kernel compiles");
        let mut pm =
            PassManager::new(cat.get(app).expect("registered").clone()).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default()).expect("codegen succeeds");
        let ipet = analyze_program(&program, &cm)
            .expect("ipet")
            .wcet_cycles(task)
            .expect("bounded");
        let structural = analyze_program_structural(&program, &cm)
            .expect("structural")
            .wcet_cycles(task)
            .expect("bounded");
        assert!(
            ipet <= structural,
            "{app}/{task}: IPET {ipet} exceeds structural {structural}"
        );
        let decoded = DecodedProgram::new(&program).expect("decodes");
        let mut machine = Machine::new(program.clone()).expect("loads");
        let mut engine = decoded.engine();
        for round in 0..4 {
            let want = machine
                .call(task, &args, &mut NullDevice::new())
                .expect("reference runs");
            let got = engine
                .call(task, &args, &mut NullDevice::new())
                .expect("decoded runs");
            assert_eq!(want, got, "{app}/{task}: engines diverge on round {round}");
            assert_eq!(
                want.energy_pj.to_bits(),
                got.energy_pj.to_bits(),
                "{app}/{task}: energy bit patterns diverge on round {round}"
            );
            if round == 0 {
                // Only the fresh-image run is IPET-comparable; later
                // rounds see globals mutated by earlier ones.
                assert!(
                    want.cycles <= ipet,
                    "{app}/{task}: observed {} cycles over IPET bound {ipet}",
                    want.cycles
                );
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig {
        cases: 64, ..proptest::ProptestConfig::default()
    })]

    /// Random loop-nest kernels: two sequential loops (one with a
    /// branchy body, optionally a nested inner loop), random bounds,
    /// steps, constants and comparison pivots — under every registry
    /// pipeline, simulated cycles ≤ IPET ≤ structural.
    #[test]
    fn random_kernels_respect_the_bound_sandwich(
        n1 in 1u32..12,
        n2 in 1u32..9,
        inner in 0u32..5,
        step in 1u32..3,
        pivot in -4i32..12,
        c1 in -9i32..9,
        c2 in 1i32..7,
        heavy_on_else in proptest::any::<bool>(),
        x in -50i32..50,
        y in -50i32..50,
    ) {
        let heavy = "acc = acc + (a * c + j) / d + a * a;";
        let light = "acc = acc - 1;";
        let (then_arm, else_arm) =
            if heavy_on_else { (light, heavy) } else { (heavy, light) };
        let src = format!(
            "int kernel(int a, int b) {{
                int acc = {c1};
                for (int j = 0; j < {n1}; j = j + {step}) {{
                    int c = 3; int d = {c2};
                    if (a > {pivot}) {{ {then_arm} }} else {{ {else_arm} }}
                    for (int k = 0; k < {inner}; k = k + 1) {{
                        acc = acc + b * k;
                    }}
                }}
                int t = b;
                for (int j = 0; j < {n2}; j = j + 1) {{
                    t = t + j * a - acc;
                }}
                return acc + t;
            }}"
        );
        let args = vec![vec![x, y], vec![pivot, y], vec![pivot + 1, -y]];
        assert_sandwich("random", &src, "kernel", &args);
    }
}
