//! The toolchain's central correctness property, tested across crates:
//! for randomly generated Mini-C programs and inputs, the reference
//! interpreter, the IR executor and the PG32 machine running code
//! compiled under *every* optimisation preset all agree — and the static
//! WCET/WCEC bounds dominate every measured run.

use proptest::prelude::*;
use teamplay_compiler::{compile_module, CompilerConfig, Pipeline};
use teamplay_energy::{analyze_program_energy, IsaEnergyModel};
use teamplay_isa::CycleModel;
use teamplay_minic::interp::{Interp, RecordingPorts};
use teamplay_minic::ir::exec_module;
use teamplay_minic::{compile_to_ir, parse_and_check};
use teamplay_sim::{Machine, RecordingDevice};
use teamplay_wcet::analyze_program;

/// A tiny generator of well-formed Mini-C functions: straight-line
/// arithmetic with bounded loops, array traffic and helper calls, all
/// within the analysable fragment.
fn arb_program() -> impl Strategy<Value = String> {
    let expr_leaf = prop_oneof![
        (-100i32..100).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("acc".to_string()),
    ];
    let bin_op = prop_oneof![
        Just("+"),
        Just("-"),
        Just("*"),
        Just("/"),
        Just("%"),
        Just("&"),
        Just("|"),
        Just("^"),
        Just("<<"),
        Just(">>"),
    ];
    let expr = (expr_leaf.clone(), bin_op, expr_leaf.clone()).prop_map(|(a, op, b)| {
        // Mask shift amounts so semantics stay within the friendly range.
        if op == "<<" || op == ">>" {
            format!("(({a}) {op} (({b}) & 7))")
        } else {
            format!("(({a}) {op} ({b}))")
        }
    });
    (
        proptest::collection::vec(expr, 1..5),
        2u32..9,   // loop bound
        0usize..3, // helper-call count
    )
        .prop_map(|(exprs, bound, helper_calls)| {
            let mut body = String::new();
            body.push_str("int acc = x ^ 3;\n");
            body.push_str(&format!(
                "    for (int i = 0; i < {bound}; i = i + 1) {{ buf[i % 8] = acc + i; acc = acc + buf[(i + 1) % 8]; }}\n"
            ));
            for (k, e) in exprs.iter().enumerate() {
                body.push_str(&format!("    acc = acc + ({e}) * {};\n", k as i32 + 1));
            }
            for _ in 0..helper_calls {
                body.push_str("    acc = acc ^ twist(acc, y);\n");
            }
            format!(
                "int buf[8];\n\
                 int twist(int a, int b) {{ return (a << 1) ^ (b >> 1) ^ (a & b); }}\n\
                 int f(int x, int y) {{\n    {body}\n    return acc;\n}}"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn all_semantics_layers_agree_and_bounds_hold(
        src in arb_program(),
        x in -1000i32..1000,
        y in -1000i32..1000,
    ) {
        // Oracle 1: AST interpreter.
        let ast = parse_and_check(&src).expect("generated programs are well-formed");
        let mut interp = Interp::new(&ast, RecordingPorts::new(), 50_000_000);
        let expected = match interp.call("f", &[x, y]) {
            Ok(outcome) => outcome.return_value,
            Err(_) => return Ok(()), // out-of-fuel etc.: not a witness
        };

        // Oracle 2: IR executor.
        let ir = compile_to_ir(&src).expect("lowers");
        let mut ports = RecordingPorts::new();
        let got_ir = exec_module(&ir, "f", &[x, y], &mut ports, 50_000_000).expect("IR runs");
        prop_assert_eq!(got_ir, expected, "IR diverged from the interpreter");

        // Every compiler preset must agree, and static bounds must hold.
        let cm = CycleModel::pg32();
        let em = IsaEnergyModel::pg32_datasheet();
        // Every named preset, plus registry-built pipelines: each pass
        // alone, and a hand-written `from_str` pipeline with the
        // energy-trading codegen knob on.
        let mut configs = vec![
            CompilerConfig::all_off(),
            CompilerConfig::traditional(),
            CompilerConfig::balanced(),
            CompilerConfig::performance(),
            CompilerConfig::energy_saver(),
        ];
        for pass in teamplay_compiler::REGISTRY {
            configs.push(CompilerConfig {
                pipeline: pass.name.parse().expect("registry names parse"),
                mul_shift_add: false,
                pinned_regs: 0,
            });
        }
        configs.push(CompilerConfig {
            pipeline: "inline(24),mul_shift_add,const_fold,copy_prop,dce"
                .parse::<Pipeline>()
                .expect("pipeline parses"),
            mul_shift_add: true,
            pinned_regs: 2,
        });
        for config in configs {
            let program = compile_module(&ir, &config).expect("compiles");
            let wcet = analyze_program(&program, &cm).expect("wcet analyses");
            let wcec = analyze_program_energy(&program, &em, &cm).expect("wcec analyses");
            let mut machine = Machine::new(program).expect("loads");
            let r = machine.call("f", &[x, y], &mut RecordingDevice::new()).expect("machine runs");
            prop_assert_eq!(
                Some(r.return_value),
                expected,
                "config {:?} diverged",
                config
            );
            let bound = wcet.wcet_cycles("f").expect("bounded");
            prop_assert!(
                bound >= r.cycles,
                "WCET {} < measured {} under {:?}",
                bound,
                r.cycles,
                config
            );
            let ebound = wcec.wcec_pj("f").expect("bounded");
            prop_assert!(
                ebound >= r.energy_pj,
                "WCEC {} < measured {} under {:?}",
                ebound,
                r.energy_pj,
                config
            );
        }
    }
}
