//! Oracle tests for the dataflow backbone: on randomly generated Mini-C
//! kernels (further randomised by registry pipelines, so the CFGs carry
//! diamonds, loops and unreachable-after-folding shapes), the packed
//! fixpoint analyses must agree with naive, obviously-correct
//! recomputation:
//!
//! * **dominance** — `a dom b` iff deleting `a` disconnects `b` from
//!   the entry (path-based definition, checked by DFS per pair);
//! * **liveness** — `t` live into `b` iff some path from the start of
//!   `b` reads `t` before writing it (checked by first-touch DFS);
//! * **def-use** — def/use sites match a per-op rescan, and
//!   `single_def` answers exactly the temps with one op definition.

use proptest::prelude::*;
use teamplay_compiler::dataflow::{for_each_read, for_each_term_read, for_each_write};
use teamplay_compiler::{DefUse, DomTree, Liveness, PassManager};
use teamplay_minic::cfg::CfgView;
use teamplay_minic::compile_to_ir;
use teamplay_minic::ir::{IrFunction, Temp};

/// Small Mini-C kernels with branches, a bounded loop, array traffic
/// and a helper call — enough to exercise every analysis shape.
fn arb_kernel() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-50i32..50).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("y".to_string()),
        Just("acc".to_string()),
    ];
    let op = prop_oneof![Just("+"), Just("-"), Just("*"), Just("&"), Just("^")];
    let expr = (leaf.clone(), op, leaf).prop_map(|(a, op, b)| format!("(({a}) {op} ({b}))"));
    (
        proptest::collection::vec(expr, 1..4),
        2u32..7,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(exprs, bound, with_if, with_call)| {
            let mut body = String::from("int acc = x ^ 5;\n");
            if with_if {
                body.push_str("    if (y > 0) { acc = acc + y; } else { acc = acc - 1; }\n");
            }
            body.push_str(&format!(
                "    for (int i = 0; i < {bound}; i = i + 1) {{ buf[i % 8] = acc; acc = acc + buf[(i + 3) % 8] + i; }}\n"
            ));
            for (k, e) in exprs.iter().enumerate() {
                body.push_str(&format!("    acc = acc ^ ({e}) * {};\n", k as i32 + 1));
            }
            if with_call {
                body.push_str("    acc = acc + twist(acc, y);\n");
            }
            format!(
                "int buf[8];\n\
                 int twist(int a, int b) {{ return (a << 1) ^ (b & 0xFF); }}\n\
                 int f(int x, int y) {{\n    {body}\n    return acc;\n}}"
            )
        })
}

/// Pipelines that reshape the CFG in different ways before the oracle
/// runs, so the analyses face more than front-end-shaped graphs.
const RESHAPERS: [&str; 4] = [
    "",
    "const_fold,copy_prop,dce",
    "inline(40),licm,cse,const_fold,dce",
    "unroll(4),block_layout,const_fold,copy_prop,dce",
];

/// Blocks reachable from the entry, optionally pretending `skip` and
/// its out-edges are deleted.
fn reachable(f: &IrFunction, skip: Option<usize>) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if Some(0) == skip {
        return seen;
    }
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.successors(b) {
            if Some(s) != skip && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Naive path-based liveness: is some read of `t` reachable from the
/// start of `b` before any write to `t`?
fn naive_live_in(f: &IrFunction, b: usize, t: Temp) -> bool {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![b];
    seen[b] = true;
    while let Some(cur) = stack.pop() {
        let blk = &f.blocks[cur];
        let mut verdict: Option<bool> = None;
        for op in &blk.ops {
            let mut read = false;
            for_each_read(op, |r| read |= r == t);
            if read {
                verdict = Some(true);
                break;
            }
            let mut written = false;
            for_each_write(op, |w| written |= w == t);
            if written {
                verdict = Some(false);
                break;
            }
        }
        if verdict.is_none() {
            let mut read = false;
            for_each_term_read(&blk.term, |r| read |= r == t);
            if read {
                verdict = Some(true);
            }
        }
        match verdict {
            Some(true) => return true,
            Some(false) => {}
            None => {
                for s in f.successors(cur) {
                    if !seen[s] {
                        seen[s] = true;
                        stack.push(s);
                    }
                }
            }
        }
    }
    false
}

fn oracle_check(f: &IrFunction) {
    let name = &f.name;
    let dom = DomTree::build(f);
    let live = Liveness::build(f);
    let du = DefUse::build(f);
    let n = f.blocks.len();
    let from_entry = reachable(f, None);

    // Dominance against the path definition, every reachable pair.
    for a in (0..n).filter(|&a| from_entry[a]) {
        let cut = reachable(f, Some(a));
        for b in (0..n).filter(|&b| from_entry[b]) {
            let expect = a == b || !cut[b];
            assert_eq!(
                dom.dominates(a, b),
                expect,
                "{name}: dominates({a}, {b}) disagrees with the path oracle"
            );
        }
    }

    // Liveness against first-touch path search, every block × temp.
    for b in (0..n).filter(|&b| from_entry[b]) {
        for t in 0..f.temp_count {
            assert_eq!(
                live.is_live_in(b, Temp(t)),
                naive_live_in(f, b, Temp(t)),
                "{name}: live-in of t{t} at block {b} disagrees with the path oracle"
            );
        }
    }

    // Def-use against a naive rescan.
    let nt = f.temp_count as usize;
    let mut defs = vec![Vec::new(); nt];
    let mut uses = vec![Vec::new(); nt];
    for (bi, blk) in f.blocks.iter().enumerate() {
        for (oi, op) in blk.ops.iter().enumerate() {
            for_each_read(op, |r| uses[r.0 as usize].push((bi, oi)));
            for_each_write(op, |w| defs[w.0 as usize].push((bi, oi)));
        }
        for_each_term_read(&blk.term, |r| uses[r.0 as usize].push((bi, blk.ops.len())));
    }
    for t in 0..nt {
        let temp = Temp(t as u32);
        assert_eq!(du.defs(temp), &defs[t][..], "{name}: defs of t{t}");
        assert_eq!(du.uses(temp), &uses[t][..], "{name}: uses of t{t}");
        let is_param = f.params.iter().any(|p| p.temp == temp);
        assert_eq!(du.is_param(temp), is_param, "{name}: is_param of t{t}");
        let expect_single = (!is_param && defs[t].len() == 1).then(|| defs[t][0]);
        assert_eq!(
            du.single_def(temp),
            expect_single,
            "{name}: single_def of t{t}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn packed_analyses_agree_with_naive_recomputation(
        src in arb_kernel(),
        reshape in 0usize..RESHAPERS.len(),
    ) {
        let mut module = compile_to_ir(&src).expect("generated kernels lower");
        let pipeline = RESHAPERS[reshape];
        if !pipeline.is_empty() {
            let mut pm = PassManager::from_str(pipeline).expect("reshaper parses");
            pm.run(&mut module);
            module.validate().expect("valid after reshaping");
        }
        for f in &module.functions {
            oracle_check(f);
        }
    }
}

/// The shipped application kernels are free extra coverage: real CFGs
/// with nested loops and calls, before and after their tuned pipelines.
#[test]
fn packed_analyses_agree_on_the_app_kernels() {
    for (app, src) in [
        ("camera_pill", teamplay_apps::camera_pill::SOURCE),
        ("spacewire", teamplay_apps::spacewire::SOURCE),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE),
        ("parking", teamplay_apps::parking::CONV_KERNEL_SOURCE),
    ] {
        let module = compile_to_ir(src).expect("kernel compiles");
        for f in &module.functions {
            oracle_check(f);
        }
        let (_, tuned) = teamplay_apps::recommended_pipelines()
            .into_iter()
            .find(|(a, _)| *a == app)
            .expect("every app has a tuned pipeline");
        let mut optimised = compile_to_ir(src).expect("kernel compiles");
        let mut pm = PassManager::from_str(tuned).expect("tuned pipelines parse");
        pm.run(&mut optimised);
        for f in &optimised.functions {
            oracle_check(f);
        }
    }
}
