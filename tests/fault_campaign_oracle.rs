//! Determinism oracle for the fault-injection campaign runner.
//!
//! `run_campaign` promises the same contract as the batched trace
//! fleet: outcomes in plan order, **byte-identical at any pool width**,
//! with the zero-fault control run reproducing the fault-free reference
//! bit for bit. This suite pins that contract on real app kernels under
//! their tuned pipelines — the serialized [`CampaignResult`] (plan,
//! per-injection outcomes, aggregated stats) must be byte-for-byte
//! equal on pools of 1, 2 and 4 workers.
//!
//! A second case checks the empty-plan identity: a campaign over
//! [`FaultPlan::empty`] performs no injections and still certifies the
//! masked control, so wiring the campaign harness into a flow cannot
//! perturb it.
//!
//! [`CampaignResult`]: teamplay_sim::CampaignResult
//! [`FaultPlan::empty`]: teamplay_sim::FaultPlan::empty

use minipool::Pool;
use teamplay_compiler::{generate_program, CodegenOpts, PassManager};
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;
use teamplay_sim::{
    run_campaign, run_campaign_with_plan, CampaignConfig, FaultPlan, RecordingDevice,
};
use teamplay_wcet::analyze_program;

/// App kernels under their tuned pipelines, with the IPET bound the
/// campaign uses as its timing-violation threshold.
fn kernels() -> Vec<(String, String, Vec<i32>, teamplay_isa::Program, u64)> {
    let cat = teamplay_apps::catalog();
    let cm = CycleModel::pg32();
    [
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
            vec![],
        ),
        (
            "uav",
            teamplay_apps::uav::DETECT_KERNEL_SOURCE,
            "predetect",
            vec![40],
        ),
    ]
    .into_iter()
    .map(|(app, src, task, args)| {
        let mut module = compile_to_ir(src).expect("kernel compiles");
        let mut pm =
            PassManager::new(cat.get(app).expect("registered").clone()).expect("pipeline resolves");
        pm.run(&mut module);
        let program = generate_program(&module, CodegenOpts::default()).expect("codegen succeeds");
        let ipet = analyze_program(&program, &cm)
            .expect("ipet")
            .wcet_cycles(task)
            .expect("bounded");
        (app.to_string(), task.to_string(), args, program, ipet)
    })
    .collect()
}

fn config(ipet: u64) -> CampaignConfig {
    CampaignConfig {
        seed: 0xFA17_0C1E,
        // 67 injections: not a multiple of the campaign's chunk size, so
        // the last chunk is ragged and boundary bookkeeping is exercised.
        injections: 67,
        watchdog_cycles: ipet * 2,
        ipet_bound_cycles: Some(ipet),
    }
}

#[test]
fn campaigns_are_byte_identical_across_pool_widths() {
    for (app, task, args, program, ipet) in kernels() {
        let cfg = config(ipet);
        let run = |width: usize| {
            let result = run_campaign(
                &Pool::new(width),
                &program,
                &task,
                &args,
                &cfg,
                RecordingDevice::new,
            );
            assert!(
                result.control_masked,
                "{app}/{task}: zero-fault control diverged at width {width}"
            );
            serde_json::to_string(&result).expect("serializes")
        };
        let baseline = run(1);
        for width in [2usize, 4] {
            assert_eq!(
                baseline,
                run(width),
                "{app}/{task}: campaign differs between pool width 1 and {width}"
            );
        }
    }
}

#[test]
fn campaign_rates_cover_every_injection_exactly_once() {
    for (app, task, args, program, ipet) in kernels() {
        let cfg = config(ipet);
        let result = run_campaign(
            minipool::global(),
            &program,
            &task,
            &args,
            &cfg,
            RecordingDevice::new,
        );
        assert_eq!(
            result.outcomes.len(),
            cfg.injections,
            "{app}/{task}: outcome arity"
        );
        assert_eq!(result.stats.total(), cfg.injections, "{app}/{task}");
        let rates_sum: f64 = result.stats.rates().iter().sum();
        assert!(
            (rates_sum - 1.0).abs() < 1e-12,
            "{app}/{task}: rates sum to {rates_sum}"
        );
        // The plan really was sized from the fault-free reference run.
        assert!(result
            .plan
            .faults
            .iter()
            .all(|f| f.at_cycle < result.reference_cycles));
    }
}

#[test]
fn empty_plan_campaign_is_a_no_op_on_a_real_kernel() {
    for (app, task, args, program, ipet) in kernels() {
        let result = run_campaign_with_plan(
            minipool::global(),
            &program,
            &task,
            &args,
            &FaultPlan::empty(),
            &config(ipet),
            RecordingDevice::new,
        );
        assert!(result.outcomes.is_empty(), "{app}/{task}");
        assert_eq!(result.stats.total(), 0, "{app}/{task}");
        assert_eq!(result.stats.rates(), [0.0; 5], "{app}/{task}");
        assert!(result.control_masked, "{app}/{task}");
    }
}

#[test]
fn campaigns_are_reproducible_from_the_seed_alone() {
    let (app, task, args, program, ipet) = kernels().remove(1);
    let cfg = config(ipet);
    let a = run_campaign(
        minipool::global(),
        &program,
        &task,
        &args,
        &cfg,
        RecordingDevice::new,
    );
    let b = run_campaign(
        minipool::global(),
        &program,
        &task,
        &args,
        &cfg,
        RecordingDevice::new,
    );
    assert_eq!(a, b, "{app}/{task}: same seed, different campaign");
    let other = run_campaign(
        minipool::global(),
        &program,
        &task,
        &args,
        &CampaignConfig {
            seed: cfg.seed + 1,
            ..cfg
        },
        RecordingDevice::new,
    );
    assert_ne!(
        a.plan, other.plan,
        "{app}/{task}: the seed must actually steer the plan"
    );
}
