//! Property-based oracle suite for the coordination-layer schedulers.
//!
//! The scheduler sits on the path every workload takes (both workflows
//! and all four apps go through `schedule_energy_aware`), yet until this
//! suite only hand-built 2–4 task sets exercised it. Here random DAG
//! task sets — random precedence edges, 2–4 cores, 1–4 options per task,
//! tight to loose deadlines, occasional per-task deadlines — drive both
//! solvers against three oracles:
//!
//! 1. **Structural**: every `Ok` schedule from either solver passes
//!    `Schedule::validate` (placement exactly once, real options with
//!    matching duration/energy, dependency order, core exclusivity,
//!    deadlines, consistent aggregates).
//! 2. **Feasibility**: on small instances the heuristic returns `Err`
//!    only when the exhaustive branch-and-bound is `Err` too — no false
//!    `Unschedulable`.
//! 3. **Energy**: the heuristic never reports less energy than the
//!    optimum; on correlated two-version instances it stays within a
//!    fixed factor of it, and is *exactly* optimal whenever the deadline
//!    is loose enough that no upgrade fires.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use teamplay_coord::{
    schedule_branch_and_bound, schedule_energy_aware, CoordTask, ExecOption, TaskSet,
};

/// Random DAG task sets: 2–4 cores, 3–8 tasks, 1–4 options per task on
/// random cores, random precedence edges, and a deadline scaled between
/// tight (0.4× the serial lower bound) and loose (2.5×). One task in
/// five also gets a per-task deadline.
fn arb_task_set() -> impl Strategy<Value = TaskSet> {
    (2usize..5, 3usize..9, any::<u64>()).prop_map(|(cores_n, tasks_n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cores: Vec<String> = (0..cores_n).map(|i| format!("c{i}")).collect();
        let mut tasks = Vec::new();
        for i in 0..tasks_n {
            let n_opts = rng.gen_range(1..5);
            let options: Vec<ExecOption> = (0..n_opts)
                .map(|o| ExecOption {
                    label: format!("o{o}"),
                    core: cores[rng.gen_range(0..cores.len())].clone(),
                    time_us: rng.gen_range(1.0..50.0),
                    energy_uj: rng.gen_range(1.0..500.0),
                    security_level: 0,
                })
                .collect();
            let mut t = CoordTask::new(format!("t{i}"), options);
            for d in 0..i {
                if rng.gen_bool(0.3) {
                    t.after.push(format!("t{d}"));
                }
            }
            if rng.gen_bool(0.2) {
                // Generous enough to usually be satisfiable, tight
                // enough to sometimes force upgrades or infeasibility.
                t.deadline_us = Some(rng.gen_range(20.0..250.0));
            }
            tasks.push(t);
        }
        let serial: f64 = tasks
            .iter()
            .map(|t| {
                t.options
                    .iter()
                    .map(|o| o.time_us)
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        let deadline = serial * rng.gen_range(0.4..2.5);
        TaskSet::new(tasks, cores, deadline).expect("generated sets are valid")
    })
}

/// Correlated two-version tasks (fast/hungry vs slow/green) on two
/// cores — the A2 ablation's instance family, exhaustively small so
/// branch-and-bound is an exact oracle.
fn arb_two_version_set() -> impl Strategy<Value = TaskSet> {
    (2usize..7, any::<u64>(), 0.9f64..2.5).prop_map(|(tasks_n, seed, slack)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cores = vec!["c0".to_string(), "c1".to_string()];
        let mut tasks = Vec::new();
        for i in 0..tasks_n {
            let fast_t = rng.gen_range(5.0..20.0);
            let fast_e = fast_t * rng.gen_range(6.0..10.0);
            let slow_t = fast_t * rng.gen_range(1.8..2.6);
            let slow_e = fast_e * rng.gen_range(0.35..0.6);
            let core = cores[i % 2].clone();
            let mut t = CoordTask::new(
                format!("t{i}"),
                vec![
                    ExecOption {
                        label: "fast".into(),
                        core: core.clone(),
                        time_us: fast_t,
                        energy_uj: fast_e,
                        security_level: 0,
                    },
                    ExecOption {
                        label: "green".into(),
                        core,
                        time_us: slow_t,
                        energy_uj: slow_e,
                        security_level: 0,
                    },
                ],
            );
            if i > 0 {
                t.after.push(format!("t{}", rng.gen_range(0..i)));
            }
            tasks.push(t);
        }
        let fast_sum: f64 = tasks.iter().map(|t| t.options[0].time_us).sum();
        let deadline = fast_sum * slack;
        TaskSet::new(tasks, cores, deadline).expect("generated sets are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Oracle 1 — every emitted schedule is structurally valid, from
    /// both solvers.
    #[test]
    fn every_ok_schedule_validates(set in arb_task_set()) {
        if let Ok(s) = schedule_energy_aware(&set) {
            prop_assert!(s.validate(&set).is_ok(), "heuristic: {:?}", s.validate(&set));
        }
        if let Ok(s) = schedule_branch_and_bound(&set) {
            prop_assert!(s.validate(&set).is_ok(), "optimal: {:?}", s.validate(&set));
        }
    }

    /// Oracle 2 — no false Unschedulable: on these small instances
    /// (option space ≤ 4⁸, well inside the exact-fallback window) the
    /// heuristic refuses exactly when the exhaustive solver proves there
    /// is no feasible assignment. The heuristic also never claims a
    /// schedule the optimum contradicts.
    #[test]
    fn feasibility_agrees_with_branch_and_bound(set in arb_task_set()) {
        let h = schedule_energy_aware(&set);
        let o = schedule_branch_and_bound(&set);
        match (&h, &o) {
            (Ok(h), Ok(o)) => prop_assert!(
                h.total_energy_uj + 1e-6 >= o.total_energy_uj,
                "heuristic {} beat the optimum {}",
                h.total_energy_uj,
                o.total_energy_uj
            ),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "feasibility disagreement: {h:?} vs {o:?}"),
        }
    }

    /// Oracle 3a — differential energy gap: the heuristic stays within a
    /// fixed factor of branch-and-bound on the two-version family.
    #[test]
    fn heuristic_energy_within_factor_of_optimal(set in arb_two_version_set()) {
        if let (Ok(h), Ok(o)) = (schedule_energy_aware(&set), schedule_branch_and_bound(&set)) {
            prop_assert!(
                h.total_energy_uj <= o.total_energy_uj * 2.0 + 1e-6,
                "heuristic {} vs optimal {} exceeds the 2x bound",
                h.total_energy_uj,
                o.total_energy_uj
            );
        }
    }

    /// Oracle 3b — when the deadline is loose enough that no upgrade
    /// fires, the heuristic is exactly optimal: every task keeps its
    /// energy-minimal option.
    #[test]
    fn loose_deadlines_cost_exactly_the_greenest_energy(set in arb_two_version_set()) {
        let mut loose = set.clone();
        loose.deadline_us = f64::INFINITY;
        let greenest: f64 = loose
            .tasks
            .iter()
            .map(|t| t.options.iter().map(|o| o.energy_uj).fold(f64::INFINITY, f64::min))
            .sum();
        let h = schedule_energy_aware(&loose).expect("infinite deadline is schedulable");
        prop_assert!(
            (h.total_energy_uj - greenest).abs() <= 1e-6,
            "{} vs greenest floor {}",
            h.total_energy_uj,
            greenest
        );
        let o = schedule_branch_and_bound(&loose).expect("infinite deadline is schedulable");
        prop_assert!((h.total_energy_uj - o.total_energy_uj).abs() <= 1e-6);
    }
}

/// A deterministic regression the random proptests are unlikely to pin
/// down: with one option per task the scheduler can only trade list
/// *orders*, and upward rank misorders this shape — the long independent
/// task (rank 10) is laid down before the b→c chain (ranks 4, 2),
/// starving core c0 past the deadline. The plain topological index order
/// fits exactly, so the witness chain (and branch-and-bound's per-leaf
/// placement) must try both orders rather than trusting ranks alone.
#[test]
fn index_order_witness_rescues_rank_misordered_single_option_sets() {
    let mk = |core: &str, t: f64| ExecOption {
        label: "only".into(),
        core: core.into(),
        time_us: t,
        energy_uj: 1.0,
        security_level: 0,
    };
    let tasks = vec![
        CoordTask::new("a", vec![mk("c0", 10.0)]),
        CoordTask::new("b", vec![mk("c0", 2.0)]),
        CoordTask::new("c", vec![mk("c1", 2.0)]).after(&["b"]),
    ];
    let set = TaskSet::new(tasks, vec!["c0".into(), "c1".into()], 12.0).expect("set");
    let s = schedule_energy_aware(&set).expect("the index order fits the 12µs deadline");
    s.validate(&set).expect("valid");
    assert!(s.makespan_us <= 12.0 + 1e-9, "{s:?}");
    let o = schedule_branch_and_bound(&set).expect("b&b must try both orders too");
    o.validate(&set).expect("valid");
}
