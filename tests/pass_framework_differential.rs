//! Differential correctness of the pass framework, per pass and per
//! optimisation level: on the shipped Mini-C application kernels, every
//! registered pass — and the `o1()`–`o3()` preset pipelines — must
//! preserve
//!
//! 1. **reference-interpreter semantics**: return values and the full
//!    port-output trace of every scalar-argument function match the
//!    unoptimised module, and
//! 2. **loop-bound flow facts**: the static WCET analysis still bounds
//!    every function it bounded before optimisation (lost bounds make
//!    the analysis fail, so analysability is the flow-fact witness).

use teamplay_compiler::{
    generate_program, CodegenOpts, CompilerConfig, PassManager, Pipeline, REGISTRY,
};
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;
use teamplay_minic::interp::RecordingPorts;
use teamplay_minic::ir::{exec_module, IrModule};
use teamplay_wcet::analyze_program;

/// The Mini-C kernels of all four applications: the camera pill
/// pipeline, the SpaceWire downlink kernels, the UAV pre-detector and
/// the parking CNN convolution layer.
fn kernels() -> Vec<(&'static str, &'static str)> {
    vec![
        ("camera_pill", teamplay_apps::camera_pill::SOURCE),
        ("spacewire", teamplay_apps::spacewire::SOURCE),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE),
        ("parking_cnn", teamplay_apps::parking::CONV_KERNEL_SOURCE),
    ]
}

/// Every single-pass pipeline from the registry, the level presets, and
/// every application's tuned pipeline.
fn pipelines_under_test() -> Vec<(String, Pipeline)> {
    let mut out: Vec<(String, Pipeline)> = REGISTRY
        .iter()
        .map(|d| {
            let p: Pipeline = d.name.parse().expect("registry names parse");
            (format!("pass:{}", d.name), p)
        })
        .collect();
    out.push(("preset:o1".into(), Pipeline::o1()));
    out.push(("preset:o2".into(), Pipeline::o2()));
    out.push(("preset:o3".into(), Pipeline::o3()));
    for (app, pipeline) in teamplay_apps::recommended_pipelines() {
        out.push((
            format!("app:{app}"),
            pipeline.parse().expect("tuned pipelines parse"),
        ));
    }
    out
}

/// Deterministic argument pool; functions draw as many as they need.
const ARG_POOL: [i32; 8] = [0, 1, -1, 7, -13, 255, 4096, -100_000];

fn arg_sets(arity: usize) -> Vec<Vec<i32>> {
    (0..3)
        .map(|round| {
            (0..arity)
                .map(|i| ARG_POOL[(i + round * 3) % ARG_POOL.len()])
                .collect()
        })
        .collect()
}

/// Run a function against a fresh port device with a deterministic
/// input stream, returning the value and the full output trace.
fn run(module: &IrModule, func: &str, args: &[i32]) -> (Option<i32>, Vec<(u8, i32)>) {
    let mut ports = RecordingPorts::new();
    for port in 0..4u8 {
        ports.queue(
            port,
            (0..512).map(|i| (i * 37 + i32::from(port) * 11 + 5) & 0xFFFF),
        );
    }
    let value = exec_module(module, func, args, &mut ports, 200_000_000)
        .unwrap_or_else(|e| panic!("{func} must run: {e:?}"));
    (value, ports.outputs)
}

#[test]
fn every_registered_pass_and_preset_preserves_semantics_and_flow_facts() {
    let cm = CycleModel::pg32();
    for (kernel, src) in kernels() {
        let reference = compile_to_ir(src).expect("kernel compiles");
        let ref_program =
            generate_program(&reference, CodegenOpts::default()).expect("reference codegen");
        let ref_wcet =
            analyze_program(&ref_program, &cm).expect("reference kernels are analysable");

        // The scalar-argument functions are the differential drivers.
        let scalar_functions: Vec<(String, usize)> = reference
            .functions
            .iter()
            .filter(|f| f.params.iter().all(|p| !p.is_array))
            .map(|f| (f.name.clone(), f.params.len()))
            .collect();
        assert!(
            !scalar_functions.is_empty(),
            "{kernel}: no scalar entry points"
        );

        for (label, pipeline) in pipelines_under_test() {
            let mut optimised = reference.clone();
            let mut pm = PassManager::new(pipeline).expect("pipeline resolves");
            pm.run(&mut optimised);
            optimised
                .validate()
                .unwrap_or_else(|e| panic!("{kernel}/{label}: invalid IR after pipeline: {e}"));

            // 1. Interpreter semantics: values and port traces agree.
            for (func, arity) in &scalar_functions {
                for args in arg_sets(*arity) {
                    let (expect_val, expect_out) = run(&reference, func, &args);
                    let (got_val, got_out) = run(&optimised, func, &args);
                    assert_eq!(
                        got_val, expect_val,
                        "{kernel}/{label}: `{func}({args:?})` diverged"
                    );
                    assert_eq!(
                        got_out, expect_out,
                        "{kernel}/{label}: `{func}({args:?})` port trace diverged"
                    );
                }
            }

            // 2. Flow facts: everything the reference analysis bounded
            // stays bounded (and the analysis itself still succeeds).
            let program = generate_program(&optimised, CodegenOpts::default())
                .unwrap_or_else(|e| panic!("{kernel}/{label}: codegen failed: {e}"));
            let wcet = analyze_program(&program, &cm)
                .unwrap_or_else(|e| panic!("{kernel}/{label}: flow facts lost: {e}"));
            for (func, _) in &scalar_functions {
                if ref_wcet.wcet_cycles(func).is_some() {
                    assert!(
                        wcet.wcet_cycles(func).is_some(),
                        "{kernel}/{label}: `{func}` lost its WCET bound"
                    );
                }
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 6, ..proptest::ProptestConfig::default() })]

    /// Phase-ordering fuzz: ANY genome — any pass subset in any order,
    /// any duplicated cleanup round, any parameters — must decode to a
    /// pipeline that preserves interpreter semantics, port traces and
    /// WCET flow facts on all four application kernels.
    #[test]
    fn random_permutation_pipelines_preserve_semantics_and_flow_facts(
        genome in proptest::collection::vec(0.0f64..1.0, CompilerConfig::GENOME_DIMS),
    ) {
        let pipeline = CompilerConfig::from_genome(&genome).pipeline;
        let label = format!("genome:{pipeline}");
        let cm = CycleModel::pg32();
        for (kernel, src) in kernels() {
            let reference = compile_to_ir(src).expect("kernel compiles");
            let ref_program =
                generate_program(&reference, CodegenOpts::default()).expect("reference codegen");
            let ref_wcet =
                analyze_program(&ref_program, &cm).expect("reference kernels are analysable");
            let scalar_functions: Vec<(String, usize)> = reference
                .functions
                .iter()
                .filter(|f| f.params.iter().all(|p| !p.is_array))
                .map(|f| (f.name.clone(), f.params.len()))
                .collect();

            let mut optimised = reference.clone();
            let mut pm = PassManager::new(pipeline.clone()).expect("genome pipelines resolve");
            pm.run(&mut optimised);
            optimised
                .validate()
                .unwrap_or_else(|e| panic!("{kernel}/{label}: invalid IR after pipeline: {e}"));

            for (func, arity) in &scalar_functions {
                for args in arg_sets(*arity).into_iter().take(1) {
                    let (expect_val, expect_out) = run(&reference, func, &args);
                    let (got_val, got_out) = run(&optimised, func, &args);
                    proptest::prop_assert_eq!(
                        got_val, expect_val,
                        "{}/{}: `{}({:?})` diverged", kernel, label, func, args
                    );
                    proptest::prop_assert_eq!(
                        got_out, expect_out,
                        "{}/{}: `{}({:?})` port trace diverged", kernel, label, func, args
                    );
                }
            }

            let program = generate_program(&optimised, CodegenOpts::default())
                .unwrap_or_else(|e| panic!("{kernel}/{label}: codegen failed: {e}"));
            let wcet = analyze_program(&program, &cm)
                .unwrap_or_else(|e| panic!("{kernel}/{label}: flow facts lost: {e}"));
            for (func, _) in &scalar_functions {
                if ref_wcet.wcet_cycles(func).is_some() {
                    proptest::prop_assert!(
                        wcet.wcet_cycles(func).is_some(),
                        "{}/{}: `{}` lost its WCET bound", kernel, label, func
                    );
                }
            }
        }
    }

    /// Decoding is a pure function and its phenotype survives the full
    /// serialisation cycle: decode → render → parse and decode → JSON →
    /// parse both land on the identical configuration.
    #[test]
    fn genome_decode_serialize_parse_round_trips(
        genome in proptest::collection::vec(0.0f64..1.0, CompilerConfig::GENOME_DIMS),
    ) {
        let config = CompilerConfig::from_genome(&genome);
        let again = CompilerConfig::from_genome(&genome);
        proptest::prop_assert_eq!(&config, &again, "decoding must be deterministic");

        let rendered = config.pipeline.to_string();
        let reparsed: Pipeline = rendered.parse().expect("rendered pipelines parse");
        proptest::prop_assert_eq!(&reparsed, &config.pipeline, "string form: {}", rendered);

        let json = serde_json::to_string(&config).expect("serializes");
        let back: CompilerConfig = serde_json::from_str(&json).expect("deserializes");
        proptest::prop_assert_eq!(&back, &config, "JSON form: {}", json);
    }
}

#[test]
fn optimisation_levels_do_not_regress_wcet() {
    // Sanity on top of correctness: each preset's WCET for the camera
    // pill tasks is no worse than the unoptimised build — optimisation
    // levels must never pessimise the bound.
    let cm = CycleModel::pg32();
    let reference = compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("kernel compiles");
    let base = analyze_program(
        &generate_program(&reference, CodegenOpts::default()).expect("codegen"),
        &cm,
    )
    .expect("analysable");
    for (label, mut pm) in [
        ("o1", PassManager::o1()),
        ("o2", PassManager::o2()),
        ("o3", PassManager::o3()),
    ] {
        let mut optimised = reference.clone();
        pm.run(&mut optimised);
        let wcet = analyze_program(
            &generate_program(&optimised, CodegenOpts::default()).expect("codegen"),
            &cm,
        )
        .expect("analysable");
        for (task, _) in teamplay_apps::camera_pill::TASKS {
            let b = base.wcet_cycles(task).expect("bounded");
            let o = wcet.wcet_cycles(task).expect("bounded");
            assert!(o <= b, "{label}: task `{task}` WCET regressed: {o} > {b}");
        }
    }
}
