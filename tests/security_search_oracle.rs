//! End-to-end oracles for the security-aware Pareto search on the
//! camera-pill crypto task.
//!
//! The secure search ([`pareto_search_secure_on`]) promises four things
//! this suite pins at the application level:
//!
//! 1. **determinism** — fronts are byte-identical at any pool width;
//! 2. **conservatism** — a rung-0 variant is exactly the plain
//!    evaluation of its 15-gene prefix (the rung gene is invisible to
//!    the config decoder and to the analyses);
//! 3. **effectiveness** — the ladderised rung strictly reduces the
//!    measured leakage of `encrypt`'s key-whitening diamond;
//! 4. **front shape** — returned variants are mutually non-dominating
//!    in all four objectives, with finite leakage scores.
//!
//! A fifth group checks the coordination side of the tentpole: HEFT
//! refuses task sets whose options cannot reach the declared
//! `security_floor`, and filters below-floor options when they can.

use minipool::Pool;
use teamplay_compiler::{
    evaluate_module, ladderised_ir, pareto_search_secure_on, CompilerConfig, FpaConfig, LeakageRig,
    ParetoFront, SECURE_GENOME_DIMS,
};
use teamplay_coord::task::TaskSetError;
use teamplay_coord::{schedule_energy_aware, CoordTask, ExecOption, TaskSet};
use teamplay_energy::IsaEnergyModel;
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;
use teamplay_minic::ir::IrModule;
use teamplay_security::SecretSpec;

/// The camera-pill rig: `encrypt(key)`'s only argument is the secret,
/// and the two classes straddle the key-whitening diamond (negative
/// keys take the whitening arm).
fn rig() -> LeakageRig {
    LeakageRig {
        arg_count: 1,
        secret: SecretSpec {
            arg_index: 0,
            class0: -123,
            class1: 77,
        },
        traces_per_class: 8,
        public_lo: 0,
        public_hi: 256,
        seed: 11,
    }
}

fn camera_irs() -> (IrModule, IrModule) {
    let ir = compile_to_ir(teamplay_apps::camera_pill::SOURCE).expect("camera pill compiles");
    let (hard, reports) = ladderised_ir(&ir);
    assert!(
        reports["encrypt"].fully_hardened(),
        "the whitening diamond must ladderise completely: {reports:?}"
    );
    (ir, hard)
}

fn search(pool_width: usize, seed: u64) -> ParetoFront {
    let (ir, hard) = camera_irs();
    pareto_search_secure_on(
        &Pool::new(pool_width),
        &ir,
        &hard,
        "encrypt",
        &CycleModel::pg32(),
        &IsaEnergyModel::pg32_datasheet(),
        FpaConfig::tiny(),
        seed,
        &rig(),
    )
}

#[test]
fn secure_camera_front_is_byte_identical_across_pool_widths() {
    let baseline = search(1, 0xA11CE);
    let bytes = serde_json::to_string(&baseline.variants).expect("serializes");
    for width in [2usize, 4] {
        let front = search(width, 0xA11CE);
        assert_eq!(
            bytes,
            serde_json::to_string(&front.variants).expect("serializes"),
            "pool width {width} changed the front"
        );
        assert_eq!(baseline.stats, front.stats, "pool width {width} stats");
    }
}

#[test]
fn ladderised_variant_strictly_reduces_encrypt_leakage() {
    let front = search(2, 0xA11CE);
    assert!(!front.variants.is_empty());
    let best = |rung: u32| {
        front
            .variants
            .iter()
            .filter_map(|v| v.security.filter(|s| s.rung == rung))
            .map(|s| s.leakage)
            .fold(f64::INFINITY, f64::min)
    };
    let (plain, hard) = (best(0), best(1));
    assert!(
        hard.is_finite(),
        "the front must keep at least one ladderised variant"
    );
    assert!(
        hard < plain,
        "rung 1 must strictly cut the diamond's leakage: rung1 {hard} vs rung0 {plain}"
    );
}

#[test]
fn rung_zero_variants_bit_match_the_plain_evaluation() {
    let front = search(2, 0xA11CE);
    let (ir, _) = camera_irs();
    let cm = CycleModel::pg32();
    let em = IsaEnergyModel::pg32_datasheet();
    let mut checked = 0;
    for v in &front.variants {
        if v.security.map(|s| s.rung) != Some(0) {
            continue;
        }
        let (_, metrics) = evaluate_module(&ir, &v.config, &cm, &em).expect("plain evaluation");
        let m = metrics.of("encrypt").expect("encrypt analysed");
        assert_eq!(v.metrics.wcet_cycles, m.wcet_cycles);
        assert_eq!(v.metrics.wcec_pj.to_bits(), m.wcec_pj.to_bits());
        assert_eq!(v.metrics.code_halfwords, m.code_halfwords);
        checked += 1;
    }
    assert!(checked > 0, "the tiny search should keep a rung-0 variant");
}

#[test]
fn secure_front_is_mutually_non_dominating_in_four_objectives() {
    let front = search(2, 0xA11CE);
    let objs: Vec<[f64; 4]> = front
        .variants
        .iter()
        .map(|v| {
            let s = v.security.expect("secure variants carry security");
            assert!(s.leakage.is_finite(), "leakage must be finite");
            [
                v.metrics.wcet_cycles as f64,
                v.metrics.wcec_pj,
                v.metrics.code_halfwords as f64,
                s.leakage,
            ]
        })
        .collect();
    for (i, a) in objs.iter().enumerate() {
        for (j, b) in objs.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates =
                a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y);
            assert!(!dominates, "variant {i} {a:?} dominates variant {j} {b:?}");
        }
    }
}

fn leveled(label: &str, time_us: f64, level: u32) -> ExecOption {
    ExecOption {
        label: label.into(),
        core: "cpu0".into(),
        time_us,
        energy_uj: time_us * 2.0,
        security_level: level,
    }
}

#[test]
fn heft_rejects_task_sets_that_cannot_reach_the_floor() {
    let task = CoordTask::new(
        "encrypt",
        vec![leveled("v0", 10.0, 0), leveled("v1", 12.0, 0)],
    )
    .with_security_floor(1);
    match TaskSet::new(vec![task], vec!["cpu0".into()], 1_000.0) {
        Err(TaskSetError::BelowSecurityFloor {
            task,
            floor,
            best_level,
        }) => {
            assert_eq!(task, "encrypt");
            assert_eq!(floor, 1);
            assert_eq!(best_level, 0);
        }
        other => panic!("expected BelowSecurityFloor, got {other:?}"),
    }
}

#[test]
fn heft_filters_below_floor_options_before_placement() {
    // The unhardened option is faster and greener, but the floor must
    // keep it out of the schedule entirely.
    let task = CoordTask::new(
        "encrypt",
        vec![leveled("plain", 5.0, 0), leveled("hardened", 20.0, 1)],
    )
    .with_security_floor(1);
    let set = TaskSet::new(vec![task], vec!["cpu0".into()], 1_000.0).expect("set builds");
    let schedule = schedule_energy_aware(&set).expect("schedulable");
    schedule.validate(&set).expect("valid");
    assert_eq!(schedule.entries.len(), 1);
    assert_eq!(
        schedule.entries[0].option, "hardened",
        "below-floor options must never be placed: {schedule:?}"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig {
        cases: 32, ..proptest::ProptestConfig::default()
    })]

    /// The rung gene never perturbs the configuration decoder: any
    /// 18-gene genome decodes to the same [`CompilerConfig`] as its
    /// 17-gene prefix, and the rung is a pure threshold on gene 17.
    #[test]
    fn rung_gene_is_invisible_to_the_config_decoder(
        genome in proptest::collection::vec(0.0f64..1.0, SECURE_GENOME_DIMS),
    ) {
        let rung = teamplay_compiler::rung_of_genome(&genome);
        proptest::prop_assert_eq!(rung, u32::from(genome[CompilerConfig::GENOME_DIMS] >= 0.5));
        let prefix = &genome[..CompilerConfig::GENOME_DIMS];
        proptest::prop_assert_eq!(
            CompilerConfig::from_genome(&genome),
            CompilerConfig::from_genome(prefix)
        );
        // And the explicit encoder round-trips the rung.
        let re = teamplay_compiler::genome_with_rung(prefix, rung);
        proptest::prop_assert_eq!(teamplay_compiler::rung_of_genome(&re), rung);
        proptest::prop_assert_eq!(
            CompilerConfig::from_genome(&re),
            CompilerConfig::from_genome(prefix)
        );
    }
}
