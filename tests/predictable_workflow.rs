//! Integration: the full Fig. 1 workflow across every crate, on both
//! shipped predictable use cases.

use teamplay::predictable::{PredictableWorkflow, WorkflowConfig};
use teamplay_compiler::FpaConfig;
use teamplay_contracts::verify_certificate;
use teamplay_sim::{Machine, RecordingDevice};

fn quick(config: WorkflowConfig) -> PredictableWorkflow {
    let mut config = config;
    config.fpa = FpaConfig::tiny();
    config.leakage_traces = 24;
    PredictableWorkflow::new(config)
}

#[test]
fn camera_pill_certifies_and_the_binary_behaves() {
    let outcome = quick(WorkflowConfig::pg32())
        .run(teamplay_apps::camera_pill::SOURCE)
        .expect("workflow");
    verify_certificate(&outcome.certificate, &outcome.evidence).expect("verifies");

    // The certified binary still computes the right pipeline.
    let mut machine = Machine::new(outcome.program.clone()).expect("loads");
    let mut dev = teamplay_apps::camera_pill::frame_device(3);
    for (task, _) in teamplay_apps::camera_pill::TASKS {
        let args: &[i32] = if task == "encrypt" { &[5] } else { &[] };
        machine.call(task, args, &mut dev).expect("task runs");
    }
    assert_eq!(
        dev.outputs.len(),
        teamplay_apps::camera_pill::PACKED_WORDS + 1,
        "cipher payload + checksum"
    );
}

#[test]
fn spacewire_certifies_on_the_leon3_target() {
    let outcome = quick(WorkflowConfig::leon3())
        .run(teamplay_apps::spacewire::SOURCE)
        .expect("workflow");
    verify_certificate(&outcome.certificate, &outcome.evidence).expect("verifies");
    assert!(outcome.schedule.makespan_us <= teamplay_apps::spacewire::FRAME_DEADLINE_US);

    // Glue code covers the whole DAG.
    for t in &outcome.tasks {
        assert!(outcome.glue.contains(&format!("task_{}", t.name)));
    }
}

#[test]
fn certificate_transports_as_json_and_rejects_tampering() {
    let outcome = quick(WorkflowConfig::pg32())
        .run(teamplay_apps::camera_pill::SOURCE)
        .expect("workflow");
    let json = outcome.certificate.to_json();
    let parsed = teamplay_contracts::Certificate::from_json(&json).expect("parses");
    verify_certificate(&parsed, &outcome.evidence).expect("round-tripped certificate verifies");

    // Any figure change must be caught by the independent checker.
    let tampered_json = json.replacen("\"analysed_us\":", "\"analysed_us\": 0.5, \"x\":", 1);
    if let Ok(tampered) = teamplay_contracts::Certificate::from_json(&tampered_json) {
        assert!(
            verify_certificate(&tampered, &outcome.evidence).is_err(),
            "tampered certificate must not verify"
        );
    }
}

#[test]
fn workflow_binary_runs_with_machine_io() {
    // Port-level check on the quickstart-style app: the toolchain output
    // is a real program, not just analysis results.
    let src = r#"
        /*@ task echo period(10ms) deadline(10ms) wcet_budget(1ms) energy_budget(300uJ) @*/
        void echo() {
            int v = __in(3);
            __out(4, v * 2 + 1);
            return;
        }
    "#;
    let outcome = quick(WorkflowConfig::pg32()).run(src).expect("workflow");
    let mut machine = Machine::new(outcome.program).expect("loads");
    let mut dev = RecordingDevice::new();
    dev.queue(3, [20]);
    machine.call("echo", &[], &mut dev).expect("runs");
    assert_eq!(dev.outputs, vec![(4, 41)]);
}
