//! Workspace umbrella crate: re-exports the TeamPlay toolchain crates for
//! the repository-level examples and integration tests.
//!
//! Downstream users should depend on the individual crates (`teamplay`,
//! `teamplay-coord`, …); this crate only exists so that the repository's
//! `examples/` and `tests/` directories live at the workspace root, per the
//! project layout.

pub use teamplay::*;
