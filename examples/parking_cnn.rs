//! The deep-learning deployment use case (paper Section IV-D): run the
//! free-parking-spot detector on synthetic lots, then show the per-layer
//! compiler variants the multi-criteria compiler offers for the
//! Cortex-M0-class leg.
//!
//! ```sh
//! cargo run --example parking_cnn
//! ```

use teamplay_apps::parking::{
    classification_accuracy, synthetic_lot, ParkingNet, CONV_KERNEL_SOURCE, SPOTS,
};
use teamplay_compiler::{pareto_front_for, FpaConfig};
use teamplay_energy::IsaEnergyModel;
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("free-parking-spot CNN — fixed-point inference + compiler variant study\n");

    let net = ParkingNet::new();
    println!("inference on five synthetic lots:");
    for seed in 0..5u64 {
        let (img, truth) = synthetic_lot(seed);
        let pred = net.infer(&img);
        let render = |flags: &[bool]| -> String {
            flags.iter().map(|o| if *o { 'X' } else { '.' }).collect()
        };
        println!(
            "  lot {seed}: truth [{}]  predicted [{}]  free: {}/{}",
            render(&truth),
            render(&pred),
            net.free_spots(&img),
            SPOTS
        );
    }
    let acc = classification_accuracy(&net, 200, 99);
    println!(
        "\nclassification accuracy over 200 lots: {:.1} %",
        acc * 100.0
    );

    // Cortex-M0 leg: per-layer Pareto variants.
    let ir = compile_to_ir(CONV_KERNEL_SOURCE)?;
    let variants = pareto_front_for(
        &ir,
        "conv_layer",
        &CycleModel::pg32(),
        &IsaEnergyModel::pg32_datasheet(),
        FpaConfig::standard(),
        7,
    );
    println!("\nconv-layer compiler variants (the designer's menu, Section IV-D):");
    println!(
        "  {:<4} {:>11} {:>12} {:>10}",
        "id", "WCET (µs)", "energy (µJ)", "halfwords"
    );
    for (i, v) in variants.iter().enumerate() {
        println!(
            "  v{:<3} {:>11.1} {:>12.2} {:>10}",
            i,
            v.metrics.wcet_cycles as f64 / 48.0,
            v.metrics.wcec_pj / 1e6,
            v.metrics.code_halfwords
        );
    }
    println!(
        "\n{} distinct trade-off points — the paper's \"great guide for the application designer\"",
        variants.len()
    );
    Ok(())
}
