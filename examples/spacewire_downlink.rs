//! The space-communication use case (paper Section IV-B): DVFS sweet-spot
//! scheduling of the SpaceWire downlink pipeline on a GR712RC-class
//! platform — the experiment behind the paper's 52 % energy headline.
//!
//! ```sh
//! cargo run --example spacewire_downlink
//! ```

use teamplay_apps::spacewire;
use teamplay_compiler::{compile_module, pareto_front_for, CompilerConfig, FpaConfig};
use teamplay_coord::{
    dvfs_options, gr712_levels, schedule_energy_aware, CoordTask, ExecOption, TaskSet,
};
use teamplay_csl::extract_model;
use teamplay_energy::{analyze_program_energy, IsaEnergyModel};
use teamplay_isa::CycleModel;
use teamplay_minic::{compile_to_ir, parse_and_check};
use teamplay_sim::{GroundTruthEnergy, Machine};
use teamplay_wcet::analyze_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("SpaceWire downlink on GR712RC-class LEON3 — 100 ms frame deadline\n");

    let cm = CycleModel::leon3();
    let em = IsaEnergyModel::leon3_datasheet();
    let ir = compile_to_ir(spacewire::SOURCE)?;
    let model = extract_model(&parse_and_check(spacewire::SOURCE)?)?;
    let levels = gr712_levels();

    // First, demonstrate the packet actually works on the simulator.
    let program = compile_module(&ir, &CompilerConfig::balanced())?;
    let mut machine = Machine::with_models(program, cm.clone(), GroundTruthEnergy::leon3())
        .map_err(std::io::Error::other)?;
    let mut dev = spacewire::frame_device(7);
    for task in spacewire::TASKS {
        let args: &[i32] = if task == "auth" {
            &[spacewire::DEMO_TOKEN]
        } else {
            &[]
        };
        machine
            .call(task, args, &mut dev)
            .map_err(std::io::Error::other)?;
    }
    println!(
        "downlink packet: dest {:#04x}, protocol {:#04x}, {} payload words, crc {:#06x}, auth {:#010x}\n",
        dev.outputs[0].1,
        dev.outputs[1].1,
        dev.outputs[2].1,
        dev.outputs[3 + spacewire::FRAME_WORDS].1,
        dev.outputs.last().expect("auth tag").1
    );

    // Baseline: traditional compiler at the nominal frequency.
    let baseline = compile_module(&ir, &CompilerConfig::traditional())?;
    let wcet = analyze_program(&baseline, &cm)?;
    let wcec = analyze_program_energy(&baseline, &em, &cm)?;
    let nominal = *levels.last().expect("levels");
    let (mut base_t, mut base_e) = (0.0f64, 0.0f64);
    for task in spacewire::TASKS {
        let o = dvfs_options(
            "base",
            "cpu0",
            wcet.wcet_cycles(task).expect("bounded"),
            wcec.wcec_uj(task).expect("bounded"),
            &[nominal],
        );
        base_t += o[0].time_us;
        base_e += o[0].energy_uj;
    }

    // TeamPlay: Pareto variants × DVFS levels under the frame deadline.
    let mut coord_tasks = Vec::new();
    for spec in &model.tasks {
        let variants = pareto_front_for(&ir, &spec.function, &cm, &em, FpaConfig::standard(), 1);
        let mut options: Vec<ExecOption> = Vec::new();
        for (vi, v) in variants.iter().enumerate() {
            options.extend(dvfs_options(
                &format!("v{vi}"),
                "cpu0",
                v.metrics.wcet_cycles,
                v.metrics.wcec_pj / 1e6,
                &levels,
            ));
        }
        let mut ct = CoordTask::new(spec.name.clone(), options);
        ct.after = spec.after.clone();
        ct.deadline_us = spec.deadline.map(|d| d.as_us());
        coord_tasks.push(ct);
    }
    let set = TaskSet::new(
        coord_tasks,
        vec!["cpu0".into()],
        spacewire::FRAME_DEADLINE_US,
    )?;
    let schedule = schedule_energy_aware(&set)?;
    schedule.validate(&set).map_err(std::io::Error::other)?;

    println!("energy-aware schedule (variant @ frequency per task):");
    for e in &schedule.entries {
        println!(
            "  {:<10} {:<14} {:>9.0} → {:>9.0} µs   {:>8.1} µJ",
            e.task, e.option, e.start_us, e.finish_us, e.energy_uj
        );
    }
    println!("\n| approach | frame time (µs) | frame energy (µJ) |");
    println!("|---|---|---|");
    println!("| traditional @ 100 MHz | {base_t:.0} | {base_e:.1} |");
    println!(
        "| TeamPlay | {:.0} | {:.1} |",
        schedule.makespan_us, schedule.total_energy_uj
    );
    println!(
        "\nenergy improvement: {:.1} % while meeting the {} ms deadline (paper: 52 %)",
        (base_e - schedule.total_energy_uj) / base_e * 100.0,
        spacewire::FRAME_DEADLINE_US / 1e3
    );
    Ok(())
}
