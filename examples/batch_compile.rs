//! Batched compilation quickstart: `compile_many` + a persistent store.
//!
//! Submits a fleet of module+contract jobs (with duplicates, as a fleet
//! of clients would) to the batched compile service twice over the same
//! content-addressed on-disk store:
//!
//! 1. **cold** — the store starts empty; every distinct configuration
//!    of every unique job is compiled and spilled to disk;
//! 2. **warm** — a second batch (fresh caches, as a new process would
//!    build) answers every evaluation from disk without compiling.
//!
//! CI runs this example as the disk-cache exerciser: it asserts the
//! warm batch performed zero compiles, produced byte-identical fronts,
//! and was at least as fast as the cold batch.
//!
//! ```text
//! cargo run --release --example batch_compile
//! ```

use std::time::Instant;
use teamplay_compiler::{compile_many, CompileJob, DiskStore, FpaConfig};
use teamplay_isa::CycleModel;
use teamplay_minic::compile_to_ir;

fn main() {
    let cm = CycleModel::pg32();
    let em = teamplay_energy::IsaEnergyModel::pg32_datasheet();
    let pool = minipool::global();

    // Four distinct modules, each submitted twice under different ids —
    // the batch front-end dedups the copies before scheduling.
    let apps: Vec<(&str, &str, &str)> = vec![
        (
            "camera_pill",
            teamplay_apps::camera_pill::SOURCE,
            "compress",
        ),
        ("spacewire", teamplay_apps::spacewire::SOURCE, "crc_frame"),
        ("uav", teamplay_apps::uav::DETECT_KERNEL_SOURCE, "predetect"),
        (
            "parking",
            teamplay_apps::parking::CONV_KERNEL_SOURCE,
            "conv_layer",
        ),
    ];
    let jobs: Vec<CompileJob> = apps
        .iter()
        .flat_map(|(app, src, task)| {
            (0..2).map(move |copy| CompileJob {
                id: format!("{app}#{copy}"),
                ir: compile_to_ir(src).expect("front-end"),
                tasks: vec![task.to_string()],
                fpa: FpaConfig::tiny(),
                seed: 0xBA7C4,
            })
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("teamplay-batch-compile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let store = DiskStore::open(&dir).expect("store opens");
    let cold_start = Instant::now();
    let (cold_results, cold) = compile_many(pool, &jobs, &cm, &em, Some(&store));
    let cold_time = cold_start.elapsed();

    // Fresh store handle + caches: what a brand-new process would build.
    let store = DiskStore::open(&dir).expect("store reopens");
    let warm_start = Instant::now();
    let (warm_results, warm) = compile_many(pool, &jobs, &cm, &em, Some(&store));
    let warm_time = warm_start.elapsed();

    println!(
        "batch_compile: {} jobs ({} unique, {:.0}% dedup) on {} threads",
        cold.jobs,
        cold.unique_jobs,
        cold.dedup_rate * 100.0,
        pool.threads(),
    );
    println!(
        "  cold: {:>8.1?}  ({} compiles spilled to {})",
        cold_time,
        cold.search.disk_misses,
        dir.display(),
    );
    println!(
        "  warm: {:>8.1?}  ({} disk hits, {} compiles, {:.1}x)",
        warm_time,
        warm.search.disk_hits,
        warm.search.disk_misses,
        cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9),
    );
    for (c, w) in cold_results.iter().zip(&warm_results) {
        let (task, front) = &c.fronts[0];
        println!(
            "  {:<14} {task:<12} {} Pareto variants, best WCET {} cycles",
            c.id,
            front.variants.len(),
            front
                .variants
                .iter()
                .map(|v| v.metrics.wcet_cycles)
                .min()
                .unwrap_or(0),
        );
        assert_eq!(
            serde_json::to_string(&front.variants).expect("serializes"),
            serde_json::to_string(&w.fronts[0].1.variants).expect("serializes"),
            "warm front diverged for {}",
            c.id
        );
    }

    // The CI contract: warm answered everything from disk, compiled
    // nothing, and was at least as fast as the cold batch.
    assert_eq!(warm.search.disk_misses, 0, "warm batch must not compile");
    assert_eq!(warm.search.disk_hits, warm.search.cache_misses);
    assert!(
        warm_time <= cold_time,
        "warm batch ({warm_time:?}) slower than cold ({cold_time:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
