//! The camera-pill use case (paper Section IV-A) end to end: certify the
//! frame pipeline, then run a frame on the cycle simulator and compare
//! against the traditional toolchain.
//!
//! ```sh
//! cargo run --example camera_pill
//! ```

use teamplay::predictable::{PredictableWorkflow, WorkflowConfig};
use teamplay_apps::camera_pill;
use teamplay_compiler::{compile_module, CompilerConfig, FpaConfig};
use teamplay_minic::compile_to_ir;
use teamplay_sim::Machine;

fn frame_cost(machine: &mut Machine, seed: u32) -> (u64, f64) {
    machine.reset_data();
    let mut dev = camera_pill::frame_device(seed);
    let (mut cycles, mut energy) = (0u64, 0.0f64);
    for (task, _) in camera_pill::TASKS {
        let args: &[i32] = if task == "encrypt" {
            &[0x13579BDF]
        } else {
            &[]
        };
        let r = machine.call(task, args, &mut dev).expect("task runs");
        cycles += r.cycles;
        energy += r.energy_pj;
    }
    (cycles, energy)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "camera pill — capture → compress → encrypt → transmit @ {} MHz\n",
        camera_pill::CLOCK_MHZ
    );

    // Traditional toolchain baseline.
    let ir = compile_to_ir(camera_pill::SOURCE)?;
    let baseline = compile_module(&ir, &CompilerConfig::traditional())?;
    let mut base_machine = Machine::new(baseline).map_err(std::io::Error::other)?;
    let (base_cycles, base_energy) = frame_cost(&mut base_machine, 42);

    // Full TeamPlay workflow.
    let mut config = WorkflowConfig::pg32();
    config.fpa = FpaConfig::standard();
    config.leakage_traces = 32;
    let outcome = PredictableWorkflow::new(config).run(camera_pill::SOURCE)?;
    let mut machine = Machine::new(outcome.program.clone()).map_err(std::io::Error::other)?;
    let (tp_cycles, tp_energy) = frame_cost(&mut machine, 42);

    println!("per-task contracts and analysis results:");
    for t in &outcome.tasks {
        let sec = match (&t.ladder, &t.leakage) {
            (Some(l), Some(rep)) => format!(
                "hardened ({} diamonds), leaks: {}",
                l.converted,
                rep.leaks()
            ),
            _ => "-".to_string(),
        };
        println!(
            "  {:<9} wcet {:>9.1} µs  energy {:>8.2} µJ  security: {sec}",
            t.name, t.wcet_us, t.wcec_uj
        );
    }

    println!("\nframe totals (measured on the cycle simulator):");
    println!(
        "  traditional: {:>9} cycles  {:>9.1} µJ",
        base_cycles,
        base_energy / 1e6
    );
    println!(
        "  TeamPlay:    {:>9} cycles  {:>9.1} µJ",
        tp_cycles,
        tp_energy / 1e6
    );
    println!(
        "  improvement: {:>8.1} %        {:>8.1} %   (paper: 18 %, 19 %)",
        (base_cycles - tp_cycles) as f64 / base_cycles as f64 * 100.0,
        (base_energy - tp_energy) / base_energy * 100.0
    );

    println!(
        "\ncertificate with {} obligations — all budgets proven",
        outcome.certificate.obligation_count()
    );
    Ok(())
}
