//! Side-channel audit: quantify the leakage of a secret-guarded kernel
//! with the Indiscernibility metrics (paper ref \[10\]), harden it by
//! ladderisation (refs \[11\]\[12\]), and show the channel closing — the
//! paper's synthetic Cortex-M0 security validation.
//!
//! ```sh
//! cargo run --example sidechannel_audit
//! ```

use std::collections::HashSet;
use teamplay_compiler::{compile_module, CompilerConfig};
use teamplay_minic::compile_to_ir;
use teamplay_security::{assess_leakage, ladderise, SecretSpec};

const SOURCE: &str = r#"
/*@ secret(exp) @*/
int modexp(int base, int exp, int m) {
    int result = 1;
    if (m == 0) { m = 1; }
    base = base % m;
    /*@ loop bound(16) @*/
    for (int i = 0; i < 16; i = i + 1) {
        if ((exp & 1) != 0) { result = (result * base) % m; }
        exp = exp >> 1;
        base = (base * base) % m;
    }
    return result;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("side-channel audit of square-and-multiply modexp\n");
    let spec = SecretSpec {
        arg_index: 1,
        class0: 0x0001,
        class1: 0x7FFF,
    };

    // Plain build.
    let ir = compile_to_ir(SOURCE)?;
    let plain = compile_module(&ir, &CompilerConfig::traditional())?;
    let before = assess_leakage(&plain, "modexp", 3, spec, 64, 1..65536, 2024)
        .map_err(std::io::Error::other)?;

    // Hardened build (the SecurityOptimiser pass).
    let mut ir2 = compile_to_ir(SOURCE)?;
    let secrets: HashSet<String> = ["exp".to_string()].into_iter().collect();
    let f = ir2.function_mut("modexp").expect("modexp exists");
    let report = ladderise(f, &secrets);
    let hard = compile_module(&ir2, &CompilerConfig::traditional())?;
    let after = assess_leakage(&hard, "modexp", 3, spec, 64, 1..65536, 2024)
        .map_err(std::io::Error::other)?;

    println!(
        "ladderisation: {} secret-guarded diamond(s) if-converted, {} residual",
        report.converted, report.residual
    );
    println!("\n| channel | metric | before | after |");
    println!("|---|---|---|---|");
    println!(
        "| timing | Welch t | {:.1} | {:.2} |",
        before.time.welch_t, after.time.welch_t
    );
    println!(
        "| timing | KS distance | {:.2} | {:.2} |",
        before.time.ks, after.time.ks
    );
    println!(
        "| timing | indiscernibility | {:.2} | {:.2} |",
        before.time.indiscernibility, after.time.indiscernibility
    );
    println!(
        "| power | Welch t | {:.1} | {:.2} |",
        before.energy.welch_t, after.energy.welch_t
    );
    println!(
        "| power | indiscernibility | {:.2} | {:.2} |",
        before.energy.indiscernibility, after.energy.indiscernibility
    );
    println!(
        "\nverdicts: before = leaking on {} channel(s); after = {}",
        [&before.time, &before.energy]
            .iter()
            .filter(|a| a.verdict == teamplay_security::Verdict::Leaking)
            .count(),
        if after.leaks() {
            "STILL LEAKING"
        } else {
            "indistinguishable (TVLA threshold)"
        }
    );
    Ok(())
}
