//! The UAV search-and-rescue use case (paper Section IV-C): profile the
//! vision pipeline on a TK1-class payload, schedule it energy-aware, and
//! convert the saving into minutes of flight and square kilometres of
//! survey coverage.
//!
//! ```sh
//! cargo run --example uav_sar
//! ```

use teamplay::complex::{ComplexTask, ComplexWorkflow};
use teamplay_apps::uav;
use teamplay_sim::{Battery, ComplexPlatform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fixed-wing SAR drone — TK1-class payload, 3.3 Hz detection pipeline\n");

    let tasks: Vec<ComplexTask> = uav::sar_pipeline()
        .into_iter()
        .map(|(name, work, after)| ComplexTask { name, work, after })
        .collect();

    let workflow = ComplexWorkflow::new(ComplexPlatform::tk1());
    let outcome = workflow.run(&tasks, uav::FRAME_PERIOD_US)?;

    println!("measured profiles → energy-aware mapping:");
    for e in &outcome.schedule.entries {
        println!(
            "  {:<11} on {:<7} ({:<11}) {:>8.0} → {:>8.0} µs   {:>8.0} µJ",
            e.task, e.core, e.option, e.start_us, e.finish_us, e.energy_uj
        );
    }
    println!(
        "\nframe: makespan {:.0} µs of {:.0} µs budget, energy {:.0} µJ",
        outcome.schedule.makespan_us,
        uav::FRAME_PERIOD_US,
        outcome.frame_energy_uj
    );

    let battery = Battery::sar_drone();
    let est = uav::mission_estimate(&battery, outcome.frame_energy_uj, 0.5);
    println!("\nmission estimate:");
    println!("  mechanical power   {:>6.1} W", uav::MECHANICAL_POWER_W);
    println!(
        "  software power     {:>6.2} W  (paper envelope: 2–11 W)",
        est.software_power_w
    );
    println!("  total power        {:>6.2} W", est.total_power_w);
    println!("  flight endurance   {:>6.1} min", est.endurance_min);
    println!(
        "  survey coverage    {:>6.1} km²",
        uav::coverage_km2(est.endurance_min)
    );

    // What an 18 % software-energy saving buys (the paper's headline).
    let improved = uav::mission_estimate(&battery, outcome.frame_energy_uj * 0.82, 0.5);
    println!(
        "\nan 18 % software-energy saving would add {:.1} minutes of flight (paper: ≈ 4 min)",
        improved.endurance_min - est.endurance_min
    );

    println!("\ngenerated parallel glue (first lines):");
    for line in outcome.parallel_glue.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
