//! Quickstart: annotate a tiny application with ETS contracts and run the
//! full predictable-architecture toolchain (paper Fig. 1) on it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use teamplay::predictable::{PredictableWorkflow, WorkflowConfig};
use teamplay_compiler::FpaConfig;

const SOURCE: &str = r#"
int samples[16];

/*@ task sample period(20ms) deadline(20ms) wcet_budget(2ms) energy_budget(300uJ) @*/
void sample() {
    for (int i = 0; i < 16; i = i + 1) {
        samples[i] = __in(0) & 1023;
    }
    return;
}

/*@ task smooth after(sample) wcet_budget(4ms) energy_budget(700uJ) @*/
void smooth() {
    for (int i = 1; i < 15; i = i + 1) {
        samples[i] = (samples[i - 1] + samples[i] * 2 + samples[i + 1]) / 4;
    }
    return;
}

/*@ task report after(smooth) deadline(20ms) wcet_budget(2ms) energy_budget(400uJ) @*/
void report() {
    int peak = 0;
    for (int i = 0; i < 16; i = i + 1) {
        if (samples[i] > peak) { peak = samples[i]; }
    }
    __out(1, peak);
    return;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("TeamPlay quickstart — energy, time and security as first-class citizens\n");

    let mut config = WorkflowConfig::pg32();
    config.fpa = FpaConfig::tiny(); // quick demo-sized search
    let outcome = PredictableWorkflow::new(config).run(SOURCE)?;

    println!("tasks (selected compiler variants):");
    for t in &outcome.tasks {
        // Each variant is a registry-backed pass pipeline, printable and
        // reconstructible via `PassManager::from_str`.
        let pipeline = match t.selected_config.pipeline.to_string() {
            p if p.is_empty() => "<no passes>".to_string(),
            p => p,
        };
        println!(
            "  {:<8} wcet {:>8.1} µs   energy {:>7.2} µJ   (of {} Pareto variants)",
            t.name, t.wcet_us, t.wcec_uj, t.variants_offered
        );
        println!("           pipeline: {pipeline}");
    }

    println!("\nschedule (single predictable core):");
    for e in &outcome.schedule.entries {
        println!(
            "  {:<8} {:>8.1} → {:>8.1} µs",
            e.task, e.start_us, e.finish_us
        );
    }
    println!(
        "  makespan {:.1} µs, total energy {:.2} µJ",
        outcome.schedule.makespan_us, outcome.schedule.total_energy_uj
    );

    println!(
        "\ncertificate: {} obligations discharged — excerpt:",
        outcome.certificate.obligation_count()
    );
    let json = outcome.certificate.to_json();
    for line in json.lines().take(14) {
        println!("  {line}");
    }
    println!("  ...");

    // Independent re-verification, exactly what a certification authority
    // would run.
    teamplay_contracts::verify_certificate(&outcome.certificate, &outcome.evidence)?;
    println!("\ncertificate independently VERIFIED against the analysis evidence");
    Ok(())
}
